"""Hub-cluster quality scoring and quality-aware seed selection.

Algorithm 3 treats all (size-pruned) hub clusters alike.  Two quality
signals improve on that:

* **tightness** — the mean pairwise Equation-3 similarity between a hub
  cluster's member pages.  Domain hubs ("best job sites") co-cite pages
  that talk alike; heterogeneous directories co-cite pages across
  domains, so their tightness is low.  This is the content-side quality
  signal.
* **hub score** — the hub page's HITS hub score (structural signal;
  exposed for analysis, deliberately *not* used to rank seeds: generic
  directories have very high hub scores precisely because they link
  everywhere, which is the opposite of what a seed needs).

``select_hub_clusters_quality_aware`` drops the loosest clusters before
running the standard greedy farthest-first selection, which keeps
CAFC-CH stable when high cardinality thresholds leave mostly
directories in the candidate pool (the failure mode on the right edge of
Figure 3).
"""

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence

from repro.core.form_page import FormPage
from repro.core.hubs import HubCluster
from repro.core.seeds import select_hub_clusters
from repro.core.similarity import FormPageSimilarity, NaiveBackend


@dataclass
class HubQuality:
    """Quality signals for one hub cluster."""

    cluster: HubCluster
    tightness: float            # mean pairwise member similarity
    hub_score: float = 0.0      # HITS hub score of the hub page, if known

    @property
    def cardinality(self) -> int:
        return self.cluster.cardinality


def cluster_tightness(
    cluster: HubCluster,
    pages: Sequence[FormPage],
    similarity: FormPageSimilarity,
    max_pairs: int = 200,
) -> float:
    """Mean pairwise Equation-3 similarity among member pages.

    For very large clusters only the first ``max_pairs`` member pairs are
    sampled (deterministically, in index order) — tightness is a mean,
    so a prefix sample is adequate and keeps the cost linear-ish.
    """
    members = cluster.members
    if len(members) < 2:
        return 1.0
    total = 0.0
    count = 0
    for i, j in combinations(members, 2):
        total += similarity(pages[i], pages[j])
        count += 1
        if count >= max_pairs:
            break
    return total / count if count else 1.0


def score_hub_clusters(
    clusters: Sequence[HubCluster],
    pages: Sequence[FormPage],
    similarity: FormPageSimilarity,
    hub_scores: Optional[Dict[str, float]] = None,
) -> List[HubQuality]:
    """Score every hub cluster; sorted tightest-first."""
    hub_scores = hub_scores or {}
    scored = [
        HubQuality(
            cluster=cluster,
            tightness=cluster_tightness(cluster, pages, similarity),
            hub_score=hub_scores.get(cluster.hub_url, 0.0),
        )
        for cluster in clusters
    ]
    scored.sort(key=lambda q: (-q.tightness, q.cluster.hub_url))
    return scored


def select_hub_clusters_quality_aware(
    clusters: Sequence[HubCluster],
    k: int,
    pages: Sequence[FormPage],
    similarity: FormPageSimilarity,
    drop_fraction: float = 0.25,
) -> List[HubCluster]:
    """Algorithm 3 with a tightness pre-filter.

    The loosest ``drop_fraction`` of the candidate clusters are removed
    (never dropping below ``k`` candidates), then the standard greedy
    farthest-first selection runs on the remainder.
    """
    if not 0.0 <= drop_fraction < 1.0:
        raise ValueError("drop_fraction must be in [0, 1)")
    if len(clusters) < k:
        raise ValueError(f"need at least {k} hub clusters, have {len(clusters)}")

    scored = score_hub_clusters(clusters, pages, similarity)
    keep = max(k, int(round(len(scored) * (1.0 - drop_fraction))))
    survivors = [quality.cluster for quality in scored[:keep]]
    # Same Equation-3 arithmetic as the scalar callable, via the backend
    # API (``select_hub_clusters`` no longer takes bare callables).
    return select_hub_clusters(survivors, k, backend=NaiveBackend(similarity))
