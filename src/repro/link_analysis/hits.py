"""Kleinberg's HITS algorithm over a web graph.

A page is a good *hub* if it points at good authorities; a good
*authority* if good hubs point at it.  The paper's related-work section
ties CAFC to this line of analysis (web-community identification); the
hub-quality extension uses hub scores as one structural quality signal.

Implemented as the standard power iteration with L2 normalization,
restricted to an optional URL subset (e.g. the neighbourhood of the form
pages rather than the whole graph).
"""

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.webgraph.graph import WebGraph


@dataclass
class HitsScores:
    """Hub and authority scores per URL (L2-normalized)."""

    hub: Dict[str, float]
    authority: Dict[str, float]
    iterations: int
    converged: bool

    def top_hubs(self, n: int = 10):
        return sorted(self.hub.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def top_authorities(self, n: int = 10):
        return sorted(self.authority.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


def _normalize(scores: Dict[str, float]) -> None:
    norm = math.sqrt(sum(value * value for value in scores.values()))
    if norm > 0.0:
        for key in scores:
            scores[key] /= norm


def hits(
    graph: WebGraph,
    urls: Optional[Iterable[str]] = None,
    max_iterations: int = 50,
    tolerance: float = 1e-8,
) -> HitsScores:
    """Run HITS over ``graph`` (or the subgraph induced by ``urls``).

    Returns normalized hub/authority scores.  Converges when the L1
    change of both score vectors drops below ``tolerance``.
    """
    if urls is None:
        nodes = set(graph.urls())
    else:
        nodes = {url for url in urls if url in graph}
    if not nodes:
        return HitsScores({}, {}, iterations=0, converged=True)

    # Adjacency restricted to the node set.
    out_edges: Dict[str, list] = {
        url: [target for target in graph.outlinks(url) if target in nodes]
        for url in nodes
    }
    in_edges: Dict[str, list] = {url: [] for url in nodes}
    for source, targets in out_edges.items():
        for target in targets:
            in_edges[target].append(source)

    hub_scores = {url: 1.0 for url in nodes}
    authority_scores = {url: 1.0 for url in nodes}
    converged = False
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        new_authority = {
            url: sum(hub_scores[source] for source in in_edges[url])
            for url in nodes
        }
        _normalize(new_authority)
        new_hub = {
            url: sum(new_authority[target] for target in out_edges[url])
            for url in nodes
        }
        _normalize(new_hub)

        delta = sum(
            abs(new_hub[url] - hub_scores[url])
            + abs(new_authority[url] - authority_scores[url])
            for url in nodes
        )
        hub_scores, authority_scores = new_hub, new_authority
        if delta < tolerance:
            converged = True
            break

    return HitsScores(
        hub=hub_scores,
        authority=authority_scores,
        iterations=iterations,
        converged=converged,
    )
