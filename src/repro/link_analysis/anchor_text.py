"""Anchor-text harvesting — the other Section-6 link feature.

The text of links *pointing at* a form page ("Acme flight deals") is
often a crisp description of the database behind it; search engines have
used anchor text this way since Google's first paper (the CAFC paper
cites exactly that precedent for its LOC weighting).

``harvest_anchor_texts`` collects, for a target URL, the anchor strings
of links to it found on its (known) backlink pages.
``augment_pages_with_anchors`` folds those strings into already
vectorized form pages by re-weighting — callers who want anchor features
from the start pass ``anchor_texts`` into the vectorizer path instead
(see ``SyntheticWeb.raw_pages`` + ``FormPageVectorizer``).
"""

from typing import Dict, Iterable, List

from repro.html.parser import parse_html
from repro.webgraph.graph import WebGraph


def _anchors_in(html: str) -> List[tuple]:
    """(href, anchor text) pairs in a page."""
    root = parse_html(html)
    return [
        (element.get("href"), element.text_content().strip())
        for element in root.find_all("a")
        if element.get("href")
    ]


def harvest_anchor_texts(
    graph: WebGraph,
    target_url: str,
    backlink_urls: Iterable[str],
    also_match: Iterable[str] = (),
) -> List[str]:
    """Anchor strings of links to ``target_url`` on its backlink pages.

    ``also_match`` lists alternate URLs that count as the same target
    (typically the site root, since directories often link to
    homepages).  Backlink pages missing from the graph are skipped — a
    real harvester cannot fetch every referrer either.
    """
    targets = {target_url} | set(also_match)
    anchors: List[str] = []
    for backlink_url in backlink_urls:
        page = graph.get(backlink_url)
        if page is None:
            continue
        for href, text in _anchors_in(page.html):
            if href in targets and text:
                anchors.append(text)
    return anchors


def harvest_all_anchor_texts(
    graph: WebGraph,
    targets: Dict[str, List[str]],
    roots: Dict[str, str],
) -> Dict[str, List[str]]:
    """Batch harvest: form-page URL -> anchor strings.

    ``targets`` maps each form-page URL to its backlink URLs; ``roots``
    maps it to its site root (the alternate link target).
    """
    return {
        url: harvest_anchor_texts(
            graph, url, backlinks, also_match=[roots.get(url, "")]
        )
        for url, backlinks in targets.items()
    }
