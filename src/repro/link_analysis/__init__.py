"""Link-analysis extensions (the paper's Section 6 future work).

"To further improve the quality of the resulting clusters, we plan to
exploit a richer set of features provided by: the hyperlink structure,
e.g., anchor text and the quality of hub pages."

* :mod:`repro.link_analysis.hits` — Kleinberg's HITS (hubs &
  authorities) implemented from scratch over a :class:`WebGraph`.
* :mod:`repro.link_analysis.hub_quality` — hub-cluster quality scores
  (content tightness + structural hub score) and a quality-aware
  variant of Algorithm 3's seed selection.
* :mod:`repro.link_analysis.anchor_text` — harvesting the anchor text
  of backlinks and folding it into the form-page model.
"""

from repro.link_analysis.anchor_text import harvest_anchor_texts
from repro.link_analysis.hits import HitsScores, hits
from repro.link_analysis.hub_quality import (
    HubQuality,
    score_hub_clusters,
    select_hub_clusters_quality_aware,
)

__all__ = [
    "harvest_anchor_texts",
    "HitsScores",
    "hits",
    "HubQuality",
    "score_hub_clusters",
    "select_hub_clusters_quality_aware",
]
