"""Post-query (probing) classification — the QProber-style baseline.

Gravano, Ipeirotis & Sahami's QProber (paper reference [14]) classifies
a hidden database by sending *probe queries* through its search
interface and reading the match counts: a database where "salary" and
"resume" match many records is a job database.  The paper's taxonomy
(Section 1) positions this family as the post-query alternative to
CAFC, effective for keyword interfaces but unable to handle structured
multi-attribute forms that cannot be filled automatically.

This module implements the approach faithfully at that level:

* :func:`train_probes` — select discriminative probe terms per category
  from labelled training databases (odds-ratio-style selection, standing
  in for QProber's rule extraction from a document classifier);
* :class:`ProbingClassifier` — issue the probes through a database's
  *keyword* interface and classify by aggregated match counts;
  databases reachable only through multi-attribute forms are returned
  as unclassifiable, which is the baseline's structural limitation.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hiddendb.database import HiddenDatabase


@dataclass
class ProbeSet:
    """Per-category probe terms."""

    probes: Dict[str, List[str]]   # category -> probe terms

    @property
    def categories(self) -> List[str]:
        return sorted(self.probes)

    @property
    def n_probes(self) -> int:
        return sum(len(terms) for terms in self.probes.values())


def train_probes(
    training: Sequence[Tuple[str, HiddenDatabase]],
    n_terms: int = 8,
    min_coverage: float = 0.05,
) -> ProbeSet:
    """Select probe terms from labelled training databases.

    For each candidate stem, computes its mean match *rate* inside the
    category vs outside; terms are ranked by the contrast (in-rate minus
    out-rate) and the top ``n_terms`` per category win.  ``min_coverage``
    discards terms matching almost nothing even in-category.
    """
    by_category: Dict[str, List[HiddenDatabase]] = {}
    for label, database in training:
        by_category.setdefault(label, []).append(database)
    if not by_category:
        raise ValueError("training set is empty")

    # Candidate vocabulary: stems indexed by any training database.
    candidates: set = set()
    for _, database in training:
        candidates.update(database._index.keys())

    def mean_rate(databases: List[HiddenDatabase], term: str) -> float:
        if not databases:
            return 0.0
        return sum(db.count(term) / max(len(db), 1) for db in databases) / len(
            databases
        )

    probes: Dict[str, List[str]] = {}
    for category, inside in sorted(by_category.items()):
        outside = [
            db
            for label, db in training
            if label != category
        ]
        scored = []
        for term in candidates:
            in_rate = mean_rate(inside, term)
            if in_rate < min_coverage:
                continue
            out_rate = mean_rate(outside, term)
            scored.append((in_rate - out_rate, term))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        probes[category] = [term for _, term in scored[:n_terms]]
    return ProbeSet(probes=probes)


@dataclass
class ProbeOutcome:
    """Result of probing one database."""

    url: str
    accessible: bool
    category: Optional[str] = None
    scores: Dict[str, float] = field(default_factory=dict)
    n_queries: int = 0


class ProbingClassifier:
    """Classify hidden databases by probing their keyword interface."""

    def __init__(self, probe_set: ProbeSet) -> None:
        if not probe_set.probes:
            raise ValueError("probe set is empty")
        self.probe_set = probe_set

    def probe(
        self,
        url: str,
        database: Optional[HiddenDatabase],
        keyword_accessible: bool,
    ) -> ProbeOutcome:
        """Probe one source.

        ``keyword_accessible=False`` models a database reachable only
        through a structured form the prober cannot fill: it comes back
        unclassified without issuing queries — exactly the coverage gap
        the paper holds against post-query approaches.
        """
        if not keyword_accessible or database is None:
            return ProbeOutcome(url=url, accessible=False)
        scores: Dict[str, float] = {}
        n_queries = 0
        size = max(len(database), 1)
        for category, terms in self.probe_set.probes.items():
            total = 0
            for term in terms:
                total += database.count(term)
                n_queries += 1
            scores[category] = total / (size * max(len(terms), 1))
        best = max(scores, key=lambda c: (scores[c], c))
        if scores[best] <= 0.0:
            best_category: Optional[str] = None
        else:
            best_category = best
        return ProbeOutcome(
            url=url,
            accessible=True,
            category=best_category,
            scores=scores,
            n_queries=n_queries,
        )
