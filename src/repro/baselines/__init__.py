"""Baselines the paper compares against (conceptually).

The paper's closest competitor is the pre-query, schema-based clustering
of He, Tao & Chang (CIKM'04, reference [17]): model each form by its
extracted *attribute labels* and cluster the label schemas.  The paper
argues this approach (a) depends on fragile label extraction and (b)
cannot handle single-attribute keyword forms at all.

This package implements that baseline so the claim is testable:

* :mod:`repro.baselines.label_extraction` — heuristic attribute-label
  extraction (the hard-to-automate step the paper calls out);
* :mod:`repro.baselines.schema_cluster` — k-means/HAC over label-schema
  vectors.

``benchmarks/test_bench_baseline.py`` runs it head-to-head with CAFC.
"""

from repro.baselines.label_extraction import extract_attribute_labels
from repro.baselines.schema_cluster import SchemaClusterer, SchemaVector

__all__ = ["extract_attribute_labels", "SchemaClusterer", "SchemaVector"]
