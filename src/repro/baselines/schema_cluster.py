"""Schema-based form clustering — the He/Tao/Chang-style baseline.

Models each form page by the bag of its extracted attribute-label terms
(TF-IDF weighted over the label vocabulary) and clusters those schema
vectors with k-means.  This is a vector-space simplification of the
CIKM'04 approach (which used model-based categorical clustering), but it
preserves the property the paper's comparison turns on: **the only
evidence is attribute labels**, so

* forms whose labels cannot be extracted contribute empty vectors;
* single-attribute keyword forms ("Search") carry no schema signal at
  all and land in arbitrary clusters.
"""

import random
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.baselines.label_extraction import extract_attribute_labels
from repro.clustering.kmeans import KMeansResult, kmeans
from repro.core.config import CAFCConfig, ContentMode
from repro.core.form_page import RawFormPage, VectorPair
from repro.core.similarity import BackendSpec, EngineBackend, resolve_backend
from repro.text.analyzer import TextAnalyzer
from repro.vsm.corpus import CorpusStats
from repro.vsm.vector import SparseVector, cosine_similarity, mean_vector


@dataclass
class SchemaVector:
    """A form page reduced to its label schema."""

    url: str
    vector: SparseVector
    n_fields: int
    n_labelled_fields: int
    label: Optional[str] = None

    @property
    def has_schema_evidence(self) -> bool:
        return bool(self.vector)


def _schema_similarity(a, b) -> float:
    # Points are SchemaVector; centroids are plain SparseVector.
    vector_a = a.vector if isinstance(a, SchemaVector) else a
    vector_b = b.vector if isinstance(b, SchemaVector) else b
    return cosine_similarity(vector_a, vector_b)


def _schema_centroid(points: Sequence[SchemaVector]) -> SparseVector:
    return mean_vector(point.vector for point in points)


class _SchemaPoint:
    """Adapter giving a schema vector the (PC, FC) shape the similarity
    engine compiles — the schema lives in the PC slot, FC stays empty."""

    __slots__ = ("pc", "fc")

    def __init__(self, schema: SchemaVector) -> None:
        self.pc = schema.vector
        self.fc = SparseVector()


class SchemaClusterer:
    """The schema-label clustering baseline.

    Usage::

        clusterer = SchemaClusterer(k=8, seed=0)
        schemas = clusterer.build_schemas(raw_pages)
        result = clusterer.cluster(schemas)
    """

    def __init__(
        self,
        k: int,
        seed: int = 0,
        analyzer: Optional[TextAnalyzer] = None,
        stop_fraction: float = 0.1,
        max_iterations: int = 50,
        backend: BackendSpec = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.seed = seed
        self.analyzer = analyzer or TextAnalyzer()
        self.stop_fraction = stop_fraction
        self.max_iterations = max_iterations
        self.backend = backend

    # ----------------------------------------------------------------
    # Schema construction.
    # ----------------------------------------------------------------

    def build_schemas(self, raw_pages: Sequence[RawFormPage]) -> List[SchemaVector]:
        """Extract label schemas and TF-IDF weight them over the corpus."""
        analyzed: List[tuple] = []
        corpus = CorpusStats()
        for raw in raw_pages:
            per_form = extract_attribute_labels(raw.html)
            # The database form is normally the label-richest one.
            best_form = max(
                per_form,
                key=lambda labels: sum(1 for l in labels if l.has_label),
                default=[],
            )
            terms: List[str] = []
            labelled = 0
            for extracted in best_form:
                if extracted.has_label:
                    labelled += 1
                    terms.extend(self.analyzer.analyze(extracted.label))
            corpus.add_document(terms)
            analyzed.append((raw, terms, len(best_form), labelled))

        schemas: List[SchemaVector] = []
        for raw, terms, n_fields, labelled in analyzed:
            counts = Counter(terms)
            weights = {}
            for term, count in counts.items():
                idf = corpus.idf(term)
                if idf > 0.0:
                    weights[term] = count * idf
            schemas.append(
                SchemaVector(
                    url=raw.url,
                    vector=SparseVector(weights),
                    n_fields=n_fields,
                    n_labelled_fields=labelled,
                    label=raw.label,
                )
            )
        return schemas

    # ----------------------------------------------------------------
    # Clustering.
    # ----------------------------------------------------------------

    def cluster(self, schemas: Sequence[SchemaVector]) -> KMeansResult:
        """k-means over the schema vectors (random page seeds).

        Centroids in the result are plain :class:`SparseVector`, as
        before.  The loop runs on the batched similarity engine (PC-mode
        compilation of the schema vectors) unless ``backend="naive"``
        asked for the per-pair reference path.
        """
        rng = random.Random(self.seed)
        if self.k > len(schemas):
            raise ValueError(
                f"cannot seed {self.k} clusters from {len(schemas)} schemas"
            )
        seed_indices = rng.sample(range(len(schemas)), self.k)
        seeds = [schemas[i].vector for i in seed_indices]

        resolved = resolve_backend(
            self.backend, CAFCConfig(k=self.k, content_mode=ContentMode.PC)
        )
        if isinstance(resolved, EngineBackend) and schemas:
            engine = resolved.engine_for([_SchemaPoint(s) for s in schemas])
            result = engine.kmeans(
                [VectorPair(pc=seed, fc=SparseVector()) for seed in seeds],
                stop_fraction=self.stop_fraction,
                max_iterations=self.max_iterations,
            )
            resolved.collect(engine)
            return KMeansResult(
                clustering=result.clustering,
                centroids=[pair.pc for pair in result.centroids],
                iterations=result.iterations,
                converged=result.converged,
            )
        return kmeans(
            points=list(schemas),
            initial_centroids=seeds,
            similarity=_schema_similarity,
            make_centroid=_schema_centroid,
            stop_fraction=self.stop_fraction,
            max_iterations=self.max_iterations,
        )

    def cluster_pages(self, raw_pages: Sequence[RawFormPage]) -> KMeansResult:
        """Convenience: extract schemas and cluster in one call."""
        return self.cluster(self.build_schemas(raw_pages))
