"""Heuristic attribute-label extraction.

"Approaches to label extraction often use heuristics (e.g., based on the
layout of the page) to guess the appropriate label for a given form
attribute" (paper, Section 1).  This module implements the standard
heuristic ladder:

1. an explicit ``<label for=...>`` association;
2. a wrapping ``<label>`` element;
3. the nearest text fragment *preceding* the control in document order
   within the form (how tables/line layouts place labels);
4. the control's ``name``/``id`` attribute split into words.

The ladder works well on tidy forms and fails exactly where the paper
says schema-based approaches fail: label-less keyword boxes, image
buttons, text that sits outside the FORM tags.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.html.dom import Element, NON_VISIBLE_TAGS, Text
from repro.html.parser import parse_html
from repro.text.tokenize import split_identifier

_CONTROL_TAGS = frozenset({"input", "select", "textarea"})
_NON_ATTRIBUTE_INPUT_TYPES = frozenset(
    {"hidden", "submit", "button", "image", "reset"}
)

# Generic strings that precede controls without describing them.
_USELESS_LABELS = frozenset(
    {"search", "go", "find", "submit", "ok", "enter", "click", "select"}
)


@dataclass
class ExtractedLabel:
    """One form attribute with its best-guess label."""

    field_name: str
    label: str
    source: str  # 'for' | 'wrap' | 'preceding' | 'name' | ''

    @property
    def has_label(self) -> bool:
        return bool(self.label)


def _is_attribute_control(element: Element) -> bool:
    if element.tag not in _CONTROL_TAGS:
        return False
    if element.tag == "input":
        input_type = element.get("type").lower()
        return input_type not in _NON_ATTRIBUTE_INPUT_TYPES
    return True


def _document_order_items(form: Element) -> List[object]:
    """Text fragments and controls of a form, flattened in document
    order.  Option text is skipped — option values are contents, not
    labels."""
    items: List[object] = []

    def walk(element: Element) -> None:
        if element.tag in NON_VISIBLE_TAGS or element.tag == "option":
            return
        if _is_attribute_control(element):
            items.append(element)
            if element.tag == "input":
                return
        for child in element.children:
            if isinstance(child, Text):
                fragment = child.data.strip()
                if fragment:
                    items.append(fragment)
            elif isinstance(child, Element):
                walk(child)

    walk(form)
    return items


def _wrapping_label(control: Element) -> str:
    for ancestor in control.ancestors():
        if ancestor.tag == "label":
            return ancestor.text_content().strip()
    return ""


def _preceding_text(items: List[object], control_index: int) -> str:
    """The nearest non-useless text fragment before the control."""
    for index in range(control_index - 1, -1, -1):
        item = items[index]
        if isinstance(item, Element):
            # Another control intervenes: its label zone ends here.
            return ""
        text = str(item).strip()
        if text and text.lower() not in _USELESS_LABELS:
            return text
    return ""


def extract_attribute_labels(html_or_root) -> List[List[ExtractedLabel]]:
    """Extract attribute labels for every form in a page.

    Returns one list of :class:`ExtractedLabel` per ``<form>`` element,
    in document order.  Fields whose label cannot be guessed come back
    with ``label=''`` and ``source=''`` — the failure mode the paper
    highlights.
    """
    root = (
        parse_html(html_or_root) if isinstance(html_or_root, str) else html_or_root
    )

    explicit = {}
    for label_el in root.find_all("label"):
        target = label_el.get("for")
        if target:
            explicit[target] = label_el.text_content().strip()

    results: List[List[ExtractedLabel]] = []
    for form in root.find_all("form"):
        items = _document_order_items(form)
        labels: List[ExtractedLabel] = []
        for index, item in enumerate(items):
            if not isinstance(item, Element):
                continue
            control = item
            field_name = control.get("name") or control.get("id")

            label: Optional[str] = explicit.get(control.get("id")) or None
            source = "for" if label else ""
            if not label:
                label = _wrapping_label(control) or None
                source = "wrap" if label else ""
            if not label:
                label = _preceding_text(items, index) or None
                source = "preceding" if label else ""
            if not label:
                name_words = split_identifier(field_name)
                meaningful = [w for w in name_words if w not in _USELESS_LABELS and len(w) > 1]
                if meaningful:
                    label = " ".join(meaningful)
                    source = "name"
            labels.append(
                ExtractedLabel(
                    field_name=field_name,
                    label=label or "",
                    source=source,
                )
            )
        results.append(labels)
    return results
