"""Query-based exploration of CAFC clusters.

The paper's Section 6: "it is important to provide means for
applications and users to explore the resulting clusters.  We are
currently investigating visual and query-based interfaces for this
purpose."  This module is that query-based interface: keyword search
over the organized clusters, ranked by centroid similarity, plus
human-readable summaries.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.core.pipeline import CAFCResult, OrganizedCluster
from repro.index import SpaceIndex, combined_query_channel, top_k_exact
from repro.text.analyzer import TextAnalyzer
from repro.vsm.vector import SparseVector, cosine_similarity


@dataclass
class SearchHit:
    """One cluster matched by a query."""

    cluster_index: int
    cluster: OrganizedCluster
    score: float
    matched_terms: List[str]


class ClusterExplorer:
    """Keyword search and inspection over a :class:`CAFCResult`.

    Usage::

        explorer = ClusterExplorer(result)
        for hit in explorer.search("cheap flights to boston"):
            print(hit.cluster_index, hit.score, hit.cluster.top_terms)
    """

    def __init__(
        self, result: CAFCResult, analyzer: Optional[TextAnalyzer] = None
    ) -> None:
        self.result = result
        self.analyzer = analyzer or TextAnalyzer()
        self._combined: Optional[List[SparseVector]] = None
        self._index: Optional[SpaceIndex] = None

    def _centroid_index(self) -> SpaceIndex:
        """Posting lists over the combined (PC + FC) centroids, built
        once per explorer — queries then touch only the lists their
        terms appear in (:mod:`repro.index`)."""
        if self._index is None:
            self._combined = [
                cluster.centroid.pc.add(cluster.centroid.fc)
                for cluster in self.result.clusters
            ]
            self._index = SpaceIndex()
            for index, vector in enumerate(self._combined):
                self._index.add_row(index, vector)
        return self._index

    # ----------------------------------------------------------------
    # Search.
    # ----------------------------------------------------------------

    def _query_vector(self, query: str) -> SparseVector:
        terms = self.analyzer.analyze(query)
        weights = {}
        for term in terms:
            weights[term] = weights.get(term, 0.0) + 1.0
        return SparseVector(weights)

    def search(self, query: str, n: int = 3) -> List[SearchHit]:
        """Rank clusters against a keyword query.

        The query is analyzed with the same pipeline as page text and
        scored by cosine against each cluster's combined centroid (PC
        and FC summed — the query has no notion of feature spaces).
        Clusters with zero similarity are omitted.
        """
        query_vector = self._query_vector(query)
        if not query_vector:
            return []
        index_rows = self._centroid_index()
        ranked = top_k_exact(
            [combined_query_channel(index_rows, query_vector)],
            n,
            lambda i: cosine_similarity(query_vector, self._combined[i]),
        )
        hits: List[SearchHit] = []
        for index, score in ranked:
            combined = self._combined[index]
            matched = sorted(
                term for term in query_vector.terms() if term in combined
            )
            hits.append(
                SearchHit(
                    cluster_index=index,
                    cluster=self.result.clusters[index],
                    score=score,
                    matched_terms=matched,
                )
            )
        return hits

    # ----------------------------------------------------------------
    # Summaries.
    # ----------------------------------------------------------------

    def summary(self) -> str:
        """One line per cluster: index, size, descriptive terms."""
        lines = [
            f"{self.result.n_clusters} clusters over "
            f"{self.result.n_pages} databases "
            f"(algorithm: {self.result.algorithm})"
        ]
        for index, cluster in enumerate(self.result.clusters):
            terms = ", ".join(cluster.top_terms[:5])
            lines.append(f"[{index}] {cluster.size:>4} databases — {terms}")
        return "\n".join(lines)

    def describe(self, cluster_index: int, max_urls: int = 10) -> str:
        """Detailed view of one cluster."""
        if not 0 <= cluster_index < self.result.n_clusters:
            raise IndexError(
                f"cluster index {cluster_index} out of range "
                f"[0, {self.result.n_clusters})"
            )
        cluster = self.result.clusters[cluster_index]
        lines = [
            f"cluster {cluster_index}: {cluster.size} databases",
            f"descriptive terms: {', '.join(cluster.top_terms)}",
            "top page-context terms: "
            + ", ".join(f"{t} ({w:.1f})" for t, w in cluster.centroid.pc.top_terms(8)),
            "top form-context terms: "
            + ", ".join(f"{t} ({w:.1f})" for t, w in cluster.centroid.fc.top_terms(8)),
            "members:",
        ]
        for url in cluster.urls[:max_urls]:
            lines.append(f"  {url}")
        if cluster.size > max_urls:
            lines.append(f"  ... and {cluster.size - max_urls} more")
        return "\n".join(lines)
