"""Generating the HTML of searchable and non-searchable forms.

Three form species appear in the paper's corpus, and all three are
generated here:

* **multi-attribute forms** — a site-specific subset of the domain schema
  with site-specific label variants and option lists (the Figure 1(a)/(b)
  heterogeneity);
* **single-attribute keyword forms** — one unlabeled text box plus a
  generic submit caption; the descriptive string ("Search Jobs") sits
  *outside* the FORM tags (Figure 1(c));
* **non-searchable forms** — login boxes, newsletter signups — the noise
  a crawler drags in, filtered by the generic form classifier.
"""

import random
from dataclasses import dataclass
from html import escape
from typing import List, Tuple

from repro.webgen.domains import AttributeSpec, DomainSpec, MONTHS
from repro.webgen.vocab import SUBMIT_CAPTIONS


@dataclass
class GeneratedForm:
    """A form's HTML plus generator-side bookkeeping."""

    html: str
    n_attributes: int
    approx_term_count: int  # rough count of visible word tokens in the form


def _select_html(name: str, label: str, options: List[str]) -> Tuple[str, int]:
    """A labelled <select>; returns (html, approximate term count)."""
    option_html = "".join(
        f"<option value=\"{escape(value.lower().replace(' ', '_'))}\">{escape(value)}</option>"
        for value in options
    )
    html = (
        f"<tr><td>{escape(label)}</td>"
        f"<td><select name=\"{escape(name)}\">{option_html}</select></td></tr>"
    )
    term_count = len(label.split()) + sum(len(value.split()) for value in options)
    return html, term_count


def _text_input_html(name: str, label: str) -> Tuple[str, int]:
    html = (
        f"<tr><td>{escape(label)}</td>"
        f"<td><input type=\"text\" name=\"{escape(name)}\" size=\"20\"></td></tr>"
    )
    return html, len(label.split())


def _month_select_html(name: str, label: str, rng: random.Random) -> Tuple[str, int]:
    """A travel-style date control: month dropdown (+ day dropdown whose
    numeric options contribute no terms)."""
    months = list(MONTHS)
    option_html = "".join(
        f"<option value=\"{index + 1}\">{month}</option>"
        for index, month in enumerate(months)
    )
    day_html = "".join(f"<option>{day}</option>" for day in range(1, 29))
    html = (
        f"<tr><td>{escape(label)}</td>"
        f"<td><select name=\"{escape(name)}_month\">{option_html}</select>"
        f"<select name=\"{escape(name)}_day\">{day_html}</select></td></tr>"
    )
    return html, len(label.split()) + len(months)


def _attribute_html(
    attribute: AttributeSpec, rng: random.Random, full_options: bool = False
) -> Tuple[str, int]:
    """Render one schema attribute with a site-chosen label variant.

    ``full_options`` makes selects show their entire value pool — how the
    biggest real-world forms (50-state dropdowns, full city lists) reach
    hundreds of terms.
    """
    label = rng.choice(attribute.label_variants)
    field_name = attribute.concept
    if attribute.kind == "text":
        return _text_input_html(field_name, label)
    if attribute.kind == "month":
        return _month_select_html(field_name, label, rng)
    low, high = attribute.option_range
    if full_options:
        n_options = len(attribute.value_pool)
    else:
        n_options = rng.randint(low, min(high, len(attribute.value_pool)))
    # Option lists keep pool order (sites sort their dropdowns) from a
    # random contiguous-ish sample.
    options = sorted(
        rng.sample(list(attribute.value_pool), n_options),
        key=attribute.value_pool.index,
    )
    return _select_html(field_name, label, options)


def multi_attribute_form(
    domain: DomainSpec,
    rng: random.Random,
    size_class: str = "medium",
) -> GeneratedForm:
    """A multi-attribute search form for ``domain``.

    ``size_class`` steers the form-term budget (the Table 1 buckets):

    * ``small``  — required attributes only, option lists clamped short;
    * ``medium`` — required plus some optional attributes;
    * ``large``  — most of the schema, full-length option lists.
    """
    required = [a for a in domain.attributes if a.required]
    optional = [a for a in domain.attributes if not a.required]
    rng.shuffle(optional)
    if size_class == "small":
        chosen = required[: max(2, len(required))]
        if len(chosen) < 2 and optional:
            chosen = chosen + optional[: 2 - len(chosen)]
    elif size_class == "large":
        chosen = required + optional
    else:
        n_optional = rng.randint(1, max(1, len(optional) // 2))
        chosen = required + optional[:n_optional]

    rows: List[str] = []
    term_count = 0
    for attribute in chosen:
        if size_class == "small" and attribute.kind == "select":
            # Clamp option lists so the whole form stays in the small
            # buckets.
            attribute = AttributeSpec(
                concept=attribute.concept,
                label_variants=attribute.label_variants,
                kind=attribute.kind,
                value_pool=attribute.value_pool,
                option_range=(
                    attribute.option_range[0],
                    min(attribute.option_range[1], attribute.option_range[0] + 2),
                ),
                required=attribute.required,
            )
        html, terms = _attribute_html(
            attribute, rng, full_options=(size_class == "large")
        )
        rows.append(html)
        term_count += terms

    caption = rng.choice(SUBMIT_CAPTIONS)
    # Most real multi-attribute forms carry a heading INSIDE the form
    # ("Flight Search") — part of what makes FC informative about the
    # schema even when option contents are generic.
    legend = ""
    if domain.title_nouns and rng.random() < 0.7:
        legend_text = rng.choice(domain.title_nouns)
        legend = f"<b>{escape(legend_text)}</b>"
        term_count += len(legend_text.split())
    html = (
        "<form action=\"/search\" method=\"get\">"
        + legend
        + "<table>"
        + "".join(rows)
        + f"<tr><td></td><td><input type=\"submit\" value=\"{escape(caption)}\"></td></tr>"
        "</table>"
        "<input type=\"hidden\" name=\"sid\" value=\"x81\">"
        "</form>"
    )
    return GeneratedForm(
        html=html,
        n_attributes=len(chosen),
        approx_term_count=term_count + len(caption.split()),
    )


def keyword_form(domain: DomainSpec, rng: random.Random) -> GeneratedForm:
    """A single-attribute keyword form (Figure 1(c)).

    The descriptive hint ("Search Jobs") is emitted by the *page*
    generator, outside the FORM tags — the form itself carries almost no
    text, which is exactly what makes these forms hard for FC-only
    clustering.
    """
    caption = rng.choice(["Search", "Go", "Find"])
    html = (
        "<form action=\"/find\" method=\"get\">"
        "<input type=\"text\" name=\"q\" size=\"30\">"
        f"<input type=\"submit\" value=\"{caption}\">"
        "</form>"
    )
    return GeneratedForm(html=html, n_attributes=1, approx_term_count=1)


def login_form(rng: random.Random) -> GeneratedForm:
    """A non-searchable login form (crawler noise)."""
    caption = rng.choice(["Login", "Sign In", "Log In"])
    html = (
        "<form action=\"/login\" method=\"post\">"
        "<table>"
        "<tr><td>Username</td><td><input type=\"text\" name=\"username\"></td></tr>"
        "<tr><td>Password</td><td><input type=\"password\" name=\"password\"></td></tr>"
        f"<tr><td></td><td><input type=\"submit\" value=\"{caption}\"></td></tr>"
        "</table>"
        "</form>"
    )
    return GeneratedForm(html=html, n_attributes=2, approx_term_count=3)


def newsletter_form(rng: random.Random) -> GeneratedForm:
    """A non-searchable newsletter-signup form (in-page noise)."""
    html = (
        "<form action=\"/subscribe\" method=\"post\">"
        "Subscribe to our newsletter"
        "<input type=\"text\" name=\"email\" size=\"20\">"
        "<input type=\"submit\" value=\"Subscribe\">"
        "</form>"
    )
    return GeneratedForm(html=html, n_attributes=1, approx_term_count=5)


def mixed_entertainment_form(
    music: DomainSpec, movie: DomainSpec, rng: random.Random
) -> GeneratedForm:
    """A form over a database spanning Music *and* Movie (Figure 4).

    Searches CDs and DVDs alike: artist + title text boxes, a genre select
    mixing both domains' genre pools, and a CD/DVD format select.
    """
    music_genres = next(
        a for a in music.attributes if a.concept == "genre"
    ).value_pool
    movie_genres = next(
        a for a in movie.attributes if a.concept == "genre"
    ).value_pool
    genres = sorted(
        set(rng.sample(list(music_genres), 6) + rng.sample(list(movie_genres), 6))
    )

    rows: List[str] = []
    term_count = 0
    html, terms = _text_input_html("artist", rng.choice(("Artist", "Artist or Band")))
    rows.append(html)
    term_count += terms
    html, terms = _text_input_html("title", rng.choice(("Title", "Album or Movie Title")))
    rows.append(html)
    term_count += terms
    html, terms = _select_html("genre", "Genre", genres)
    rows.append(html)
    term_count += terms
    html, terms = _select_html(
        "format", "Format", ["CD", "DVD", "VHS", "Cassette", "Blu Ray"]
    )
    rows.append(html)
    term_count += terms

    html = (
        "<form action=\"/search\" method=\"get\">"
        "<table>" + "".join(rows) +
        "<tr><td></td><td><input type=\"submit\" value=\"Search\"></td></tr>"
        "</table></form>"
    )
    return GeneratedForm(html=html, n_attributes=4, approx_term_count=term_count + 1)
