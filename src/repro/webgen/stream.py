"""Streaming synthetic-page emission — 100k+ pages without a corpus.

:func:`~repro.webgen.corpus.generate_benchmark` materializes the whole
web (sites, hubs, a simulated search engine) because the paper's
evaluation needs backlinks and gold hub structure.  The streaming
ingestion path (:mod:`repro.stream`) needs something else entirely: an
*unbounded, restartable* source of form pages that never holds more
than the page being emitted.

:func:`page_at` is a pure function of ``(seed, index)``: every page is
generated from its own :class:`random.Random` seeded with a string key,
so emission order does not matter, any sub-range can be regenerated
independently (restart after a crash, or fan a range out over
:mod:`repro.parallel` executors via :func:`stream_chunks`), and two
processes asking for the same index get byte-identical HTML.

Streamed pages reuse the batch generator's domain specs, form builders
and page assembly (:func:`~repro.webgen.pages_gen.build_form_page`), so
their statistical profile — Table-1 prose budgets, label heterogeneity,
crosstalk prose, keyword forms — matches the 454-page reference corpus.
They carry no backlinks (a streaming crawler has not harvested links
yet), which is exactly the FC/PC-only regime the mini-batch organizer
clusters in.  URL uniqueness is structural: the host embeds the decimal
page index, and host syllables are alphabetic, so no two indices can
collide.
"""

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.form_page import RawFormPage
from repro.webgen.config import GeneratorConfig
from repro.webgen.domains import DOMAINS, DomainSpec, domain_by_name
from repro.webgen.forms_gen import (
    keyword_form,
    mixed_entertainment_form,
    multi_attribute_form,
)
from repro.webgen.pages_gen import build_form_page
from repro.webgen.vocab import MISC_FLAVOR, brand_name

# Size-class mix for multi-attribute forms (same Table-1 coverage as the
# batch generator's corpus orchestration).
_SIZE_CLASSES: Tuple[Tuple[str, float], ...] = (
    ("small", 0.30), ("medium", 0.40), ("large", 0.30),
)

# Prose cross-talk siblings (cross-selling pages), mirroring the batch
# corpus: travel domains mention each other, entertainment overlaps.
_CROSSTALK: dict = {
    "airfare": ("hotel", "rental"),
    "hotel": ("airfare", "rental"),
    "rental": ("airfare", "hotel", "auto"),
    "auto": ("rental",),
    "music": ("movie",),
    "movie": ("music",),
    "book": ("movie", "music"),
}

# Fraction of a domain budget that carries a single-attribute keyword
# form — the reference corpus ships 56/454.
_KEYWORD_FRACTION = 56.0 / 454.0


def _domain_table(config: GeneratorConfig) -> Tuple[List[DomainSpec], List[float]]:
    """Domains with cumulative pick weights matching the corpus profile."""
    domains: List[DomainSpec] = []
    cumulative: List[float] = []
    total = float(sum(config.pages_per_domain.values())) or 1.0
    running = 0.0
    for name, budget in sorted(config.pages_per_domain.items()):
        domains.append(domain_by_name(name))
        running += budget / total
        cumulative.append(running)
    if not domains:
        domains = list(DOMAINS)
        cumulative = [(i + 1) / len(domains) for i in range(len(domains))]
    cumulative[-1] = 1.0
    return domains, cumulative


def _pick_domain(
    roll: float, domains: Sequence[DomainSpec], cumulative: Sequence[float]
) -> DomainSpec:
    for domain, bound in zip(domains, cumulative):
        if roll < bound:
            return domain
    return domains[-1]


def page_at(
    index: int,
    seed: int = 42,
    config: Optional[GeneratorConfig] = None,
) -> RawFormPage:
    """The ``index``-th streamed page — a pure function of ``(seed, index)``.

    The per-page RNG is seeded with a string key (Python hashes string
    seeds with SHA-512, independent of ``PYTHONHASHSEED``), so any index
    can be regenerated in isolation and chunked emission is
    embarrassingly parallel.
    """
    if index < 0:
        raise ValueError("page index must be non-negative")
    config = config or GeneratorConfig()
    rng = random.Random(f"repro.stream:{seed}:{index}")
    domains, cumulative = _domain_table(config)
    domain = _pick_domain(rng.random(), domains, cumulative)

    brand = brand_name(rng)
    prefix = rng.choice(domain.site_words) if domain.site_words else ""
    host = f"www.{prefix}{brand}{index}.com"
    url = f"http://{host}/search.html"
    site_flavor = rng.sample(MISC_FLAVOR, rng.randint(4, 8))

    extra_topic: Sequence[str] = ()
    extra_rate = 0.5
    keyword_hint = None
    force_domain_title = False
    roll = rng.random()
    if roll < _KEYWORD_FRACTION:
        form = keyword_form(domain, rng)
        keyword_hint = domain.keyword_hint
    elif domain.name in ("music", "movie") and roll < _KEYWORD_FRACTION + 0.1:
        other = domain_by_name("movie" if domain.name == "music" else "music")
        form = mixed_entertainment_form(domain, other, rng)
        extra_topic = other.topic_words
    else:
        size_roll = rng.random()
        size_class = _SIZE_CLASSES[-1][0]
        running = 0.0
        for name, weight in _SIZE_CLASSES:
            running += weight
            if size_roll < running:
                size_class = name
                break
        form = multi_attribute_form(domain, rng, size_class=size_class)
        siblings = _CROSSTALK.get(domain.name, ())
        if siblings and rng.random() < config.crosstalk_fraction:
            extra_topic = domain_by_name(rng.choice(siblings)).topic_words
            force_domain_title = True

    blueprint = build_form_page(
        domain,
        brand,
        form,
        config,
        rng,
        extra_topic=extra_topic,
        extra_rate=extra_rate,
        include_newsletter=rng.random() < 0.12,
        keyword_hint=keyword_hint,
        site_flavor=site_flavor,
        force_domain_title=force_domain_title,
    )
    return RawFormPage(
        url=url,
        html=blueprint.html,
        backlinks=[],
        label=domain.name,
    )


def stream_pages(
    n_pages: int,
    seed: int = 42,
    start: int = 0,
    config: Optional[GeneratorConfig] = None,
) -> Iterator[RawFormPage]:
    """Yield ``n_pages`` pages lazily, starting at index ``start``.

    Memory is O(1) in ``n_pages``: each page is built, yielded, and
    dropped.  ``stream_pages(n, seed, start=k)`` resumes a crashed run
    exactly where it stopped.
    """
    config = config or GeneratorConfig()
    for index in range(start, start + n_pages):
        yield page_at(index, seed=seed, config=config)


@dataclass(frozen=True)
class PageChunk:
    """A contiguous, independently regenerable slice of the stream.

    Chunks are plain picklable data, so a :func:`repro.parallel.ingest.
    parallel_map` over chunk specs regenerates and analyzes ranges
    concurrently without ever shipping page HTML between processes.
    """

    seed: int
    start: int
    count: int

    def pages(self, config: Optional[GeneratorConfig] = None) -> Iterator[RawFormPage]:
        return stream_pages(
            self.count, seed=self.seed, start=self.start, config=config
        )


def stream_chunks(
    n_pages: int,
    chunk_size: int,
    seed: int = 42,
    start: int = 0,
) -> List[PageChunk]:
    """Split ``[start, start + n_pages)`` into :class:`PageChunk` specs."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    chunks: List[PageChunk] = []
    index = start
    end = start + n_pages
    while index < end:
        count = min(chunk_size, end - index)
        chunks.append(PageChunk(seed=seed, start=index, count=count))
        index += count
    return chunks


__all__ = ["PageChunk", "page_at", "stream_chunks", "stream_pages"]
