"""Hub-page generation: the link neighbourhood around form pages.

Three hub species, matching the paper's observations (Sections 3.1, 4.2):

* **homogeneous domain hubs** — "best job sites" pages co-citing 2-10
  form pages of one domain.  Small ones (2-6) are pure but uninformative;
  medium ones (7-10) are the good seeds.
* **heterogeneous directories** — online directories co-citing 5-13 pages
  across many domains (the paper's "clusters which are heterogeneous and
  point to form pages in multiple domains, e.g., online directories").
* **travel portals** — the corpus's only hubs with >= 14 members, mixing
  Airfare and Hotel pages ("hub clusters with 14 or more form pages only
  contain forms from Air and Hotel").

Hubs link either to the deep form page or to the site root (which is why
the paper also harvests root-page backlinks).
"""

import random
from html import escape
from typing import Dict, List, Sequence

from repro.webgen.config import GeneratorConfig
from repro.webgen.domains import domain_by_name
from repro.webgen.sites import Site
from repro.webgen.vocab import GENERIC_NOISE, brand_name, zipf_sample
from repro.webgraph.graph import WebPage


def _hub_html(
    title: str,
    intro_words: Sequence[str],
    entries: Sequence[tuple],
    rng: random.Random,
) -> str:
    """Render a hub page: intro prose plus a link list."""
    intro = " ".join(intro_words)
    items = "\n".join(
        f"<li><a href=\"{escape(url)}\">{escape(anchor)}</a></li>"
        for url, anchor in entries
    )
    noise = " ".join(zipf_sample(GENERIC_NOISE, 8, rng))
    return f"""<html>
<head><title>{escape(title)}</title></head>
<body>
<h1>{escape(title)}</h1>
<p>{escape(intro.capitalize())}.</p>
<ul>
{items}
</ul>
<p>{escape(noise)}</p>
</body>
</html>"""


def _link_target(site: Site, config: GeneratorConfig, rng: random.Random) -> str:
    """Deep link or homepage link, per the config probability."""
    if rng.random() < config.hub_links_root_probability:
        return site.root_url
    return site.form_page_url


def _hub_page(
    url: str,
    title: str,
    member_sites: Sequence[Site],
    intro_pool: Sequence[str],
    config: GeneratorConfig,
    rng: random.Random,
) -> WebPage:
    entries = []
    for site in member_sites:
        anchor_noun = rng.choice(intro_pool) if intro_pool else "search"
        entries.append(
            (_link_target(site, config, rng), f"{site.brand.capitalize()} {anchor_noun}")
        )
    intro_words = zipf_sample(list(intro_pool) or GENERIC_NOISE, 12, rng)
    html = _hub_html(title, intro_words, entries, rng)
    return WebPage(
        url=url,
        html=html,
        outlinks=[target for target, _ in entries],
        kind="hub",
    )


def generate_hubs(
    sites_by_domain: Dict[str, List[Site]],
    hub_eligible: Dict[str, List[Site]],
    config: GeneratorConfig,
    rng: random.Random,
) -> List[WebPage]:
    """Generate every hub page over the (non-orphan) sites.

    ``hub_eligible`` maps domain name -> sites that may receive hub
    inlinks (orphans excluded).
    """
    hubs: List[WebPage] = []
    hub_counter = 0

    def next_url(slug: str) -> str:
        nonlocal hub_counter
        hub_counter += 1
        return f"http://dir.{brand_name(rng)}{hub_counter}.org/{slug}.html"

    # -- Homogeneous domain hubs ------------------------------------
    for domain_name, eligible in sorted(hub_eligible.items()):
        domain = domain_by_name(domain_name)
        # Medium hubs run up to 13 members: the paper's corpus has
        # homogeneous clusters below 14 in every domain (only >=14 are
        # exclusively Air/Hotel).
        sizes = (
            [rng.randint(2, 6) for _ in range(config.small_hubs_per_domain)]
            + [rng.randint(7, 13) for _ in range(config.medium_hubs_per_domain)]
        )
        for size in sizes:
            if len(eligible) < 2:
                break
            members = rng.sample(eligible, min(size, len(eligible)))
            title_noun = rng.choice(domain.title_nouns) if domain.title_nouns else "Links"
            hubs.append(
                _hub_page(
                    next_url(f"{domain_name}-links"),
                    f"Best {title_noun} Sites",
                    members,
                    domain.topic_words,
                    config,
                    rng,
                )
            )

    # -- Heterogeneous directories ----------------------------------
    all_eligible = [site for sites in hub_eligible.values() for site in sites]
    for _ in range(config.n_directories):
        if len(all_eligible) < 5:
            break
        size = rng.randint(5, 13)
        members = rng.sample(all_eligible, min(size, len(all_eligible)))
        hubs.append(
            _hub_page(
                next_url("directory"),
                "Searchable Databases Directory",
                members,
                GENERIC_NOISE,
                config,
                rng,
            )
        )

    # -- Large travel portals (Airfare + Hotel only) -----------------
    travel_pool = list(hub_eligible.get("airfare", ())) + list(
        hub_eligible.get("hotel", ())
    )
    for _ in range(config.n_travel_portals):
        if len(travel_pool) < 14:
            break
        size = rng.randint(14, min(20, len(travel_pool)))
        members = rng.sample(travel_pool, size)
        hubs.append(
            _hub_page(
                next_url("travel-portal"),
                "Travel Booking Portal",
                members,
                ("travel", "trip", "vacation", "booking", "destination"),
                config,
                rng,
            )
        )

    return hubs
