"""Synthetic hidden-web generator.

The paper evaluates on 454 real form pages (UIUC repository + focused
crawler) spanning eight database domains, plus AltaVista backlinks.
Neither resource is reachable here, so this package generates a
deterministic synthetic web with the same statistical profile:

* eight domains — Airfare, Auto, Book, Hotel, Job, Movie, Music,
  Rental-car — with distinctive vocabularies, heterogeneous attribute
  labels per site, and a deliberate Music/Movie vocabulary overlap;
* 454 form pages: 56 single-attribute keyword forms, 398 multi-attribute
  forms, with the Table-1 anticorrelation between form size and page
  content;
* realistic noise: generic web boilerplate on every page, site-specific
  brand vocabulary, non-searchable forms (login boxes) on some sites;
* a hyperlink neighbourhood: site root pages, homogeneous domain hubs,
  heterogeneous directories, intra-site links, and an incomplete
  simulated search-engine index over it all.

Entry point: :func:`repro.webgen.corpus.generate_benchmark`.
"""

from repro.webgen.config import GeneratorConfig
from repro.webgen.corpus import SyntheticWeb, generate_benchmark
from repro.webgen.domains import DOMAINS, DomainSpec, domain_by_name
from repro.webgen.stream import PageChunk, page_at, stream_chunks, stream_pages

__all__ = [
    "GeneratorConfig",
    "SyntheticWeb",
    "generate_benchmark",
    "DOMAINS",
    "DomainSpec",
    "domain_by_name",
    "PageChunk",
    "page_at",
    "stream_chunks",
    "stream_pages",
]
