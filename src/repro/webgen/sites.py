"""Site generation: one hidden-web site per form page.

Each site gets its own host, a root page linking to the searchable form
page, an about page, and (with some probability) a login page carrying a
non-searchable form — the page mix a focused crawler actually encounters.
"""

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.webgen.config import GeneratorConfig
from repro.webgen.domains import DomainSpec
from repro.webgen.forms_gen import (
    GeneratedForm,
    keyword_form,
    login_form,
    mixed_entertainment_form,
    multi_attribute_form,
)
from repro.webgen.pages_gen import PageBlueprint, build_content_page, build_form_page
from repro.webgen.vocab import brand_name
from repro.webgraph.graph import WebPage


@dataclass
class Site:
    """One generated hidden-web site."""

    domain_name: str          # gold label of its database
    brand: str
    host: str
    root_url: str
    form_page_url: str
    form_blueprint: PageBlueprint
    pages: List[WebPage] = field(default_factory=list)
    is_single_attribute: bool = False
    is_mixed_entertainment: bool = False


def _make_host(domain: DomainSpec, rng: random.Random, used_hosts: set) -> str:
    """A unique host name hinting at the domain ('www.flyzumiko.com')."""
    while True:
        prefix = rng.choice(domain.site_words) if domain.site_words else ""
        host = f"www.{prefix}{brand_name(rng)}.com"
        if host not in used_hosts:
            used_hosts.add(host)
            return host


def build_site(
    domain: DomainSpec,
    config: GeneratorConfig,
    rng: random.Random,
    used_hosts: set,
    form_kind: str = "multi",
    size_class: str = "medium",
    mixed_with: Optional[DomainSpec] = None,
    label_override: Optional[str] = None,
    crosstalk_with: Optional[DomainSpec] = None,
) -> Site:
    """Generate one site around one searchable form.

    ``form_kind`` is ``multi`` / ``keyword`` / ``mixed``; ``size_class``
    steers multi-attribute form size (Table-1 buckets);
    ``mixed_with`` + ``label_override`` build the ambiguous
    Music/Movie pages.  ``crosstalk_with`` blends ~30% of a sibling
    domain's vocabulary into the *prose only* (cross-selling pages whose
    form remains clearly single-domain) — the cases where PC misleads
    and FC must compensate.
    """
    host = _make_host(domain, rng, used_hosts)
    brand = host[4:-4]  # strip 'www.' and '.com'
    # Site-specific flavour vocabulary, reused across the site's pages.
    from repro.webgen.vocab import MISC_FLAVOR

    site_flavor = rng.sample(MISC_FLAVOR, rng.randint(4, 8))
    root_url = f"http://{host}/"
    form_page_url = f"http://{host}/search.html"
    about_url = f"http://{host}/about.html"

    extra_topic: Sequence[str] = ()
    extra_rate = 0.5
    keyword_hint = None
    if form_kind == "keyword":
        form: GeneratedForm = keyword_form(domain, rng)
        keyword_hint = domain.keyword_hint
    elif form_kind == "mixed":
        if mixed_with is None:
            raise ValueError("mixed form needs mixed_with domain")
        form = mixed_entertainment_form(domain, mixed_with, rng)
        extra_topic = mixed_with.topic_words
    else:
        form = multi_attribute_form(domain, rng, size_class=size_class)
        if crosstalk_with is not None:
            # Cross-selling prose mixes the sibling vocabulary evenly;
            # only the form (and the title lean) betrays the real domain.
            extra_topic = crosstalk_with.topic_words
            extra_rate = 0.5

    blueprint = build_form_page(
        domain,
        brand,
        form,
        config,
        rng,
        extra_topic=extra_topic,
        extra_rate=extra_rate,
        include_newsletter=rng.random() < 0.12,
        keyword_hint=keyword_hint,
        site_flavor=site_flavor,
        force_domain_title=crosstalk_with is not None,
    )

    pages: List[WebPage] = []
    has_login = rng.random() < config.login_page_probability
    login_url = f"http://{host}/login.html"

    root_links = [(form_page_url, f"Search {domain.display_name}")]
    root_links.append((about_url, "About Us"))
    if has_login:
        root_links.append((login_url, "Member Login"))
    root_html = build_content_page(
        domain, brand, "Welcome", config, rng, links=root_links,
        site_flavor=site_flavor,
    )
    root_outlinks = [href for href, _ in root_links]
    pages.append(WebPage(url=root_url, html=root_html, outlinks=root_outlinks, kind="root"))

    pages.append(
        WebPage(
            url=form_page_url,
            html=blueprint.html,
            outlinks=[root_url, about_url],
            kind="form",
        )
    )

    about_html = build_content_page(
        domain, brand, "About Us", config, rng, links=[(root_url, "Home")],
        site_flavor=site_flavor,
    )
    pages.append(WebPage(url=about_url, html=about_html, outlinks=[root_url], kind="content"))

    if has_login:
        login_html = build_content_page(
            domain, brand, "Member Login", config, rng, links=[(root_url, "Home")],
            site_flavor=site_flavor,
        )
        # Inject the login form right before the closing body tag.
        login_html = login_html.replace("</body>", login_form(rng).html + "\n</body>")
        pages.append(
            WebPage(url=login_url, html=login_html, outlinks=[root_url], kind="login")
        )

    label = label_override or domain.name
    return Site(
        domain_name=label,
        brand=brand,
        host=host,
        root_url=root_url,
        form_page_url=form_page_url,
        form_blueprint=blueprint,
        pages=pages,
        is_single_attribute=(form_kind == "keyword"),
        is_mixed_entertainment=(form_kind == "mixed"),
    )
