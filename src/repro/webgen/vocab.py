"""Shared vocabulary pools and sampling helpers for the generator.

Two kinds of noise make real form pages hard to cluster, and both are
reproduced here:

* **generic web boilerplate** — terms like ``privacy``, ``copyright``,
  ``shipping`` that appear on pages of *every* domain (the paper's
  Section 2.1 example of terms TF-IDF must suppress);
* **site idiosyncrasy** — brand names and local flavour words unique to
  one site, which inflate vocabulary heterogeneity within a domain.
"""

import random
from typing import List, Sequence

# Boilerplate that appears across all domains.  The paper names privacy,
# shop(ping), copyright and help explicitly as high-frequency generic terms.
GENERIC_NOISE = [
    "privacy", "policy", "copyright", "reserved", "rights", "help",
    "shopping", "shop", "account", "contact", "about", "home", "news",
    "press", "terms", "conditions", "service", "services", "customer",
    "support", "faq", "sitemap", "welcome", "online", "free", "new",
    "best", "top", "deal", "deals", "save", "savings", "order", "member",
    "membership", "secure", "security", "guarantee", "gift", "gifts",
    "special", "offer", "offers", "today", "international", "advanced",
    "popular", "featured", "browse", "view", "list", "information",
    "email", "newsletter", "affiliate", "partner", "partners", "company",
]

# General-purpose "site flavor" vocabulary: each generated site adopts a
# few of these and repeats them across its pages.  They are domain-neutral
# but site-correlated, producing the within-domain vocabulary
# heterogeneity the paper says makes content-only clustering hard
# (Section 2.3).
MISC_FLAVOR = [
    "community", "resource", "resources", "guide", "guides", "network",
    "center", "solution", "solutions", "premier", "quality", "trusted",
    "award", "winning", "leader", "leading", "local", "nationwide",
    "experience", "experienced", "comprehensive", "exclusive", "selection",
    "choice", "choices", "value", "values", "expert", "experts",
    "professional", "directory", "source", "tool", "tools", "tips",
    "advice", "compare", "comparison", "reviews", "rated", "ratings",
    "easy", "fast", "simple", "instant", "complete", "ultimate",
    "official", "independent", "largest", "biggest", "premium",
]

# Submit-button caption variants (generic, domain-neutral).
SUBMIT_CAPTIONS = ["Search", "Go", "Find", "Submit", "Search Now", "Find It"]

# Syllables for synthetic brand names ("veltaro", "zumiko", ...).
_BRAND_SYLLABLES = [
    "ve", "zu", "ta", "mi", "ko", "ra", "lo", "ne", "qui", "sa", "po",
    "du", "li", "fa", "ro", "ge", "ba", "ci", "mo", "tu", "wa", "xe",
]


def brand_name(rng: random.Random) -> str:
    """A pronounceable synthetic brand name, 2-4 syllables.

    Brand names are site-unique vocabulary: they appear all over one site
    and nowhere else, exactly like real site names do.
    """
    n_syllables = rng.randint(2, 4)
    return "".join(rng.choice(_BRAND_SYLLABLES) for _ in range(n_syllables))


def zipf_sample(pool: Sequence[str], count: int, rng: random.Random, s: float = 1.2) -> List[str]:
    """Sample ``count`` items from ``pool`` with a Zipf-like skew.

    Earlier pool entries are proportionally more likely (weight
    ``1 / rank^s``), mirroring natural term-frequency skew: a domain's
    head vocabulary dominates its pages while tail terms appear rarely.
    Sampling is with replacement — repetition is the point (TF counts).
    """
    if not pool:
        return []
    weights = [1.0 / (rank + 1) ** s for rank in range(len(pool))]
    return rng.choices(list(pool), weights=weights, k=count)


def sample_distinct(pool: Sequence[str], count: int, rng: random.Random) -> List[str]:
    """Sample up to ``count`` distinct items (fewer if the pool is small)."""
    count = min(count, len(pool))
    return rng.sample(list(pool), count)


def sentence_case(words: Sequence[str]) -> str:
    """Join words into a crude sentence (capitalized, period-terminated)."""
    if not words:
        return ""
    text = " ".join(words)
    return text[0].upper() + text[1:] + "."
