"""The eight database domains of the paper's corpus (Section 4.1).

Each :class:`DomainSpec` captures what real sites in the domain share and
where they differ:

* ``attributes`` — the domain schema.  Every attribute carries several
  *label variants* ("the first form uses Job Category and State, whereas
  the second uses Industry and Location to represent the same concepts"),
  and each generated site picks its own variant, so no two sites present
  the same field names.
* ``topic_words`` — head-first prose vocabulary (Zipf-sampled).
* ``shared_words`` — vocabulary deliberately shared with sibling domains:
  Music and Movie share an entertainment-retail pool (the paper's main
  error source), the travel trio shares booking vocabulary, and Auto and
  Rental-car share vehicle words.
* value pools for ``<select>`` options; travel domains share the CITIES
  pool, which is precisely why the paper discounts option text (LOC) —
  options reflect database contents, not the schema.
"""

from dataclasses import dataclass, field
from typing import Dict, Tuple

# ---------------------------------------------------------------------
# Shared value pools (database contents — surfaces in <option> tags).
# ---------------------------------------------------------------------

CITIES: Tuple[str, ...] = (
    "New York", "Los Angeles", "Chicago", "Houston", "Phoenix",
    "Philadelphia", "San Antonio", "San Diego", "Dallas", "San Jose",
    "Austin", "Jacksonville", "Columbus", "Charlotte", "Indianapolis",
    "Seattle", "Denver", "Boston", "Nashville", "Detroit", "Portland",
    "Memphis", "Las Vegas", "Baltimore", "Milwaukee", "Albuquerque",
    "Tucson", "Sacramento", "Kansas City", "Atlanta", "Miami", "Omaha",
    "Oakland", "Minneapolis", "Cleveland", "Tampa", "Orlando", "Honolulu",
    "Pittsburgh", "Cincinnati", "Anchorage", "Buffalo", "Newark",
    "London", "Paris", "Tokyo", "Sydney", "Toronto", "Vancouver", "Rome",
    "Madrid", "Berlin", "Amsterdam", "Dublin", "Frankfurt", "Zurich",
    "Saint Louis", "New Orleans", "Salt Lake City", "San Francisco",
    "Fort Worth", "El Paso", "Raleigh", "Richmond", "Hartford",
    "Providence", "Louisville", "Oklahoma City", "Tulsa", "Boise",
    "Des Moines", "Spokane", "Fresno", "Tucson West", "Mexico City",
    "Montreal", "Hong Kong", "Singapore", "Bangkok", "Istanbul",
)

STATES: Tuple[str, ...] = (
    "Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
    "Connecticut", "Delaware", "Florida", "Georgia", "Hawaii", "Idaho",
    "Illinois", "Indiana", "Iowa", "Kansas", "Kentucky", "Louisiana",
    "Maine", "Maryland", "Massachusetts", "Michigan", "Minnesota",
    "Mississippi", "Missouri", "Montana", "Nebraska", "Nevada",
    "New Hampshire", "New Jersey", "New Mexico", "New York",
    "North Carolina", "North Dakota", "Ohio", "Oklahoma", "Oregon",
    "Pennsylvania", "Rhode Island", "South Carolina", "South Dakota",
    "Tennessee", "Texas", "Utah", "Vermont", "Virginia", "Washington",
    "West Virginia", "Wisconsin", "Wyoming",
)

MONTHS: Tuple[str, ...] = (
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
)

# ---------------------------------------------------------------------
# Shared prose pools (vocabulary overlap between sibling domains).
# ---------------------------------------------------------------------

ENTERTAINMENT_SHARED: Tuple[str, ...] = (
    "title", "titles", "genre", "release", "releases", "entertainment",
    "media", "store", "collection", "review", "reviews", "chart",
    "soundtrack", "disc", "bestselling", "catalog",
)

TRAVEL_SHARED: Tuple[str, ...] = (
    "travel", "trip", "reservation", "booking", "destination", "airport",
    "vacation", "itinerary", "traveler",
)

VEHICLE_SHARED: Tuple[str, ...] = (
    "car", "cars", "vehicle", "vehicles", "driver", "driving",
)


@dataclass(frozen=True)
class AttributeSpec:
    """One schema attribute of a domain.

    ``kind`` is ``select`` (options from ``value_pool``), ``text`` (free
    input) or ``month`` (a month dropdown, shared travel furniture).
    ``option_range`` bounds how many options a generated site shows;
    sites with long option lists produce the paper's large (>=100-term)
    forms.
    """

    concept: str
    label_variants: Tuple[str, ...]
    kind: str = "select"
    value_pool: Tuple[str, ...] = ()
    option_range: Tuple[int, int] = (4, 10)
    required: bool = False


@dataclass(frozen=True)
class DomainSpec:
    """One database domain: schema, vocabulary, naming."""

    name: str
    display_name: str
    attributes: Tuple[AttributeSpec, ...]
    topic_words: Tuple[str, ...]
    shared_words: Tuple[str, ...] = ()
    site_words: Tuple[str, ...] = ()      # hostname ingredients
    title_nouns: Tuple[str, ...] = ()     # "<Brand> Flight Search" etc.
    keyword_hint: str = "Search"          # caption near keyword boxes


AIRFARE = DomainSpec(
    name="airfare",
    display_name="Airfare",
    attributes=(
        AttributeSpec(
            "origin",
            ("From", "Departure City", "Leaving From", "Depart From", "Origin"),
            kind="select", value_pool=CITIES, option_range=(10, 40), required=True,
        ),
        AttributeSpec(
            "destination",
            ("To", "Destination City", "Going To", "Arrive In", "Destination"),
            kind="select", value_pool=CITIES, option_range=(10, 40), required=True,
        ),
        AttributeSpec(
            "depart_month", ("Departure Date", "Depart", "Leaving On"),
            kind="month", required=True,
        ),
        AttributeSpec(
            "return_month", ("Return Date", "Return", "Coming Back"),
            kind="month",
        ),
        AttributeSpec(
            "cabin",
            ("Class", "Cabin", "Service Class", "Seating"),
            kind="select",
            value_pool=("Economy", "Premium Economy", "Business", "First"),
            option_range=(3, 4),
        ),
        AttributeSpec(
            "airline",
            ("Airline", "Preferred Airline", "Carrier"),
            kind="select",
            value_pool=(
                "American Airlines", "United Airlines", "Delta", "Continental",
                "Northwest", "Southwest", "US Airways", "JetBlue", "Alaska Airlines",
                "Air Canada", "British Airways", "Lufthansa", "Air France",
            ),
            option_range=(5, 13),
        ),
        AttributeSpec(
            "trip_type", ("Trip Type", "Flight Type"),
            kind="select",
            value_pool=("Round Trip", "One Way", "Multi City"),
            option_range=(2, 3),
        ),
    ),
    topic_words=(
        "flight", "flights", "airfare", "airfares", "airline", "airlines",
        "fare", "fares", "ticket", "tickets", "fly", "flying", "departure",
        "arrival", "nonstop", "roundtrip", "cheap", "lowest", "deals",
        "domestic", "international", "seat", "seats", "cabin", "airways",
        "departing", "arriving", "layover", "connecting", "aviation",
        "mileage", "miles", "frequent", "flyer", "boarding",
    ),
    shared_words=TRAVEL_SHARED,
    site_words=("fly", "air", "flight", "fare", "wings", "sky", "jet"),
    title_nouns=("Cheap Flights", "Airfare Search", "Flight Deals", "Low Fares"),
    keyword_hint="Search Flights",
)

AUTO = DomainSpec(
    name="auto",
    display_name="Auto",
    attributes=(
        AttributeSpec(
            "make",
            ("Make", "Manufacturer", "Brand", "Car Make"),
            kind="select",
            value_pool=(
                "Acura", "Audi", "BMW", "Buick", "Cadillac", "Chevrolet",
                "Chrysler", "Dodge", "Ford", "GMC", "Honda", "Hyundai",
                "Infiniti", "Jaguar", "Jeep", "Kia", "Lexus", "Lincoln",
                "Mazda", "Mercedes Benz", "Mercury", "Mitsubishi", "Nissan",
                "Pontiac", "Porsche", "Saab", "Saturn", "Subaru", "Suzuki",
                "Toyota", "Volkswagen", "Volvo",
            ),
            option_range=(10, 32), required=True,
        ),
        AttributeSpec("model", ("Model", "Car Model"), kind="text"),
        AttributeSpec(
            "body_style",
            ("Body Style", "Vehicle Type", "Style"),
            kind="select",
            value_pool=(
                "Sedan", "Coupe", "Convertible", "Hatchback", "Wagon",
                "SUV", "Truck", "Van", "Minivan", "Roadster",
            ),
            option_range=(5, 10),
        ),
        AttributeSpec(
            "price_range",
            ("Price Range", "Price", "Maximum Price"),
            kind="select",
            value_pool=(
                "Under 5000", "5000 to 10000", "10000 to 15000",
                "15000 to 20000", "20000 to 30000", "30000 to 40000",
                "Over 40000",
            ),
            option_range=(4, 7),
        ),
        AttributeSpec(
            "condition",
            ("Condition", "New or Used"),
            kind="select",
            value_pool=("New", "Used", "Certified Pre Owned"),
            option_range=(2, 3), required=True,
        ),
        AttributeSpec(
            "state",
            ("State", "Location", "Search Within"),
            kind="select", value_pool=STATES, option_range=(10, 50),
        ),
        AttributeSpec("zip", ("Zip Code", "Zip", "Near Zip"), kind="text"),
        AttributeSpec(
            "color",
            ("Exterior Color", "Color", "Paint Color"),
            kind="select",
            value_pool=(
                "Black", "White", "Silver", "Gray", "Red", "Blue", "Green",
                "Gold", "Beige", "Brown", "Orange", "Yellow", "Purple",
                "Maroon", "Champagne", "Pewter",
            ),
            option_range=(6, 16),
        ),
    ),
    topic_words=(
        "auto", "autos", "automobile", "automotive", "dealer", "dealers",
        "dealership", "used", "mileage", "engine", "transmission",
        "automatic", "sedan", "truck", "suv", "warranty", "financing",
        "lease", "leasing", "trade", "inventory", "listings", "motor",
        "motors", "odometer", "horsepower", "cylinder", "wheel", "tire",
        "certified", "preowned", "invoice", "msrp", "test", "drive",
    ),
    shared_words=VEHICLE_SHARED,
    site_words=("auto", "car", "motor", "wheel", "drive", "dealer"),
    title_nouns=("Used Cars", "Auto Classifieds", "Car Search", "New and Used Autos"),
    keyword_hint="Find Cars",
)

BOOK = DomainSpec(
    name="book",
    display_name="Book",
    attributes=(
        AttributeSpec("title", ("Title", "Book Title"), kind="text", required=True),
        AttributeSpec("author", ("Author", "Written By", "Author Name"), kind="text", required=True),
        AttributeSpec("isbn", ("ISBN", "ISBN Number"), kind="text"),
        AttributeSpec(
            "category",
            ("Category", "Subject", "Genre", "Section"),
            kind="select",
            value_pool=(
                "Fiction", "Mystery", "Romance", "Science Fiction", "Fantasy",
                "Biography", "History", "Business", "Computers", "Cooking",
                "Travel", "Children", "Poetry", "Reference", "Religion",
                "Self Help", "Health", "Art", "Sports", "Textbooks",
                "Thriller", "Western", "Horror", "Philosophy", "Psychology",
                "Politics", "Science", "Nature", "Crafts", "Humor",
            ),
            option_range=(8, 30),
        ),
        AttributeSpec(
            "format",
            ("Format", "Binding", "Book Format"),
            kind="select",
            value_pool=("Hardcover", "Paperback", "Audio Book", "Large Print"),
            option_range=(2, 4),
        ),
        AttributeSpec("publisher", ("Publisher", "Publishing House"), kind="text"),
        AttributeSpec("keyword", ("Keyword", "Keywords"), kind="text"),
        AttributeSpec(
            "language",
            ("Language", "Book Language"),
            kind="select",
            value_pool=(
                "English", "Spanish", "French", "German", "Italian",
                "Portuguese", "Chinese", "Japanese", "Russian", "Arabic",
                "Hindi", "Korean", "Dutch", "Swedish",
            ),
            option_range=(4, 14),
        ),
    ),
    topic_words=(
        "book", "books", "author", "authors", "publisher", "publishing",
        "isbn", "paperback", "hardcover", "edition", "editions", "novel",
        "novels", "fiction", "nonfiction", "bestseller", "bestsellers",
        "bookstore", "bookseller", "textbook", "textbooks", "literature",
        "literary", "read", "reading", "reader", "chapter", "library",
        "print", "copy", "copies", "volume", "bibliography", "writer",
    ),
    site_words=("book", "read", "page", "novel", "text", "press"),
    title_nouns=("Book Search", "Online Bookstore", "New and Used Books", "Book Finder"),
    keyword_hint="Search Books",
)

HOTEL = DomainSpec(
    name="hotel",
    display_name="Hotel",
    attributes=(
        AttributeSpec(
            "city",
            ("City", "Destination", "Where", "Location"),
            kind="select", value_pool=CITIES, option_range=(10, 40), required=True,
        ),
        AttributeSpec(
            "checkin_month", ("Check In", "Arrival Date", "Check In Date"),
            kind="month", required=True,
        ),
        AttributeSpec(
            "checkout_month", ("Check Out", "Departure Date", "Check Out Date"),
            kind="month",
        ),
        AttributeSpec(
            "rooms",
            ("Rooms", "Number of Rooms"),
            kind="select",
            value_pool=("One Room", "Two Rooms", "Three Rooms", "Four Rooms"),
            option_range=(2, 4),
        ),
        AttributeSpec(
            "guests",
            ("Guests", "Adults", "Number of Guests"),
            kind="select",
            value_pool=("One Adult", "Two Adults", "Three Adults", "Four Adults"),
            option_range=(2, 4),
        ),
        AttributeSpec(
            "rating",
            ("Star Rating", "Hotel Class", "Rating"),
            kind="select",
            value_pool=(
                "One Star", "Two Stars", "Three Stars", "Four Stars", "Five Stars",
            ),
            option_range=(3, 5),
        ),
        AttributeSpec(
            "chain",
            ("Hotel Chain", "Chain", "Brand"),
            kind="select",
            value_pool=(
                "Hilton", "Marriott", "Hyatt", "Sheraton", "Westin",
                "Holiday Inn", "Best Western", "Radisson", "Ramada",
                "Comfort Inn", "Days Inn", "Embassy Suites", "Four Seasons",
            ),
            option_range=(5, 13),
        ),
    ),
    topic_words=(
        "hotel", "hotels", "room", "rooms", "lodging", "accommodation",
        "accommodations", "stay", "night", "nights", "guest", "guests",
        "resort", "resorts", "inn", "suite", "suites", "amenities",
        "rate", "rates", "availability", "motel", "motels", "breakfast",
        "pool", "spa", "concierge", "lobby", "checkin", "checkout",
        "hospitality", "bed", "beds", "smoking", "nonsmoking",
    ),
    shared_words=TRAVEL_SHARED,
    site_words=("hotel", "stay", "room", "inn", "lodge", "suite"),
    title_nouns=("Hotel Reservations", "Hotel Deals", "Find Hotels", "Hotel Rooms"),
    keyword_hint="Find Hotels",
)

JOB = DomainSpec(
    name="job",
    display_name="Job",
    attributes=(
        AttributeSpec(
            "category",
            ("Job Category", "Industry", "Field", "Job Function", "Sector"),
            kind="select",
            value_pool=(
                "Accounting", "Administrative", "Advertising", "Banking",
                "Biotech", "Construction", "Consulting", "Customer Service",
                "Education", "Engineering", "Finance", "Government",
                "Healthcare", "Hospitality", "Human Resources", "Insurance",
                "Legal", "Manufacturing", "Marketing", "Nonprofit",
                "Pharmaceutical", "Real Estate", "Restaurant", "Retail",
                "Sales", "Technology", "Telecommunications", "Transportation",
            ),
            option_range=(8, 28), required=True,
        ),
        AttributeSpec(
            "state",
            ("State", "Location", "Region", "Where"),
            kind="select", value_pool=STATES, option_range=(10, 50), required=True,
        ),
        AttributeSpec("keyword", ("Keywords", "Keyword", "Job Title"), kind="text"),
        AttributeSpec(
            "job_type",
            ("Job Type", "Employment Type", "Position Type"),
            kind="select",
            value_pool=(
                "Full Time", "Part Time", "Contract", "Temporary",
                "Internship", "Seasonal",
            ),
            option_range=(3, 6),
        ),
        AttributeSpec(
            "salary",
            ("Salary Range", "Salary", "Minimum Salary"),
            kind="select",
            value_pool=(
                "Under 30000", "30000 to 50000", "50000 to 75000",
                "75000 to 100000", "Over 100000",
            ),
            option_range=(3, 5),
        ),
        AttributeSpec(
            "experience",
            ("Experience Level", "Experience", "Career Level"),
            kind="select",
            value_pool=("Entry Level", "Mid Level", "Senior Level", "Executive"),
            option_range=(2, 4),
        ),
        AttributeSpec(
            "city",
            ("City", "Metro Area", "Near City"),
            kind="select", value_pool=CITIES, option_range=(8, 30),
        ),
    ),
    topic_words=(
        "job", "jobs", "career", "careers", "employment", "employer",
        "employers", "resume", "resumes", "salary", "salaries", "position",
        "positions", "hire", "hiring", "recruiter", "recruiters",
        "recruiting", "recruitment", "candidate", "candidates",
        "opportunity", "opportunities", "staffing", "posting", "postings",
        "seeker", "seekers", "workplace", "interview", "apply",
        "applicant", "openings", "vacancies", "professional",
    ),
    site_words=("job", "career", "work", "hire", "talent", "staff"),
    title_nouns=("Job Search", "Career Center", "Find Jobs", "Employment Listings"),
    keyword_hint="Search Jobs",
)

MOVIE = DomainSpec(
    name="movie",
    display_name="Movie",
    attributes=(
        AttributeSpec("title", ("Title", "Movie Title", "Film Title"), kind="text", required=True),
        AttributeSpec(
            "genre",
            ("Genre", "Category", "Film Genre"),
            kind="select",
            value_pool=(
                "Action", "Adventure", "Animation", "Comedy", "Crime",
                "Documentary", "Drama", "Family", "Fantasy", "Horror",
                "Musical", "Mystery", "Romance", "Science Fiction",
                "Thriller", "War", "Western", "Foreign", "Independent",
            ),
            option_range=(6, 19),
        ),
        AttributeSpec(
            "format",
            ("Format", "Media Format"),
            kind="select",
            value_pool=("DVD", "VHS", "Blu Ray", "UMD"),
            option_range=(2, 4),
        ),
        AttributeSpec("actor", ("Actor", "Starring", "Cast Member"), kind="text"),
        AttributeSpec("director", ("Director", "Directed By"), kind="text"),
        AttributeSpec(
            "rating",
            ("Rating", "MPAA Rating"),
            kind="select",
            value_pool=("Rated G", "Rated PG", "Rated PG13", "Rated R", "Unrated"),
            option_range=(3, 5),
        ),
        AttributeSpec(
            "studio",
            ("Studio", "Movie Studio", "Distributor"),
            kind="select",
            value_pool=(
                "Warner Brothers", "Paramount", "Universal", "Columbia",
                "Disney", "Twentieth Century Fox", "Miramax", "Dreamworks",
                "MGM", "Lionsgate", "New Line", "Tristar",
            ),
            option_range=(5, 12),
        ),
        AttributeSpec(
            "decade",
            ("Decade", "Release Decade", "Era"),
            kind="select",
            value_pool=(
                "Fifties", "Sixties", "Seventies", "Eighties",
                "Nineties", "Two Thousands",
            ),
            option_range=(3, 6),
        ),
    ),
    topic_words=(
        "movie", "movies", "film", "films", "dvd", "dvds", "video",
        "videos", "actor", "actors", "actress", "director", "directors",
        "cinema", "theater", "screen", "trailer", "trailers", "drama",
        "comedy", "thriller", "horror", "widescreen", "hollywood",
        "starring", "cast", "scene", "scenes", "feature", "festival",
        "oscar", "screenplay", "studio", "boxoffice",
    ),
    shared_words=ENTERTAINMENT_SHARED,
    site_words=("movie", "film", "dvd", "cinema", "reel", "screen"),
    title_nouns=("Movie Search", "DVD Store", "Film Database", "Movies and DVDs"),
    keyword_hint="Search Movies",
)

MUSIC = DomainSpec(
    name="music",
    display_name="Music",
    attributes=(
        AttributeSpec("artist", ("Artist", "Artist Name", "Band"), kind="text", required=True),
        AttributeSpec("album", ("Album", "Album Title"), kind="text"),
        AttributeSpec("song", ("Song", "Track", "Song Title"), kind="text"),
        AttributeSpec(
            "genre",
            ("Genre", "Music Style", "Category"),
            kind="select",
            value_pool=(
                "Rock", "Pop", "Jazz", "Classical", "Country", "Rap",
                "Hip Hop", "Blues", "Metal", "Folk", "Electronic", "Dance",
                "Reggae", "Latin", "Gospel", "Soul", "Punk", "Alternative",
                "World", "Soundtrack",
            ),
            option_range=(6, 20),
        ),
        AttributeSpec(
            "format",
            ("Format", "Media"),
            kind="select",
            value_pool=("CD", "Cassette", "Vinyl", "MP3", "DVD Audio"),
            option_range=(2, 5),
        ),
        AttributeSpec("label", ("Record Label", "Label"), kind="text"),
    ),
    topic_words=(
        "music", "album", "albums", "artist", "artists", "song", "songs",
        "band", "bands", "audio", "track", "tracks", "lyrics", "concert",
        "concerts", "tour", "record", "recording", "recordings", "label",
        "single", "singles", "vinyl", "cassette", "stereo", "listen",
        "listening", "radio", "studio", "acoustic", "instrumental",
        "musician", "musicians", "discography", "remix",
    ),
    shared_words=ENTERTAINMENT_SHARED,
    site_words=("music", "cd", "sound", "tune", "record", "audio"),
    title_nouns=("Music Store", "CD Search", "Music Downloads", "Albums and CDs"),
    keyword_hint="Search Music",
)

RENTAL = DomainSpec(
    name="rental",
    display_name="Rental Car",
    attributes=(
        AttributeSpec(
            "pickup_location",
            ("Pickup Location", "Pick Up City", "Renting In", "Pickup City"),
            kind="select", value_pool=CITIES, option_range=(10, 40), required=True,
        ),
        AttributeSpec(
            "pickup_month", ("Pickup Date", "Pick Up", "Rental Date"),
            kind="month", required=True,
        ),
        AttributeSpec(
            "return_month", ("Return Date", "Drop Off Date", "Return"),
            kind="month",
        ),
        AttributeSpec(
            "car_class",
            ("Car Class", "Car Type", "Vehicle Class", "Size"),
            kind="select",
            value_pool=(
                "Economy", "Compact", "Midsize", "Standard", "Fullsize",
                "Premium", "Luxury", "Convertible", "Minivan", "SUV",
            ),
            option_range=(5, 10), required=True,
        ),
        AttributeSpec(
            "company",
            ("Rental Company", "Company", "Agency"),
            kind="select",
            value_pool=(
                "Hertz", "Avis", "Budget", "National", "Alamo",
                "Enterprise", "Thrifty", "Dollar", "Payless",
            ),
            option_range=(4, 9),
        ),
        AttributeSpec(
            "driver_age",
            ("Driver Age", "Age of Driver"),
            kind="select",
            value_pool=("Under 25", "25 and Over", "Over 65"),
            option_range=(2, 3),
        ),
    ),
    topic_words=(
        "rental", "rentals", "rent", "pickup", "dropoff", "location",
        "locations", "rate", "rates", "daily", "weekly", "weekend",
        "unlimited", "insurance", "counter", "fleet", "compact",
        "economy", "midsize", "fullsize", "luxury", "minivan",
        "surcharge", "deposit", "renter", "agency", "agencies",
    ),
    shared_words=VEHICLE_SHARED + TRAVEL_SHARED,
    site_words=("rent", "rental", "car", "drive", "auto", "wheels"),
    title_nouns=("Car Rental", "Rental Cars", "Rent a Car", "Car Hire"),
    keyword_hint="Find Rental Cars",
)

# The canonical ordering used throughout the library and experiments.
DOMAINS: Tuple[DomainSpec, ...] = (
    AIRFARE, AUTO, BOOK, HOTEL, JOB, MOVIE, MUSIC, RENTAL,
)

_BY_NAME: Dict[str, DomainSpec] = {spec.name: spec for spec in DOMAINS}


def domain_by_name(name: str) -> DomainSpec:
    """Look up a domain spec by its short name.

    >>> domain_by_name("job").display_name
    'Job'
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown domain {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def domain_names() -> Tuple[str, ...]:
    return tuple(spec.name for spec in DOMAINS)
