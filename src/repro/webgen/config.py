"""Generator configuration.

Defaults reproduce the paper's corpus profile (Section 4.1): 454 form
pages over eight domains, 56 single-attribute / 398 multi-attribute, the
Table-1 page-content profile, and a hub neighbourhood whose raw clusters
are ~69% homogeneous with the large (>=14) clusters drawn only from the
Airfare and Hotel domains.
"""

from dataclasses import dataclass, field
from typing import Dict, Tuple


def _default_pages_per_domain() -> Dict[str, int]:
    # Sums to 454, the paper's corpus size.
    return {
        "airfare": 62,
        "auto": 58,
        "book": 60,
        "hotel": 60,
        "job": 55,
        "movie": 56,
        "music": 53,
        "rental": 50,
    }


@dataclass
class GeneratorConfig:
    """All knobs of the synthetic-web generator.

    Attributes
    ----------
    pages_per_domain:
        Form pages generated per domain (default sums to 454).
    single_attribute_per_domain:
        How many of each domain's pages carry a single-attribute keyword
        form (default 7 -> 56 total, the paper's count).
    mixed_entertainment_pages:
        Pages whose database genuinely spans Music and Movie (Figure 4's
        ambiguous forms); half are labelled music, half movie.  Drawn from
        those domains' page budgets.
    prose_mix:
        (topic, shared, generic-noise) sampling weights for page prose.
    form_text_mix:
        Same weights for the free text around form controls.
    table1_targets:
        Form-size-bucket -> mean number of prose terms outside the form
        (the Table 1 profile).  Buckets are lower bounds of the paper's
        intervals.
    crosstalk_fraction:
        Fraction of each domain's multi-attribute pages whose *prose*
        blends in a sibling domain's vocabulary (cross-selling sites:
        hotel pages advertising flights, movie stores selling CDs) while
        the form stays single-domain.  These are the pages where page
        contents mislead and form contents must compensate — the
        mechanism behind Figure 2's FC+PC > PC result.
    orphan_fraction:
        Fraction of form pages that receive no hub inlinks at all (the
        paper's "no backlinks for over 15% of forms").
    small_hubs_per_domain / medium_hubs_per_domain:
        Homogeneous hub counts per domain.  Small hubs co-cite 2-6 pages
        (mostly pure but uninformative); medium hubs co-cite 7-10 pages
        (the good seeds).
    n_directories:
        Heterogeneous directory hubs (mixed domains, sizes 5-13).
    n_travel_portals:
        Large hubs (>= 14 pages) mixing only Airfare and Hotel pages —
        the paper's observation about large hub clusters.
    hub_links_root_probability:
        Probability a hub links to the site root instead of the deep form
        page (why the paper also harvests root-page backlinks).
    login_page_probability:
        Probability a site carries a login page with a non-searchable
        form (crawler-filter workload).
    engine_coverage / engine_seed:
        Simulated search-engine index coverage and sampling seed.
    seed:
        Master RNG seed; the whole web is a pure function of the config.
    """

    pages_per_domain: Dict[str, int] = field(default_factory=_default_pages_per_domain)
    single_attribute_per_domain: int = 7
    mixed_entertainment_pages: int = 12
    prose_mix: Tuple[float, float, float] = (0.38, 0.22, 0.40)
    form_text_mix: Tuple[float, float, float] = (0.6, 0.15, 0.25)
    table1_targets: Dict[int, int] = field(
        default_factory=lambda: {0: 181, 10: 131, 50: 76, 100: 83, 200: 20}
    )
    crosstalk_fraction: float = 0.44
    orphan_fraction: float = 0.15
    small_hubs_per_domain: int = 28
    medium_hubs_per_domain: int = 6
    n_directories: int = 110
    n_travel_portals: int = 8
    hub_links_root_probability: float = 0.3
    login_page_probability: float = 0.3
    engine_coverage: float = 0.9
    engine_seed: int = 7
    max_backlinks: int = 100
    seed: int = 42

    @property
    def total_pages(self) -> int:
        return sum(self.pages_per_domain.values())

    def __post_init__(self) -> None:
        if not 0.0 <= self.orphan_fraction < 1.0:
            raise ValueError("orphan_fraction must be in [0, 1)")
        for name, count in self.pages_per_domain.items():
            if count < self.single_attribute_per_domain:
                raise ValueError(
                    f"domain {name!r} has fewer pages ({count}) than "
                    f"single-attribute forms ({self.single_attribute_per_domain})"
                )
        if self.mixed_entertainment_pages % 2 != 0:
            raise ValueError("mixed_entertainment_pages must be even")
