"""Form-page HTML generation.

Assembles complete form pages: title, navigation, prose, the form, and
footer boilerplate.  The prose volume is driven by the Table-1 profile —
pages around small forms are content-rich, pages around very large forms
are nearly bare — and the prose vocabulary mixes domain topic words,
sibling-shared words and generic web noise per the generator config.
"""

import random
from dataclasses import dataclass
from html import escape
from typing import List, Optional, Sequence, Tuple

from repro.webgen.config import GeneratorConfig
from repro.webgen.domains import DomainSpec
from repro.webgen.forms_gen import GeneratedForm
from repro.webgen.vocab import GENERIC_NOISE, zipf_sample

# Filler function words woven into prose for naturalness; the analyzer
# strips them, so they do not perturb the Table-1 term accounting.
_FILLERS = ("the", "and", "for", "with", "your", "our", "all", "from", "more")


@dataclass
class PageBlueprint:
    """Everything the site builder needs to emit one form page."""

    html: str
    domain_name: str
    n_attributes: int
    form_terms: int
    prose_terms: int


def table1_bucket(form_terms: int) -> int:
    """Map a form-term count to its Table-1 bucket lower bound."""
    if form_terms < 10:
        return 0
    if form_terms < 50:
        return 10
    if form_terms < 100:
        return 50
    if form_terms < 200:
        return 100
    return 200


def _prose_words(
    domain: DomainSpec,
    count: int,
    mix: Tuple[float, float, float],
    rng: random.Random,
    extra_topic: Sequence[str] = (),
    extra_rate: float = 0.5,
    brand: str = "",
    site_flavor: Sequence[str] = (),
) -> List[str]:
    """Sample ``count`` content words: topic / shared / generic noise.

    ``extra_topic`` is a sibling domain's vocabulary: each topic draw
    comes from it with probability ``extra_rate`` (0.5 = a genuinely
    mixed database, ~0.3 = cross-selling prose around a single-domain
    form).  ``site_flavor`` words replace part of the generic noise —
    they are domain-neutral but *site-correlated*, producing the
    within-domain vocabulary heterogeneity the paper calls out
    (Section 2.3).  A sprinkle of the site brand is added on top without
    counting against ``count``.
    """
    topic_weight, shared_weight, _noise_weight = mix
    topic_pool = list(domain.topic_words)
    shared_pool = list(domain.shared_words) or topic_pool
    words: List[str] = []
    for _ in range(count):
        roll = rng.random()
        if roll < topic_weight:
            if extra_topic and rng.random() < extra_rate:
                words.append(zipf_sample(list(extra_topic), 1, rng)[0])
            else:
                words.append(zipf_sample(topic_pool, 1, rng)[0])
        elif roll < topic_weight + shared_weight:
            words.append(zipf_sample(shared_pool, 1, rng)[0])
        elif site_flavor and rng.random() < 0.4:
            words.append(rng.choice(list(site_flavor)))
        else:
            words.append(zipf_sample(GENERIC_NOISE, 1, rng)[0])
    if brand and words:
        for _ in range(max(1, count // 20)):
            words.insert(rng.randrange(len(words)), brand)
    return words


def _paragraphs(
    words: Sequence[str], rng: random.Random, sloppy: bool = False
) -> str:
    """Wrap content words into <p> blocks with filler function words.

    ``sloppy`` emits the hand-rolled markup real 2000s-era sites were
    full of — unclosed paragraphs, uppercase tags, stray comments and
    end tags — which the tolerant parser must absorb without changing
    the visible text.
    """
    html_parts: List[str] = []
    index = 0
    while index < len(words):
        sentence_len = rng.randint(8, 16)
        chunk = list(words[index : index + sentence_len])
        index += sentence_len
        # Weave fillers between content words.
        woven: List[str] = []
        for word in chunk:
            woven.append(word)
            if rng.random() < 0.35:
                woven.append(rng.choice(_FILLERS))
        sentence = escape(" ".join(woven).capitalize()) + "."
        if sloppy:
            roll = rng.random()
            if roll < 0.3:
                html_parts.append(f"<P>{sentence}")       # unclosed, uppercase
            elif roll < 0.4:
                html_parts.append(f"<p>{sentence}</div>")  # stray end tag
            elif roll < 0.5:
                html_parts.append(f"<!-- block --><p>{sentence}</p>")
            else:
                html_parts.append(f"<p>{sentence}</p>")
        else:
            html_parts.append(f"<p>{sentence}</p>")
    return "\n".join(html_parts)


def _nav_html(brand: str) -> str:
    links = ["Home", "About Us", "Contact", "Help", "My Account"]
    anchors = " | ".join(
        f"<a href=\"/{text.lower().replace(' ', '-')}.html\">{text}</a>"
        for text in links
    )
    return f"<div class=\"nav\"><b>{escape(brand.capitalize())}</b> {anchors}</div>"


def _footer_html(brand: str, rng: random.Random) -> str:
    noise = " ".join(zipf_sample(GENERIC_NOISE, 6, rng))
    return (
        "<div class=\"footer\">"
        f"<a href=\"/privacy.html\">Privacy Policy</a> "
        f"<a href=\"/terms.html\">Terms of Service</a> "
        f"Copyright {escape(brand.capitalize())} All Rights Reserved. {escape(noise)}"
        "</div>"
    )


def build_form_page(
    domain: DomainSpec,
    brand: str,
    form: GeneratedForm,
    config: GeneratorConfig,
    rng: random.Random,
    extra_topic: Sequence[str] = (),
    extra_rate: float = 0.5,
    include_newsletter: bool = False,
    keyword_hint: Optional[str] = None,
    site_flavor: Sequence[str] = (),
    force_domain_title: bool = False,
) -> PageBlueprint:
    """Assemble one complete form page.

    ``extra_topic`` + ``extra_rate`` blend a sibling domain's vocabulary
    into the prose (mixed databases and cross-selling pages).
    ``keyword_hint`` places a descriptive string immediately *above* the
    form, outside the FORM tags — the Figure 1(c) pattern that breaks
    label-extraction approaches.
    """
    bucket = table1_bucket(form.approx_term_count)
    target = config.table1_targets[bucket]
    prose_budget = max(4, round(target * rng.uniform(0.8, 1.2)))

    # Fixed furniture (title words, nav, headline, footer) uses part of
    # the outside-form budget; prose takes the rest.
    furniture_cost = 14
    prose_count = max(0, prose_budget - furniture_cost)

    # Many real sites title their pages generically ("Welcome to X");
    # only some lead with the domain noun.  Cross-selling sites keep a
    # domain-true title even when their prose wanders — which is exactly
    # why the paper boosts title terms (LOC): the title is the one place
    # the page still says what its database is.
    if domain.title_nouns and (force_domain_title or rng.random() < 0.6):
        title_noun = rng.choice(domain.title_nouns)
    else:
        title_noun = rng.choice(("Welcome", "Home Page", "Online", "Search"))
    title = f"{brand.capitalize()} {title_noun}"
    if rng.random() < 0.5:
        headline_words = zipf_sample(list(domain.topic_words), 3, rng)
    else:
        headline_words = zipf_sample(GENERIC_NOISE, 3, rng)
    headline = " ".join(headline_words).title()

    # Sparse pages (around large forms) are navigation shells: what little
    # text they have is mostly boilerplate, so their PC vector is weak and
    # FC must carry them — the paper's compensation argument (Table 1).
    mix = config.prose_mix
    if prose_count < 40:
        topic_weight, shared_weight, noise_weight = mix
        mix = (topic_weight * 0.4, shared_weight * 0.6,
               1.0 - topic_weight * 0.4 - shared_weight * 0.6)

    words = _prose_words(
        domain, prose_count, mix, rng,
        extra_topic=extra_topic, extra_rate=extra_rate,
        brand=brand, site_flavor=site_flavor,
    )
    # A quarter of real sites ship sloppy hand-rolled markup; the
    # pipeline must digest it unchanged.
    sloppy = rng.random() < 0.25
    split = rng.randint(0, len(words)) if words else 0
    prose_above = _paragraphs(words[:split], rng, sloppy=sloppy)
    prose_below = _paragraphs(words[split:], rng, sloppy=sloppy)

    hint_html = ""
    if keyword_hint:
        hint_html = f"<b>{escape(keyword_hint)}</b><br>"

    newsletter_html = ""
    if include_newsletter:
        from repro.webgen.forms_gen import newsletter_form

        newsletter_html = newsletter_form(rng).html

    html = f"""<html>
<head><title>{escape(title)}</title></head>
<body>
{_nav_html(brand)}
<h1>{escape(headline)}</h1>
{prose_above}
{hint_html}{form.html}
{prose_below}
{newsletter_html}
{_footer_html(brand, rng)}
</body>
</html>"""
    return PageBlueprint(
        html=html,
        domain_name=domain.name,
        n_attributes=form.n_attributes,
        form_terms=form.approx_term_count,
        prose_terms=prose_count,
    )


def build_content_page(
    domain: DomainSpec,
    brand: str,
    title_suffix: str,
    config: GeneratorConfig,
    rng: random.Random,
    links: Sequence[Tuple[str, str]] = (),
    site_flavor: Sequence[str] = (),
) -> str:
    """A non-form page (site root, about page): prose plus links.

    ``links`` is a sequence of (href, anchor text).
    """
    words = _prose_words(
        domain, rng.randint(40, 90), config.prose_mix, rng,
        brand=brand, site_flavor=site_flavor,
    )
    link_html = "<br>".join(
        f"<a href=\"{escape(href)}\">{escape(text)}</a>" for href, text in links
    )
    title = f"{brand.capitalize()} {title_suffix}"
    return f"""<html>
<head><title>{escape(title)}</title></head>
<body>
{_nav_html(brand)}
<h1>{escape(title_suffix)}</h1>
{_paragraphs(words, rng)}
{link_html}
{_footer_html(brand, rng)}
</body>
</html>"""
