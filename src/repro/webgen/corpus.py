"""Corpus orchestration: the full synthetic benchmark web.

:func:`generate_benchmark` builds the whole artifact — 454 form pages
with their sites, hubs, directories and a simulated search engine —
deterministically from a seed.  :class:`SyntheticWeb` is the handle the
experiments use: it yields :class:`~repro.core.form_page.RawFormPage`
inputs exactly the way the paper assembled its dataset (HTML plus
harvested backlinks, root-page fallback included).
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.form_page import RawFormPage
from repro.parallel.config import ParallelConfig
from repro.webgen.config import GeneratorConfig
from repro.webgen.domains import DOMAINS, domain_by_name
from repro.webgen.hubs_gen import generate_hubs
from repro.webgen.sites import Site, build_site
from repro.webgraph.graph import WebGraph
from repro.webgraph.search_api import SimulatedSearchEngine

# Size-class mix for multi-attribute forms (Table 1 coverage).
_SIZE_CLASS_WEIGHTS = (("small", 0.30), ("medium", 0.40), ("large", 0.30))

# Which domains cross-sell which (prose cross-talk): travel sites mention
# each other, entertainment stores carry both media, rental desks talk
# about cars.
_CROSSTALK_SIBLINGS = {
    "airfare": ("hotel", "rental"),
    "hotel": ("airfare", "rental"),
    "rental": ("airfare", "hotel", "auto"),
    "auto": ("rental",),
    "music": ("movie",),
    "movie": ("music",),
    "book": ("movie", "music"),
}


@dataclass
class SyntheticWeb:
    """The generated benchmark: graph + sites + gold labels."""

    config: GeneratorConfig
    graph: WebGraph
    sites: List[Site]
    orphan_urls: frozenset = frozenset()
    _engine: Optional[SimulatedSearchEngine] = field(default=None, repr=False)

    # ----------------------------------------------------------------
    # Accessors.
    # ----------------------------------------------------------------

    @property
    def n_form_pages(self) -> int:
        return len(self.sites)

    def labels(self) -> List[str]:
        """Gold domain labels, aligned with :meth:`raw_pages` order."""
        return [site.domain_name for site in self.sites]

    def form_page_urls(self) -> List[str]:
        return [site.form_page_url for site in self.sites]

    def search_engine(self) -> SimulatedSearchEngine:
        """The (cached) simulated search engine over this web."""
        if self._engine is None:
            self._engine = SimulatedSearchEngine(
                self.graph,
                coverage=self.config.engine_coverage,
                max_results=self.config.max_backlinks,
                seed=self.config.engine_seed,
            )
        return self._engine

    # ----------------------------------------------------------------
    # Dataset assembly (what the paper's Section 4.1 setup produces).
    # ----------------------------------------------------------------

    def raw_pages(
        self,
        use_root_backlinks: bool = True,
        include_anchor_text: bool = False,
        parallel: Optional[ParallelConfig] = None,
        engine=None,
    ) -> List[RawFormPage]:
        """The clustering input: HTML + harvested backlinks + gold label.

        Backlinks are harvested from the simulated engine: ``link:`` on
        the form page plus (by default) ``link:`` on the site root —
        Section 3.1's mitigation for backlink incompleteness.

        ``include_anchor_text`` additionally fetches each backlink page
        and collects the anchor strings of its links to the form page or
        site root (the Section-6 anchor-text extension).

        ``parallel`` harvests per-site backlinks (and anchor text)
        concurrently; per-site assembly is an independent pure read of
        the graph and the engine's deterministic index, and results are
        collected in site order, so the output is identical to serial.

        ``engine`` substitutes another ``link_query`` provider for the
        cached simulated engine — chaos runs pass a
        :class:`~repro.resilience.flaky.FlakySearchEngine` (or its
        :class:`~repro.resilience.flaky.ResilientSearchEngine` wrapper)
        here to exercise the backlink seam under injected faults.
        """
        from repro.link_analysis.anchor_text import harvest_anchor_texts
        from repro.parallel.ingest import parallel_map

        if engine is None:
            engine = self.search_engine()

        def assemble(site: Site) -> RawFormPage:
            backlinks = engine.link_query(site.form_page_url)
            if use_root_backlinks:
                root_backlinks = engine.link_query(site.root_url)
                merged = sorted(set(backlinks) | set(root_backlinks))
                backlinks = merged[: self.config.max_backlinks]
            page = self.graph.get(site.form_page_url)
            if page is None:
                raise RuntimeError(
                    f"form page missing from graph: {site.form_page_url}"
                )
            anchor_texts: List[str] = []
            if include_anchor_text:
                anchor_texts = harvest_anchor_texts(
                    self.graph,
                    site.form_page_url,
                    backlinks,
                    also_match=[site.root_url],
                )
            return RawFormPage(
                url=site.form_page_url,
                html=page.html,
                backlinks=backlinks,
                label=site.domain_name,
                anchor_texts=anchor_texts,
            )

        return parallel_map(assemble, self.sites, parallel)

    def profile(self) -> Dict[str, int]:
        """Corpus profile counts (the Section 4.1 numbers)."""
        single = sum(1 for site in self.sites if site.is_single_attribute)
        return {
            "form_pages": len(self.sites),
            "single_attribute": single,
            "multi_attribute": len(self.sites) - single,
            "domains": len({site.domain_name for site in self.sites}),
            "graph_pages": len(self.graph),
            "orphans": len(self.orphan_urls),
        }


def _choose_size_class(rng: random.Random) -> str:
    roll = rng.random()
    cumulative = 0.0
    for name, weight in _SIZE_CLASS_WEIGHTS:
        cumulative += weight
        if roll < cumulative:
            return name
    return _SIZE_CLASS_WEIGHTS[-1][0]


def generate_benchmark(
    seed: int = 42, config: Optional[GeneratorConfig] = None
) -> SyntheticWeb:
    """Generate the benchmark web.

    ``seed`` overrides ``config.seed`` for the common "just give me a
    corpus" call; pass a full :class:`GeneratorConfig` for anything
    fancier.  The output is a pure function of the effective config.
    """
    if config is None:
        config = GeneratorConfig(seed=seed)
    rng = random.Random(config.seed)
    used_hosts: set = set()

    music = domain_by_name("music")
    movie = domain_by_name("movie")
    half_mixed = config.mixed_entertainment_pages // 2

    sites: List[Site] = []
    for domain in DOMAINS:
        budget = config.pages_per_domain.get(domain.name, 0)
        n_keyword = min(config.single_attribute_per_domain, budget)
        n_mixed = 0
        if domain.name in ("music", "movie"):
            n_mixed = min(half_mixed, budget - n_keyword)
        n_multi = budget - n_keyword - n_mixed

        siblings = _CROSSTALK_SIBLINGS.get(domain.name, ())
        for _ in range(n_multi):
            crosstalk_with = None
            if siblings and rng.random() < config.crosstalk_fraction:
                crosstalk_with = domain_by_name(rng.choice(siblings))
            sites.append(
                build_site(
                    domain, config, rng, used_hosts,
                    form_kind="multi",
                    size_class=_choose_size_class(rng),
                    crosstalk_with=crosstalk_with,
                )
            )
        for _ in range(n_keyword):
            sites.append(
                build_site(domain, config, rng, used_hosts, form_kind="keyword")
            )
        for _ in range(n_mixed):
            # The form searches both databases; the gold label stays the
            # site's primary domain (how the paper's corpus was labelled).
            other = movie if domain.name == "music" else music
            sites.append(
                build_site(
                    domain, config, rng, used_hosts,
                    form_kind="mixed",
                    mixed_with=other,
                    label_override=domain.name,
                )
            )

    # Stable, reproducible shuffle so domains are interleaved like a
    # crawler's output rather than blocked.
    rng.shuffle(sites)

    # Orphans: form pages that no hub will ever cite.
    n_orphans = round(config.orphan_fraction * len(sites))
    orphan_sites = set(rng.sample(range(len(sites)), n_orphans))
    orphan_urls = frozenset(sites[i].form_page_url for i in orphan_sites)

    sites_by_domain: Dict[str, List[Site]] = {}
    hub_eligible: Dict[str, List[Site]] = {}
    for index, site in enumerate(sites):
        sites_by_domain.setdefault(site.domain_name, []).append(site)
        if index not in orphan_sites:
            hub_eligible.setdefault(site.domain_name, []).append(site)

    hubs = generate_hubs(sites_by_domain, hub_eligible, config, rng)

    graph = WebGraph()
    for site in sites:
        for page in site.pages:
            graph.add_page(page)
    for hub in hubs:
        graph.add_page(hub)

    return SyntheticWeb(
        config=config, graph=graph, sites=sites, orphan_urls=orphan_urls
    )
