"""Deterministic fault injection — the chaos half of the resilience layer.

The paper's data source was genuinely unreliable ("AltaVista returned no
backlinks for over 15% of forms", Section 3.1), and a production
directory has more seams than the backlink API: snapshot I/O, request
vectorization, the write-ahead journal.  This module lets tests (and
``repro serve --chaos``) *arm* those seams with named faults and replay
the exact same failure schedule from a seed:

* a **seam** is a string naming an injection point (``"search.link_query"``,
  ``"snapshot.save"``, ``"directory.vectorize"``, ``"journal.append"``,
  ``"replication.ship"``, ``"router.fanout"``, and the lease-store
  seams ``"lease.acquire"`` / ``"lease.renew"`` / ``"lease.read"`` —
  :mod:`repro.distrib.fence`); production code crosses a seam by
  calling :func:`inject`, which is a few-nanosecond no-op unless a
  plan is armed;
* a :class:`FaultSpec` describes one fault at one seam — its kind
  (transient / timeout / rate-limit / permanent), firing probability,
  and how many times it may fire;
* a :class:`FaultPlan` holds the specs and decides, **deterministically
  from (seed, seam, crossing index)**, whether a given crossing fires.
  Two runs with the same plan see byte-identical fault schedules, which
  is what makes chaos tests reproducible and failures bisectable.

Faults surface as exceptions from :mod:`repro.resilience` — transient
kinds are retryable (:class:`TransientFault`, :class:`InjectedTimeout`,
:class:`RateLimitFault`), :class:`PermanentFault` is not.  The retry
primitives in :mod:`repro.resilience.retry` understand the split.
"""

import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.resilience.stats import STATS

#: The fault kinds a spec may inject.
FAULT_KINDS = ("transient", "timeout", "rate_limit", "permanent")


class FaultError(Exception):
    """Base class of every injected (or simulated-upstream) fault."""

    retryable = False

    def __init__(self, message: str, seam: str = "?") -> None:
        super().__init__(message)
        self.seam = seam


class TransientFault(FaultError):
    """A failure expected to clear on retry (flaky network, 5xx)."""

    retryable = True


class InjectedTimeout(TransientFault):
    """An upstream call that stalled past its deadline (retryable)."""


class RateLimitFault(TransientFault):
    """Upstream throttling; retry after backing off.  ``retry_after``
    carries the server-suggested delay in seconds (0 = unspecified)."""

    def __init__(self, message: str, seam: str = "?", retry_after: float = 0.0):
        super().__init__(message, seam)
        self.retry_after = retry_after


class PermanentFault(FaultError):
    """A failure retries cannot fix (4xx, gone, unsupported)."""


_KIND_EXCEPTIONS = {
    "transient": TransientFault,
    "timeout": InjectedTimeout,
    "rate_limit": RateLimitFault,
    "permanent": PermanentFault,
}


def _stable_fraction(seed: int, seam: str, crossing: int) -> float:
    """Uniform-ish float in [0, 1), a pure function of its inputs —
    salted ``hash()`` would break cross-process reproducibility."""
    digest = hashlib.sha256(f"{seed}:{seam}:{crossing}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultSpec:
    """One fault armed at one seam.

    Attributes
    ----------
    seam:
        The injection-point name this spec applies to.
    kind:
        ``"transient"``, ``"timeout"``, ``"rate_limit"`` or
        ``"permanent"``.
    probability:
        Chance a crossing fires, decided deterministically from the
        plan seed and the crossing index.
    max_fires:
        Stop firing after this many hits (None = unlimited) — how a
        plan expresses "fails twice, then recovers".
    after:
        Skip the first ``after`` crossings entirely (lets a plan target
        mid-run state, e.g. "the third snapshot save").
    delay:
        For ``timeout`` faults: seconds to stall before raising (keep 0
        in tests; retry policies take an injectable sleep anyway).
    """

    seam: str
    kind: str = "transient"
    probability: float = 1.0
    max_fires: Optional[int] = None
    after: int = 0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.after < 0:
            raise ValueError("after must be non-negative")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")


class FaultPlan:
    """A seeded, thread-safe schedule of faults over named seams.

    The decision for the *i*-th crossing of a seam is a pure function of
    ``(seed, seam, i)``, so concurrent runs that cross seams in the same
    per-seam order observe the same faults.  All bookkeeping (crossing
    counters, fire counts) is lock-guarded.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.seed = seed
        self._specs: List[FaultSpec] = list(specs)
        self._lock = threading.Lock()
        self._crossings: Dict[str, int] = {}
        self._fires: Dict[str, int] = {}
        self._spec_fires: Dict[int, int] = {}

    # -- composition --------------------------------------------------

    def arm(self, spec: FaultSpec) -> "FaultPlan":
        """Add a spec (chainable)."""
        with self._lock:
            self._specs.append(spec)
        return self

    @property
    def specs(self) -> List[FaultSpec]:
        with self._lock:
            return list(self._specs)

    # -- the injection point ------------------------------------------

    def check(self, seam: str) -> None:
        """Cross ``seam``: raise (or stall then raise) when a spec fires.

        At most one spec fires per crossing — the first armed spec, in
        arming order, whose probability admits this crossing.
        """
        with self._lock:
            crossing = self._crossings.get(seam, 0)
            self._crossings[seam] = crossing + 1
            fired: Optional[FaultSpec] = None
            for index, spec in enumerate(self._specs):
                if spec.seam != seam or crossing < spec.after:
                    continue
                limit = spec.max_fires
                if limit is not None and self._spec_fires.get(index, 0) >= limit:
                    continue
                roll = _stable_fraction(self.seed, f"{seam}#{index}", crossing)
                if roll < spec.probability:
                    fired = spec
                    self._spec_fires[index] = self._spec_fires.get(index, 0) + 1
                    self._fires[seam] = self._fires.get(seam, 0) + 1
                    break
        if fired is None:
            return
        STATS.inc("faults_injected")
        if fired.kind == "timeout" and fired.delay > 0:
            time.sleep(fired.delay)
        exc_type = _KIND_EXCEPTIONS[fired.kind]
        raise exc_type(
            f"injected {fired.kind} fault at seam {seam!r} "
            f"(plan seed {self.seed})",
            seam=seam,
        )

    # -- observability -------------------------------------------------

    def crossings(self, seam: str) -> int:
        with self._lock:
            return self._crossings.get(seam, 0)

    def fires(self, seam: Optional[str] = None) -> int:
        with self._lock:
            if seam is not None:
                return self._fires.get(seam, 0)
            return sum(self._fires.values())

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "seed": self.seed,
                "specs": [
                    {"seam": s.seam, "kind": s.kind, "p": s.probability}
                    for s in self._specs
                ],
                "crossings": dict(self._crossings),
                "fires": dict(self._fires),
            }

    # -- canned plans --------------------------------------------------

    @classmethod
    def default_chaos(cls, seed: int) -> "FaultPlan":
        """The ``repro serve --chaos <seed>`` soak plan: a mix of
        retryable trouble on every registered seam, rare permanent
        failures on the backlink API — survivable by design, so a soak
        run should stay up (degraded at worst)."""
        return cls(
            [
                FaultSpec("search.link_query", "transient", probability=0.15),
                FaultSpec("search.link_query", "rate_limit", probability=0.05),
                FaultSpec("search.link_query", "permanent", probability=0.01),
                FaultSpec("directory.vectorize", "transient", probability=0.05),
                FaultSpec("snapshot.save", "transient", probability=0.10),
                FaultSpec("journal.append", "transient", probability=0.02),
                # Lease-store seams only cross in fenced deployments;
                # the specs are inert everywhere else.
                FaultSpec("lease.renew", "transient", probability=0.05),
                FaultSpec("lease.read", "transient", probability=0.05),
            ],
            seed=seed,
        )


# ----------------------------------------------------------------------
# The ambient plan: deep seams (snapshot I/O, the journal, request
# vectorization) cannot thread a plan argument through every caller, so
# they consult a process-wide slot instead.  ``inject`` is the only
# thing hot paths call; with no plan armed it is one attribute read.
# ----------------------------------------------------------------------

_active_plan: Optional[FaultPlan] = None
_active_lock = threading.Lock()


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Arm ``plan`` process-wide; returns the previously armed plan."""
    global _active_plan
    with _active_lock:
        previous = _active_plan
        _active_plan = plan
    return previous


def get_active_plan() -> Optional[FaultPlan]:
    return _active_plan


@contextmanager
def active_plan(plan: FaultPlan):
    """Arm ``plan`` for the duration of a ``with`` block (tests)."""
    previous = install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def inject(seam: str) -> None:
    """Cross a named seam — raises when the armed plan says so."""
    plan = _active_plan
    if plan is not None:
        plan.check(seam)
