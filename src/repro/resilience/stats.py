"""Process-wide resilience counters.

The core layers (``repro.core``, ``repro.webgen``) must not depend on
:mod:`repro.service.metrics`, yet their degradation events need to show
up on ``/metrics``.  The bridge is this tiny thread-safe counter bag:
core code bumps named counters here, and the service layer registers
``set_function`` gauges over them at instrumentation time.

All counters are monotonically increasing over process lifetime (tests
use :meth:`ResilienceStats.reset`, guarded to their own fixtures).
"""

import threading
from typing import Dict


class ResilienceStats:
    """A thread-safe bag of named monotonic counters."""

    #: Counters every fresh bag starts with (scrapes see stable names).
    KNOWN = (
        "retry_attempts",       # re-invocations after a retryable failure
        "retry_giveups",        # calls that exhausted their policy
        "degraded_fallbacks",   # CAFC-CH -> CAFC-C random-seeding falls
        "worker_restarts",      # supervised background-worker restarts
        "faults_injected",      # FaultPlan fires (chaos only)
        "circuit_opens",        # circuit-breaker CLOSED -> OPEN trips
        "journal_replays",      # directory recoveries that replayed a WAL
        "segments_shipped",     # sealed journal segments served to replicas
        "promotions",           # replica -> leader promotions
        "fencing_rejections",   # writes refused for a stale epoch / lost lease
        "stale_records_dropped", # zombie-epoch records skipped on replay/apply
        "failovers",            # automatic leader failovers completed
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {name: 0 for name in self.KNOWN}

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        """Zero everything — test isolation only."""
        with self._lock:
            self._counts = {name: 0 for name in self.KNOWN}


#: The process-wide bag ``/metrics`` scrapes.
STATS = ResilienceStats()
