"""The backlink seam: a fault-injecting engine wrapper and its cure.

:class:`FlakySearchEngine` turns any ``link:`` engine (the simulated
one, in this repo) into the unreliable upstream the paper actually
faced: each ``link_query`` crosses the ``"search.link_query"`` seam of
a :class:`~repro.resilience.faults.FaultPlan` and may raise a
transient error, stall-and-timeout, rate-limit, or fail permanently.

:class:`ResilientSearchEngine` is the production-side wrapper: it
drives any engine (flaky or not) through a
:class:`~repro.resilience.retry.RetryPolicy` and a
:class:`~repro.resilience.retry.CircuitBreaker` and **never raises** —
a query that cannot be answered degrades to an empty backlink list,
exactly the shape the paper's own data had ("AltaVista returned no
backlinks for over 15% of forms"), so everything downstream (hub
clustering, CAFC-CH seeding) already knows how to cope.  The
:class:`HarvestReport` tells callers how much degradation happened.
"""

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.resilience.faults import FaultError, FaultPlan
from repro.resilience.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RetryError,
    RetryPolicy,
)


class FlakySearchEngine:
    """Inject faults in front of a ``link:`` engine.

    Exposes the same query surface as
    :class:`~repro.webgraph.search_api.SimulatedSearchEngine`
    (``link_query`` / ``harvest_backlinks``), consulting ``plan`` at
    seam ``seam`` before every underlying query.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        seam: str = "search.link_query",
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.seam = seam

    @property
    def query_count(self) -> int:
        """Queries that reached the underlying engine."""
        return self.inner.query_count

    def link_query(self, url: str) -> List[str]:
        self.plan.check(self.seam)
        return self.inner.link_query(url)

    def harvest_backlinks(
        self, url: str, root_url: str = "", fallback_to_root: bool = True
    ) -> List[str]:
        """Section 3.1 harvesting, with each query individually flaky."""
        backlinks = self.link_query(url)
        if not backlinks and fallback_to_root and root_url and root_url != url:
            backlinks = self.link_query(root_url)
        return backlinks


@dataclass
class HarvestReport:
    """What resilient harvesting had to absorb (thread-safe counters)."""

    queries: int = 0
    retried: int = 0
    failures: int = 0          # queries degraded to [] after giving up
    rejected: int = 0          # refused fast by an open circuit
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def _bump(self, **amounts: int) -> None:
        with self._lock:
            for name, amount in amounts.items():
                setattr(self, name, getattr(self, name) + amount)

    @property
    def degraded_rate(self) -> float:
        """Fraction of queries that came back empty for resilience
        reasons (failures + circuit rejections)."""
        with self._lock:
            if self.queries == 0:
                return 0.0
            return (self.failures + self.rejected) / self.queries

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "queries": self.queries,
                "retried": self.retried,
                "failures": self.failures,
                "rejected": self.rejected,
            }


class ResilientSearchEngine:
    """Retry/backoff + circuit breaking over any ``link:`` engine.

    Drop-in for the places that consume an engine (corpus assembly, hub
    harvesting): same ``link_query`` / ``harvest_backlinks`` surface,
    but failures degrade to ``[]`` instead of propagating.  With a
    healthy inner engine the output is **identical** to calling it
    directly — the wrapper adds no reordering, no caching, no loss.

    Parameters
    ----------
    inner:
        The engine to protect (possibly a :class:`FlakySearchEngine`).
    policy:
        Retry schedule for transient/timeout/rate-limit faults.
    breaker:
        Shared-upstream circuit breaker; ``None`` disables breaking.
    sleep:
        Injectable sleep for the backoff (tests pass a no-op).
    """

    def __init__(
        self,
        inner,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.breaker = breaker
        self._sleep = sleep
        self.report = HarvestReport()

    def link_query(self, url: str) -> List[str]:
        """``link:url`` with retries; degrades to ``[]`` on give-up."""
        self.report._bump(queries=1)
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            self.report._bump(rejected=1)
            return []

        def on_retry(attempt: int, exc: BaseException) -> None:
            self.report._bump(retried=1)

        try:
            result = self.policy.call(
                self.inner.link_query, url, sleep=self._sleep,
                on_retry=on_retry,
            )
        except (RetryError, FaultError, CircuitOpenError):
            if breaker is not None:
                breaker.record_failure()
            self.report._bump(failures=1)
            return []
        if breaker is not None:
            breaker.record_success()
        return result

    def harvest_backlinks(
        self, url: str, root_url: str = "", fallback_to_root: bool = True
    ) -> List[str]:
        backlinks = self.link_query(url)
        if not backlinks and fallback_to_root and root_url and root_url != url:
            backlinks = self.link_query(root_url)
        return backlinks
