"""Supervised background workers — crash, log, back off, restart.

The directory's background threads (the classify batcher, the drift
re-clusterer) previously died silently on any exception, taking their
feature with them for the rest of the process.  :class:`SupervisedWorker`
wraps a target callable in a restart loop:

* the target runs on a daemon thread; a normal return ends supervision
  (one-shot targets like a drift repair) — the loop is for *crashes*;
* an exception is logged as a structured warning, counted into
  ``worker_restarts`` (surfaced as ``worker_restarts_total`` on
  ``/metrics``), and the target restarts after an exponential backoff;
* ``max_restarts`` bounds the loop (None = supervise forever);
  :meth:`stop` wakes any backoff sleep immediately.
"""

import logging
import threading
from typing import Callable, Optional

from repro.resilience.stats import STATS

logger = logging.getLogger("repro.resilience")


class SupervisedWorker:
    """Run ``target`` on a thread, restarting it on crashes.

    Parameters
    ----------
    target:
        The work.  Long-lived loops should exit when their owner stops
        them (e.g. by checking a flag); a normal return always ends
        supervision.
    name:
        Thread name (also the label in restart warnings).
    backoff_base / backoff_multiplier / backoff_max:
        Restart delay schedule: ``min(base * multiplier**n, max)`` after
        the ``n``-th crash.
    max_restarts:
        Give up after this many restarts (None = never).  Giving up is
        itself logged — a worker that cannot stay up is a degradation
        signal, not an invisible one.
    on_crash:
        Optional callback ``(restart_index, exception) -> None`` invoked
        before each backoff (the directory uses it to flip health).
    on_exit:
        Optional callback invoked exactly once when supervision ends —
        normal return, give-up, or stop.  The directory clears its
        "repair in flight" flag here, whatever path the worker took out.
    """

    def __init__(
        self,
        target: Callable[[], None],
        name: str = "supervised",
        backoff_base: float = 0.05,
        backoff_multiplier: float = 2.0,
        backoff_max: float = 5.0,
        max_restarts: Optional[int] = None,
        on_crash: Optional[Callable[[int, BaseException], None]] = None,
        on_exit: Optional[Callable[[], None]] = None,
    ) -> None:
        self.target = target
        self.name = name
        self.backoff_base = backoff_base
        self.backoff_multiplier = backoff_multiplier
        self.backoff_max = backoff_max
        self.max_restarts = max_restarts
        self.on_crash = on_crash
        self.on_exit = on_exit
        self.restarts = 0
        self.gave_up = False
        self.last_error: Optional[BaseException] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "SupervisedWorker":
        self._thread = threading.Thread(
            target=self._run, name=self.name, daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Ask the loop to stop and join the thread.  Idempotent."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # -- the loop ------------------------------------------------------

    def _run(self) -> None:
        try:
            self._supervise()
        finally:
            if self.on_exit is not None:
                try:
                    self.on_exit()
                except Exception:  # a broken callback must not raise here
                    logger.exception("on_exit callback failed")

    def _supervise(self) -> None:
        crashes = 0
        while not self._stop.is_set():
            try:
                self.target()
                return  # normal completion ends supervision
            except BaseException as exc:  # noqa: BLE001 — that's the job
                self.last_error = exc
                if self._stop.is_set():
                    return
                if (
                    self.max_restarts is not None
                    and crashes >= self.max_restarts
                ):
                    self.gave_up = True
                    logger.error(
                        "worker %s gave up after %d restart(s): %s: %s",
                        self.name, crashes, type(exc).__name__, exc,
                    )
                    return
                delay = min(
                    self.backoff_base * self.backoff_multiplier**crashes,
                    self.backoff_max,
                )
                crashes += 1
                self.restarts += 1
                STATS.inc("worker_restarts")
                logger.warning(
                    "worker %s crashed (%s: %s); restart %d in %.3fs",
                    self.name, type(exc).__name__, exc, crashes, delay,
                )
                if self.on_crash is not None:
                    try:
                        self.on_crash(crashes, exc)
                    except Exception:  # a broken callback must not kill us
                        logger.exception("on_crash callback failed")
                # Interruptible backoff: stop() wakes us immediately.
                if self._stop.wait(delay):
                    return
