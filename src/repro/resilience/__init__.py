"""repro.resilience — fault injection, retries, supervision, journaling.

The reproduction's pipeline was built against a *simulated* world where
every seam is infallible; the paper's world was not ("AltaVista
returned no backlinks for over 15% of forms", Section 3.1), and the
ROADMAP's production north-star is even less forgiving.  This package
makes failure a first-class, testable input:

* :mod:`repro.resilience.faults` — a seedable :class:`FaultPlan`
  injecting named faults (transient / timeout / rate-limit / permanent)
  at registered seams, deterministically reproducible from a seed;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (exponential
  backoff + jitter + deadline budgets) and :class:`CircuitBreaker`;
* :mod:`repro.resilience.flaky` — :class:`FlakySearchEngine` (the
  chaos wrapper over the ``link:`` API) and
  :class:`ResilientSearchEngine` (retry + breaker + degrade-to-empty,
  the production wrapper);
* :mod:`repro.resilience.supervisor` — :class:`SupervisedWorker`,
  restart-with-backoff for background threads;
* :mod:`repro.resilience.journal` — :class:`DirectoryJournal`, the
  crash-safe write-ahead log behind :class:`~repro.service.directory.
  FormDirectory` durability;
* :mod:`repro.resilience.stats` — process-wide counters the service
  layer exports on ``/metrics``.

See docs/RESILIENCE.md for the fault model and the degradation ladder.
"""

from repro.resilience.config import ResilienceConfig
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultError,
    FaultPlan,
    FaultSpec,
    InjectedTimeout,
    PermanentFault,
    RateLimitFault,
    TransientFault,
    active_plan,
    get_active_plan,
    inject,
    install_plan,
)
from repro.resilience.flaky import (
    FlakySearchEngine,
    HarvestReport,
    ResilientSearchEngine,
)
from repro.resilience.journal import (
    DirectoryJournal,
    JournalError,
    StaleEpochError,
    decode_records,
    encode_record,
    open_journal,
    record_epoch,
)
from repro.resilience.retry import (
    CIRCUIT_CLOSED,
    CIRCUIT_HALF_OPEN,
    CIRCUIT_OPEN,
    CircuitBreaker,
    CircuitOpenError,
    RetryError,
    RetryPolicy,
)
from repro.resilience.stats import STATS, ResilienceStats
from repro.resilience.supervisor import SupervisedWorker

__all__ = [
    "CIRCUIT_CLOSED",
    "CIRCUIT_HALF_OPEN",
    "CIRCUIT_OPEN",
    "CircuitBreaker",
    "CircuitOpenError",
    "DirectoryJournal",
    "FAULT_KINDS",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "FlakySearchEngine",
    "HarvestReport",
    "InjectedTimeout",
    "JournalError",
    "PermanentFault",
    "RateLimitFault",
    "ResilienceConfig",
    "ResilienceStats",
    "ResilientSearchEngine",
    "RetryError",
    "RetryPolicy",
    "STATS",
    "StaleEpochError",
    "SupervisedWorker",
    "TransientFault",
    "active_plan",
    "decode_records",
    "encode_record",
    "get_active_plan",
    "inject",
    "install_plan",
    "open_journal",
    "record_epoch",
]
