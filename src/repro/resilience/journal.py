"""A crash-safe write-ahead journal for the form directory.

Snapshots make cold starts cheap, but everything between two snapshot
builds used to live only in memory: kill the process and every ``add``
and ``remove`` since the last build was silently gone.  The journal
closes that window with classic WAL discipline:

* every mutation is **appended before it is applied** — length- and
  CRC-framed JSON, flushed and fsynced, so an acknowledged mutation is
  on disk no matter when the process dies;
* recovery replays ``snapshot + journal`` back to bit-identical
  post-mutation state (the directory journals the *vectorized* page,
  so replay re-does no parsing and reproduces the exact floats);
* a crash mid-append leaves a **torn final record**; replay detects it
  (short frame or CRC mismatch), drops exactly the tail, and truncates
  the file so subsequent appends extend a valid log;
* a snapshot build folds the log into the artifact and truncates it
  (via the same fsynced atomic-replace discipline as every other
  artifact, :mod:`repro.datasets.store`).

Record frame: ``[length: u32 BE] [crc32(payload): u32 BE] [payload]``
where payload is compact UTF-8 JSON with sorted keys.
"""

import binascii
import json
import os
import struct
import threading
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.resilience.faults import inject

_HEADER = struct.Struct(">II")  # payload length, crc32(payload)

#: Refuse absurd frames during replay: a length field beyond this is
#: torn/garbage, not a record we ever wrote.
MAX_RECORD_BYTES = 64 * 1024 * 1024


class JournalError(ValueError):
    """The journal file is not something this module wrote."""


def encode_record(record: dict) -> bytes:
    """One framed record (pure function; exercised by the fuzz tests)."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return _HEADER.pack(len(payload), binascii.crc32(payload)) + payload


def decode_records(data: bytes) -> Tuple[List[dict], int]:
    """Parse frames from ``data``; returns ``(records, valid_bytes)``.

    Parsing stops at the first incomplete or corrupt frame — by the
    WAL's append-only discipline that can only be a torn tail, so the
    remainder is dropped and ``valid_bytes`` marks where a recovered
    log should be truncated.  Never raises on torn input.
    """
    records: List[dict] = []
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            break
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            break  # torn payload
        payload = data[start:end]
        if binascii.crc32(payload) != crc:
            break  # torn or bit-rotted frame
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = end
    return records, offset


class DirectoryJournal:
    """Append-only, fsynced journal of directory mutations.

    Thread-safety: appends are serialized by an internal lock (the
    directory additionally holds its write lock across journal+apply,
    which is what keeps the log ordered like the mutations).
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._handle = None
        self.n_records = 0
        self.n_bytes = 0
        self.torn_bytes_dropped = 0
        self._recover()

    # -- recovery ------------------------------------------------------

    def _recover(self) -> None:
        """Scan an existing file, truncating any torn tail in place."""
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            return
        data = self.path.read_bytes()
        records, valid = decode_records(data)
        self.n_records = len(records)
        self.n_bytes = valid
        if valid < len(data):
            self.torn_bytes_dropped = len(data) - valid
            with open(self.path, "r+b") as handle:
                handle.truncate(valid)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())

    def replay(self) -> List[dict]:
        """Every intact record, oldest first (tolerates a torn tail)."""
        if not self.path.exists():
            return []
        records, _ = decode_records(self.path.read_bytes())
        return records

    # -- appending -----------------------------------------------------

    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, record: dict) -> None:
        """Frame, append, flush, fsync — returns only once durable."""
        frame = encode_record(record)
        with self._lock:
            inject("journal.append")
            handle = self._open()
            try:
                handle.write(frame)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            except OSError:
                # A partial frame would tear the log here instead of at
                # the tail; roll back to the last known-good boundary
                # (best effort — replay truncates torn bytes anyway).
                try:
                    handle.truncate(self.n_bytes)
                except OSError:
                    pass
                raise
            self.n_records += 1
            self.n_bytes += len(frame)

    # -- folding into a snapshot --------------------------------------

    def truncate(self) -> None:
        """Empty the journal (its contents were folded into a snapshot).

        Crash-ordering matters: the caller must have durably written the
        snapshot *first* — this replaces the log with an empty file via
        rename and fsyncs the directory, so a crash on either side of
        the replace leaves snapshot+journal consistent.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with open(tmp, "wb") as handle:
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            tmp.replace(self.path)
            if self.fsync:
                # Imported lazily: datasets pulls in the pipeline layer,
                # and resilience must stay importable from core.config.
                from repro.datasets.store import fsync_dir

                fsync_dir(self.path.parent)
            self.n_records = 0
            self.n_bytes = 0

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "DirectoryJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_journal(
    path: Optional[Union[str, Path]], fsync: bool = True
) -> Optional[DirectoryJournal]:
    """``None``-propagating constructor (directory plumbing helper)."""
    if path is None:
        return None
    if isinstance(path, DirectoryJournal):
        return path
    return DirectoryJournal(path, fsync=fsync)
