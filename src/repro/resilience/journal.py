"""A crash-safe, segmented write-ahead journal for the form directory.

Snapshots make cold starts cheap, but everything between two snapshot
builds used to live only in memory: kill the process and every ``add``
and ``remove`` since the last build was silently gone.  The journal
closes that window with classic WAL discipline:

* every mutation is **appended before it is applied** — length- and
  CRC-framed JSON, flushed and fsynced, so an acknowledged mutation is
  on disk no matter when the process dies;
* recovery replays ``snapshot + journal`` back to bit-identical
  post-mutation state (the directory journals the *vectorized* page,
  so replay re-does no parsing and reproduces the exact floats);
* a crash mid-append leaves a **torn final record**; replay detects it
  (short frame or CRC mismatch), drops exactly the tail, and truncates
  the file so subsequent appends extend a valid log;
* a snapshot build folds the log into the artifact and truncates it
  (via the same fsynced atomic-replace discipline as every other
  artifact, :mod:`repro.datasets.store`).

Segmentation (the replication substrate — docs/SHARDING.md): with
``max_segment_records`` / ``max_segment_bytes`` set, the *active* file
rolls over into **immutable, numbered segments** (``dir.wal.000001``,
``dir.wal.000002``, …) listed in a manifest (``dir.wal.manifest``).
Sealed segments never change, which is what makes them shippable: a
read replica downloads each sealed segment exactly once, replays its
records, and is caught up to the leader minus the (bounded) active
tail.  Every record has a stable **global position** — ``base_record``
counts records dropped by folds, so positions stay monotonic across
checkpoints and a replica's "applied through position P" survives the
leader folding its history.

Record frame: ``[length: u32 BE] [crc32(payload): u32 BE] [payload]``
where payload is compact UTF-8 JSON with sorted keys.

Epochs (the fencing substrate — docs/SHARDING.md): the journal carries
a monotonically increasing **epoch**, bumped by :meth:`DirectoryJournal.
bump_epoch` when a replica is promoted to leader.  While the epoch is
non-zero every appended record is stamped with it (an ``"epoch"`` key
in the JSON payload), the bump itself is an fsynced ``{"op": "epoch"}``
marker record, and the manifest records the current epoch.  Readers
treat a record *without* the key as epoch 0, so pre-epoch (v1) journals
recover bit-identically — the frame format never changed.  Replay-side
refusal of stale records (a deposed leader appending behind a newer
epoch marker) lives with the appliers: :func:`record_epoch` exposes a
record's epoch and :class:`StaleEpochError` is the shared "your epoch
is behind" signal raised by ``FormDirectory.apply_replicated`` and the
lease layer (:mod:`repro.distrib.fence`).
"""

import binascii
import json
import os
import struct
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.resilience.faults import inject

_HEADER = struct.Struct(">II")  # payload length, crc32(payload)

#: Refuse absurd frames during replay: a length field beyond this is
#: torn/garbage, not a record we ever wrote.
MAX_RECORD_BYTES = 64 * 1024 * 1024

#: Sealed-segment filename suffix width (``dir.wal.000001``).
_SEQ_WIDTH = 6

_MANIFEST_KIND = "repro-journal-manifest"


class JournalError(ValueError):
    """The journal file is not something this module wrote."""


class StaleEpochError(Exception):
    """A write (or replicated record) arrived from an epoch lower than
    the highest durably seen — the sender is a deposed leader (a
    "zombie") and must not be acknowledged.  ``epoch`` is the current
    epoch the rejecting side holds; ``offered`` is the stale one."""

    def __init__(self, epoch: int, offered: int, detail: str = "") -> None:
        message = (
            f"stale epoch {offered} rejected (current epoch {epoch})"
        )
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.epoch = int(epoch)
        self.offered = int(offered)


def record_epoch(record: dict) -> int:
    """The epoch a journal/replication record carries (0 for pre-epoch
    records — mixed-version logs read fine)."""
    try:
        return int(record.get("epoch", 0))
    except (TypeError, ValueError):
        return 0


def encode_record(record: dict) -> bytes:
    """One framed record (pure function; exercised by the fuzz tests)."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return _HEADER.pack(len(payload), binascii.crc32(payload)) + payload


def decode_records(data: bytes) -> Tuple[List[dict], int]:
    """Parse frames from ``data``; returns ``(records, valid_bytes)``.

    Parsing stops at the first incomplete or corrupt frame — by the
    WAL's append-only discipline that can only be a torn tail, so the
    remainder is dropped and ``valid_bytes`` marks where a recovered
    log should be truncated.  Never raises on torn input.
    """
    records: List[dict] = []
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            break
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            break  # torn payload
        payload = data[start:end]
        if binascii.crc32(payload) != crc:
            break  # torn or bit-rotted frame
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = end
    return records, offset


@dataclass(frozen=True)
class SegmentInfo:
    """One sealed, immutable journal segment.

    ``base_record`` is the global position of the segment's first
    record; a replica applied through position P needs exactly the
    segments with ``base_record + n_records > P``.
    """

    seq: int
    base_record: int
    n_records: int
    n_bytes: int
    path: Path


class DirectoryJournal:
    """Append-only, fsynced journal of directory mutations.

    Thread-safety: appends are serialized by an internal lock (the
    directory additionally holds its write lock across journal+apply,
    which is what keeps the log ordered like the mutations).

    Parameters
    ----------
    path:
        The *active* segment file.  Sealed segments and the manifest
        live alongside it (``<name>.000001``, ``<name>.manifest``).
    fsync:
        Fsync after every append (and around seals/folds).  Turn off
        only in tests.
    max_segment_records / max_segment_bytes:
        Roll the active file into a sealed segment once it holds this
        many records / bytes (whichever trips first; ``None`` disables
        — the default, which is the pre-segmentation single-file WAL).
    epoch:
        Starting epoch *floor* (``repro shard --epoch``).  Recovery
        takes the max of this, the manifest's recorded epoch, and the
        highest epoch found in retained records — the epoch can only
        move forward.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fsync: bool = True,
        max_segment_records: Optional[int] = None,
        max_segment_bytes: Optional[int] = None,
        epoch: int = 0,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.max_segment_records = max_segment_records
        self.max_segment_bytes = max_segment_bytes
        self._lock = threading.Lock()
        self._handle = None
        #: Global position of the first *retained* record (sealed or
        #: active) — records folded into snapshots advance it.
        self.base_record = 0
        #: Highest epoch durably seen (marker records, stamped records,
        #: the manifest, or the constructor floor).
        self.epoch = max(0, int(epoch))
        self._segments: List[SegmentInfo] = []
        self.active_records = 0
        self.active_bytes = 0
        self.torn_bytes_dropped = 0
        self._recover()

    # -- derived counters ---------------------------------------------

    @property
    def n_records(self) -> int:
        """Records retained on disk (sealed segments + active file)."""
        return sum(s.n_records for s in self._segments) + self.active_records

    @property
    def n_bytes(self) -> int:
        """Bytes retained on disk (sealed segments + active file)."""
        return sum(s.n_bytes for s in self._segments) + self.active_bytes

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def next_record(self) -> int:
        """Global position the next appended record will get."""
        return self.base_record + self.n_records

    @property
    def active_base_record(self) -> int:
        """Global position of the active file's first record."""
        return self.base_record + sum(s.n_records for s in self._segments)

    # -- naming -------------------------------------------------------

    def _segment_path(self, seq: int) -> Path:
        return self.path.with_name(f"{self.path.name}.{seq:0{_SEQ_WIDTH}d}")

    @property
    def manifest_path(self) -> Path:
        return self.path.with_name(self.path.name + ".manifest")

    # -- recovery ------------------------------------------------------

    def _recover(self) -> None:
        """Reconstruct state from disk, truncating any torn active tail.

        The manifest is advisory (its ``base_record``); the sealed
        segment *files* are authoritative — a crash between sealing a
        segment and rewriting the manifest leaves the file in place, and
        recovery picks it up by name.  Sealed segments must decode
        completely: they were fully fsynced while still the active file,
        so a torn one is corruption, not a crash artifact.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        manifest = self._read_manifest()
        self.base_record = int(manifest.get("base_record", 0))
        try:
            self.epoch = max(self.epoch, int(manifest.get("epoch", 0)))
        except (TypeError, ValueError):
            pass  # advisory; the records speak for themselves

        base = self.base_record
        self._segments = []
        for seq, seg_path in self._scan_segment_files():
            data = seg_path.read_bytes()
            records, valid = decode_records(data)
            if valid != len(data):
                raise JournalError(
                    f"sealed segment {seg_path} is torn at byte {valid} "
                    f"of {len(data)} — sealed segments are immutable"
                )
            for record in records:
                self.epoch = max(self.epoch, record_epoch(record))
            self._segments.append(
                SegmentInfo(seq, base, len(records), len(data), seg_path)
            )
            base += len(records)

        if not self.path.exists():
            return
        data = self.path.read_bytes()
        records, valid = decode_records(data)
        for record in records:
            self.epoch = max(self.epoch, record_epoch(record))
        self.active_records = len(records)
        self.active_bytes = valid
        if valid < len(data):
            self.torn_bytes_dropped = len(data) - valid
            with open(self.path, "r+b") as handle:
                handle.truncate(valid)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())

    def _scan_segment_files(self) -> List[Tuple[int, Path]]:
        found = []
        prefix = self.path.name + "."
        for candidate in self.path.parent.glob(prefix + "*"):
            suffix = candidate.name[len(prefix):]
            if len(suffix) == _SEQ_WIDTH and suffix.isdigit():
                found.append((int(suffix), candidate))
        found.sort()
        return found

    def _read_manifest(self) -> dict:
        path = self.manifest_path
        if not path.exists():
            return {}
        try:
            payload = json.loads(path.read_text("utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return {}  # advisory; the files speak for themselves
        if not isinstance(payload, dict) or payload.get("kind") != _MANIFEST_KIND:
            return {}
        return payload

    def _write_manifest(self) -> None:
        """Atomically replace the manifest (tmp + rename + dir fsync)."""
        payload = {
            "kind": _MANIFEST_KIND,
            "base_record": self.base_record,
            "epoch": self.epoch,
            "sealed": [
                {
                    "seq": s.seq,
                    "base_record": s.base_record,
                    "records": s.n_records,
                    "bytes": s.n_bytes,
                }
                for s in self._segments
            ],
        }
        tmp = self.manifest_path.with_suffix(".manifest.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        tmp.replace(self.manifest_path)
        self._fsync_parent()

    def _fsync_parent(self) -> None:
        if self.fsync:
            # Imported lazily: datasets pulls in the pipeline layer,
            # and resilience must stay importable from core.config.
            from repro.datasets.store import fsync_dir

            fsync_dir(self.path.parent)

    # -- reading -------------------------------------------------------

    def replay(self) -> List[dict]:
        """Every intact retained record, oldest first — sealed segments
        in sequence order, then the active tail (torn tail tolerated)."""
        records: List[dict] = []
        for segment in self._segments:
            records.extend(self.segment_records(segment.seq))
        if self.path.exists():
            active, _ = decode_records(self.path.read_bytes())
            records.extend(active)
        return records

    def segments(self) -> List[SegmentInfo]:
        """The sealed segments, oldest first (a stable copy)."""
        with self._lock:
            return list(self._segments)

    def segment_bytes(self, seq: int) -> bytes:
        """Raw crc-framed bytes of sealed segment ``seq`` — the unit a
        replica streams.  Raises :class:`JournalError` when the segment
        was already folded away (the replica re-bootstraps)."""
        with self._lock:
            for segment in self._segments:
                if segment.seq == seq:
                    return segment.path.read_bytes()
        raise JournalError(f"no sealed segment {seq} (folded or never cut)")

    def segment_records(self, seq: int) -> List[dict]:
        """Decoded records of sealed segment ``seq``."""
        records, _ = decode_records(self.segment_bytes(seq))
        return records

    # -- appending -----------------------------------------------------

    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, record: dict) -> None:
        """Frame, append, flush, fsync — returns only once durable.
        Rolls the active file into a sealed segment when a rotation
        threshold trips.

        Once the epoch is non-zero every record is stamped with it
        (``"epoch"`` key), so a reader can tell which leadership term
        produced it.  Epoch-0 journals stay byte-identical to the
        pre-epoch format.
        """
        if self.epoch and "epoch" not in record:
            record = dict(record)
            record["epoch"] = self.epoch
        with self._lock:
            inject("journal.append")
            self._append_locked(encode_record(record))

    def _append_locked(self, frame: bytes) -> None:
        handle = self._open()
        try:
            handle.write(frame)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        except OSError:
            # A partial frame would tear the log here instead of at
            # the tail; roll back to the last known-good boundary
            # (best effort — replay truncates torn bytes anyway).
            try:
                handle.truncate(self.active_bytes)
            except OSError:
                pass
            raise
        self.active_records += 1
        self.active_bytes += len(frame)
        if self._should_roll():
            self._roll_locked()

    def bump_epoch(self, epoch: Optional[int] = None) -> int:
        """Advance the epoch durably — the promotion fence.

        Appends an fsynced ``{"op": "epoch"}`` marker record and
        rewrites the manifest *before* returning, so by the time a
        promoted node acknowledges its first write the new epoch is on
        disk: recovery (and every replica applying the shipped marker)
        knows records stamped below it came from a deposed leader.
        Defaults to ``current + 1``; an explicit ``epoch`` must be
        higher than the current one.
        """
        with self._lock:
            new = self.epoch + 1 if epoch is None else int(epoch)
            if new <= self.epoch:
                raise JournalError(
                    f"epoch must increase (current {self.epoch}, "
                    f"requested {new})"
                )
            self._append_locked(
                encode_record({"op": "epoch", "epoch": new})
            )
            self.epoch = new
            self._write_manifest()
            return new

    def _should_roll(self) -> bool:
        if (
            self.max_segment_records is not None
            and self.active_records >= self.max_segment_records
        ):
            return True
        return (
            self.max_segment_bytes is not None
            and self.active_bytes >= self.max_segment_bytes
        )

    # -- segment rotation ---------------------------------------------

    def roll(self) -> Optional[SegmentInfo]:
        """Seal the active file into an immutable numbered segment.

        No-op (returns ``None``) when the active file is empty.  The
        rename is atomic and the content was fsynced by the appends, so
        a crash at any point leaves either the old layout or the new —
        recovery reconciles from the files, not the manifest.
        """
        with self._lock:
            return self._roll_locked()

    def _roll_locked(self) -> Optional[SegmentInfo]:
        if self.active_records == 0:
            return None
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        seq = (self._segments[-1].seq + 1) if self._segments else 1
        segment = SegmentInfo(
            seq=seq,
            base_record=self.active_base_record,
            n_records=self.active_records,
            n_bytes=self.active_bytes,
            path=self._segment_path(seq),
        )
        self.path.replace(segment.path)
        self._segments.append(segment)
        self.active_records = 0
        self.active_bytes = 0
        self._write_manifest()
        return segment

    def drop_sealed(self, upto_seq: Optional[int] = None) -> int:
        """Delete sealed segments (all, or through ``upto_seq``) whose
        records were folded into a durable snapshot.  Advances
        ``base_record`` so global positions stay monotonic.  Returns the
        number of records dropped."""
        with self._lock:
            keep: List[SegmentInfo] = []
            dropped = 0
            for segment in self._segments:
                if upto_seq is not None and segment.seq > upto_seq:
                    keep.append(segment)
                    continue
                dropped += segment.n_records
                segment.path.unlink(missing_ok=True)
            self._segments = keep
            if dropped:
                self.base_record += dropped
                self._write_manifest()
            return dropped

    # -- folding into a snapshot --------------------------------------

    def truncate(self) -> None:
        """Empty the journal (its contents were folded into a snapshot).

        Crash-ordering matters: the caller must have durably written the
        snapshot *first* — this replaces the active log with an empty
        file via rename, deletes every sealed segment, and fsyncs the
        directory, so a crash on either side of the replace leaves
        snapshot+journal consistent.  ``base_record`` advances past the
        dropped records.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            dropped = self.n_records
            for segment in self._segments:
                segment.path.unlink(missing_ok=True)
            self._segments = []
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with open(tmp, "wb") as handle:
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            tmp.replace(self.path)
            self._fsync_parent()
            self.base_record += dropped
            self.active_records = 0
            self.active_bytes = 0
            self._write_manifest()

    # -- observability -------------------------------------------------

    def manifest(self) -> Dict[str, object]:
        """The shipping manifest a replica polls: sealed segments with
        their global positions, plus where the log currently ends."""
        with self._lock:
            return {
                "base_record": self.base_record,
                "next_record": self.next_record,
                "active_records": self.active_records,
                "epoch": self.epoch,
                "sealed": [
                    {
                        "seq": s.seq,
                        "base_record": s.base_record,
                        "records": s.n_records,
                        "bytes": s.n_bytes,
                    }
                    for s in self._segments
                ],
            }

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "DirectoryJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_journal(
    path: Optional[Union[str, Path]], fsync: bool = True, **kwargs
) -> Optional[DirectoryJournal]:
    """``None``-propagating constructor (directory plumbing helper)."""
    if path is None:
        return None
    if isinstance(path, DirectoryJournal):
        return path
    return DirectoryJournal(path, fsync=fsync, **kwargs)


__all__ = [
    "DirectoryJournal",
    "JournalError",
    "MAX_RECORD_BYTES",
    "SegmentInfo",
    "StaleEpochError",
    "decode_records",
    "encode_record",
    "open_journal",
    "record_epoch",
]
