"""Resilience tunables, embedded in :class:`~repro.core.config.CAFCConfig`.

One flat record of the retry/breaker defaults a run uses, JSON
round-trippable so snapshots built under one policy serve under the
same one after a cold start.  ``chaos_seed`` arms the default chaos
:class:`~repro.resilience.faults.FaultPlan` (the ``serve --chaos`` dev
flag); ``None`` — the only sane production value — injects nothing.
"""

from dataclasses import dataclass
from typing import Optional

from repro.resilience.retry import CircuitBreaker, RetryPolicy


@dataclass
class ResilienceConfig:
    """Retry, breaker and chaos knobs (see docs/RESILIENCE.md)."""

    retry_max_attempts: int = 4
    retry_base_delay: float = 0.05
    retry_multiplier: float = 2.0
    retry_max_delay: float = 2.0
    retry_jitter: float = 0.5
    retry_deadline: Optional[float] = 10.0
    breaker_failure_threshold: int = 5
    breaker_reset_timeout: float = 30.0
    chaos_seed: Optional[int] = None

    def __post_init__(self) -> None:
        # Delegate range validation to the primitives themselves so the
        # rules cannot drift apart.
        self.policy()
        self.breaker()

    def policy(self, seed: int = 0) -> RetryPolicy:
        """A :class:`RetryPolicy` with these settings (``seed`` varies
        the jitter stream per call site)."""
        return RetryPolicy(
            max_attempts=self.retry_max_attempts,
            base_delay=self.retry_base_delay,
            multiplier=self.retry_multiplier,
            max_delay=self.retry_max_delay,
            jitter=self.retry_jitter,
            deadline=self.retry_deadline,
            seed=seed,
        )

    def breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=self.breaker_failure_threshold,
            reset_timeout=self.breaker_reset_timeout,
        )

    def to_dict(self) -> dict:
        return {
            "retry_max_attempts": self.retry_max_attempts,
            "retry_base_delay": self.retry_base_delay,
            "retry_multiplier": self.retry_multiplier,
            "retry_max_delay": self.retry_max_delay,
            "retry_jitter": self.retry_jitter,
            "retry_deadline": self.retry_deadline,
            "breaker_failure_threshold": self.breaker_failure_threshold,
            "breaker_reset_timeout": self.breaker_reset_timeout,
            "chaos_seed": self.chaos_seed,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "ResilienceConfig":
        defaults = cls()
        deadline = state.get("retry_deadline", defaults.retry_deadline)
        chaos = state.get("chaos_seed", defaults.chaos_seed)
        return cls(
            retry_max_attempts=int(
                state.get("retry_max_attempts", defaults.retry_max_attempts)
            ),
            retry_base_delay=float(
                state.get("retry_base_delay", defaults.retry_base_delay)
            ),
            retry_multiplier=float(
                state.get("retry_multiplier", defaults.retry_multiplier)
            ),
            retry_max_delay=float(
                state.get("retry_max_delay", defaults.retry_max_delay)
            ),
            retry_jitter=float(
                state.get("retry_jitter", defaults.retry_jitter)
            ),
            retry_deadline=None if deadline is None else float(deadline),
            breaker_failure_threshold=int(
                state.get(
                    "breaker_failure_threshold",
                    defaults.breaker_failure_threshold,
                )
            ),
            breaker_reset_timeout=float(
                state.get(
                    "breaker_reset_timeout", defaults.breaker_reset_timeout
                )
            ),
            chaos_seed=None if chaos is None else int(chaos),
        )
