"""Retry primitives: exponential backoff with jitter, deadline budgets,
and a circuit breaker.

These are the generic half of the backlink-seam hardening: a
:class:`RetryPolicy` re-invokes a flaky call on retryable faults
(:class:`~repro.resilience.faults.TransientFault` and subclasses) with
exponentially growing, deterministically jittered delays, bounded by an
attempt cap and an optional wall-clock deadline; a
:class:`CircuitBreaker` stops hammering an upstream that is plainly down
and probes it again after a cool-off.

Determinism: jitter comes from a policy-owned ``random.Random(seed)``,
and both sleeping and the breaker's clock are injectable — tests run
the full schedule without waiting real time, and two runs of the same
seeded policy produce the same delays.
"""

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Type

from repro.resilience.faults import FaultError, RateLimitFault, TransientFault
from repro.resilience.stats import STATS


class RetryError(Exception):
    """A call failed through every allowed attempt.

    ``last`` is the final underlying exception (also chained as
    ``__cause__``); ``attempts`` how many invocations were made.
    """

    def __init__(self, message: str, attempts: int, last: BaseException):
        super().__init__(message)
        self.attempts = attempts
        self.last = last


class CircuitOpenError(FaultError):
    """Fail-fast: the breaker is open, the call was never attempted."""

    retryable = False


@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a deadline.

    Delay before attempt ``n`` (1-based; attempt 1 has no delay) is
    ``min(base_delay * multiplier**(n-2), max_delay)``, scaled by a
    jitter factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    A :class:`~repro.resilience.faults.RateLimitFault` carrying a
    ``retry_after`` hint raises the floor of the next delay to honor it.

    ``deadline`` caps the *total* sleeping budget in seconds: once the
    accumulated planned delays would exceed it, the policy gives up
    even if attempts remain — a slow-failing upstream cannot pin a
    request thread for minutes.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: Optional[float] = None
    seed: int = 0
    retry_on: Tuple[Type[BaseException], ...] = (TransientFault,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be non-negative")

    # -- schedule ------------------------------------------------------

    def delays(self) -> List[float]:
        """The planned sleep before each retry (length
        ``max_attempts - 1``), jittered deterministically from ``seed``."""
        rng = random.Random(self.seed)
        out: List[float] = []
        for n in range(self.max_attempts - 1):
            raw = min(self.base_delay * self.multiplier**n, self.max_delay)
            factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            out.append(raw * factor)
        return out

    # -- execution -----------------------------------------------------

    def call(
        self,
        fn: Callable,
        *args,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        **kwargs,
    ):
        """Invoke ``fn`` under this policy.

        Retryable failures (``retry_on``) are retried per the schedule;
        anything else propagates immediately.  Exhaustion raises
        :class:`RetryError` chained to the last failure.
        """
        schedule = self.delays()
        slept = 0.0
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except self.retry_on as exc:
                last = exc
                if attempt >= self.max_attempts:
                    break
                delay = schedule[attempt - 1]
                if isinstance(exc, RateLimitFault) and exc.retry_after > 0:
                    delay = max(delay, exc.retry_after)
                if (
                    self.deadline is not None
                    and slept + delay > self.deadline
                ):
                    break
                STATS.inc("retry_attempts")
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(delay)
                slept += delay
        STATS.inc("retry_giveups")
        assert last is not None
        raise RetryError(
            f"{getattr(fn, '__name__', 'call')} failed after "
            f"{attempt} attempt(s): {last}",
            attempts=attempt,
            last=last,
        ) from last


#: Numeric encoding of breaker states for the ``circuit_state`` gauge.
CIRCUIT_CLOSED, CIRCUIT_HALF_OPEN, CIRCUIT_OPEN = 0, 1, 2
_STATE_NAMES = {
    CIRCUIT_CLOSED: "closed",
    CIRCUIT_HALF_OPEN: "half_open",
    CIRCUIT_OPEN: "open",
}


class CircuitBreaker:
    """A thread-safe three-state circuit breaker.

    CLOSED: calls flow; ``failure_threshold`` *consecutive* failures trip
    to OPEN.  OPEN: :meth:`allow` refuses until ``reset_timeout`` seconds
    pass, then one probe is admitted (HALF_OPEN).  HALF_OPEN: a success
    closes the circuit, a failure re-opens it and restarts the cool-off.

    The clock is injectable (monotonic seconds) so tests step time.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CIRCUIT_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    # -- state ---------------------------------------------------------

    @property
    def state_code(self) -> int:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def state(self) -> str:
        return _STATE_NAMES[self.state_code]

    def _maybe_half_open(self) -> None:
        if (
            self._state == CIRCUIT_OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = CIRCUIT_HALF_OPEN
            self._probing = False

    # -- protocol ------------------------------------------------------

    def allow(self) -> bool:
        """Whether a call may proceed right now (admits one HALF_OPEN
        probe at a time)."""
        with self._lock:
            self._maybe_half_open()
            if self._state == CIRCUIT_CLOSED:
                return True
            if self._state == CIRCUIT_HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CIRCUIT_CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state == CIRCUIT_HALF_OPEN:
                self._trip()
                return
            self._failures += 1
            if self._state == CIRCUIT_CLOSED and (
                self._failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        self._state = CIRCUIT_OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._probing = False
        STATS.inc("circuit_opens")

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` through the breaker: refuse fast when open, record
        the outcome otherwise."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit open; retry after {self.reset_timeout:.1f}s"
            )
        try:
            result = fn(*args, **kwargs)
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result
