"""Streaming-ingestion knobs.

A leaf module: :class:`~repro.core.config.CAFCConfig` embeds a
:class:`StreamConfig`, so nothing here may import from ``repro.core``
(or anything that does).
"""

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class StreamConfig:
    """Configuration for the streaming ingestion path (``repro.stream``).

    ``drift_threshold`` is the quantified relaxation at the heart of
    streaming Eq-1: emitted weights may differ from the exact
    prefix-statistics weights by at most ``LOC * TF * drift_threshold``
    per term (see :class:`~repro.vsm.schemes.IdfDriftTracker`).  ``0``
    re-prepares contexts every batch — exact, but O(batches) re-weights.

    ``vocab_budget`` / ``min_df`` bound the per-space DF tables: when a
    re-weight finds more than ``vocab_budget`` distinct terms in a
    space, terms with document frequency below ``min_df`` are pruned
    before the new contexts are prepared.  ``vocab_budget=0`` prunes at
    every re-weight; ``min_df<=1`` disables pruning entirely.

    ``spill_dir=None`` keeps the page index fully resident (fine below
    ~10k pages); a path enables spill-to-disk segments of
    ``spill_segment_rows`` rows each.
    """

    batch_size: int = 256
    drift_threshold: float = 0.1
    reservoir_size: int = 512
    reservoir_seed: int = 0
    vocab_budget: int = 150_000
    min_df: int = 2
    spill_dir: Optional[str] = None
    spill_segment_rows: int = 4096

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.drift_threshold < 0.0:
            raise ValueError("drift_threshold must be >= 0")
        if self.reservoir_size < 1:
            raise ValueError("reservoir_size must be positive")
        if self.vocab_budget < 0:
            raise ValueError("vocab_budget must be >= 0")
        if self.spill_segment_rows < 1:
            raise ValueError("spill_segment_rows must be positive")

    def to_dict(self) -> Dict[str, object]:
        return {
            "batch_size": self.batch_size,
            "drift_threshold": self.drift_threshold,
            "reservoir_size": self.reservoir_size,
            "reservoir_seed": self.reservoir_seed,
            "vocab_budget": self.vocab_budget,
            "min_df": self.min_df,
            "spill_dir": self.spill_dir,
            "spill_segment_rows": self.spill_segment_rows,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StreamConfig":
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in payload.items() if k in known})


__all__ = ["StreamConfig"]
