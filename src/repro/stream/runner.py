"""Drive a full streamed organize run, and measure batch parity.

:func:`run_stream` wires the three streaming pieces together — the
drift-gated :class:`~repro.stream.ingest.StreamingIngestor`, the
reservoir-backed :class:`~repro.stream.organizer.StreamOrganizer`, and
(optionally) a spill-to-disk
:class:`~repro.index.spill.SpillingSpaceIndex` over the emitted PC
vectors — and consumes a page iterable without ever materializing it.

:func:`reference_parity` is the acceptance gate shared by ``repro
ingest --stream --smoke``, ``tests/test_stream.py`` and
``benchmarks/test_bench_stream.py``: organize the 454-page reference
corpus both ways (batch CAFC-C and streamed) and report entropy /
F-measure side by side.  The batch baseline is CAFC-C — content-only
with random seeding — because streamed pages carry no backlink graph,
so CAFC-CH's hub seeding would be comparing against information the
stream never sees.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.clustering.types import Clustering
from repro.core.config import CAFCConfig
from repro.core.form_page import FormPage, RawFormPage
from repro.core.pipeline import CAFCPipeline
from repro.eval import overall_f_measure, total_entropy
from repro.index.spill import SpillingSpaceIndex
from repro.stream.config import StreamConfig
from repro.stream.ingest import StreamedPage, StreamingIngestor
from repro.stream.organizer import StreamOrganizer


@dataclass
class StreamRunResult:
    """Everything a caller can want back from a streamed organize."""

    ingestor: StreamingIngestor
    organizer: StreamOrganizer
    # Populated only under ``keep_pages=True`` (reference-corpus runs);
    # unbounded streams must not retain their pages.
    pages: Optional[List[StreamedPage]]
    # On-the-fly assignment counts (post-bootstrap batches only) — a
    # cheap progress signal, not the final labeling.
    cluster_counts: Dict[int, int] = field(default_factory=dict)
    spill_index: Optional[SpillingSpaceIndex] = None

    @property
    def stats(self):
        return self.ingestor.stats


def run_stream(
    raw_pages: Iterable[RawFormPage],
    n_clusters: int = 8,
    config: Optional[StreamConfig] = None,
    page_weight: float = 1.0,
    form_weight: float = 1.0,
    use_pc: bool = True,
    use_fc: bool = True,
    keep_pages: bool = False,
    final_reweight: bool = True,
) -> StreamRunResult:
    """Stream ``raw_pages`` end to end: ingest, cluster, maybe spill.

    ``final_reweight`` runs one terminal re-weight after the stream is
    drained so late-arriving vocabulary enters the contexts and the
    reservoir (hence the centroids) reflects the final statistics —
    the state :meth:`StreamOrganizer.assign` labels against.
    """
    config = config or StreamConfig()
    ingestor = StreamingIngestor(config)
    organizer = StreamOrganizer(
        n_clusters,
        page_weight=page_weight,
        form_weight=form_weight,
        use_pc=use_pc,
        use_fc=use_fc,
        reservoir_size=config.reservoir_size,
        reservoir_seed=config.reservoir_seed,
    ).attach(ingestor)
    spill = (
        SpillingSpaceIndex(config.spill_dir, config.spill_segment_rows)
        if config.spill_dir
        else None
    )
    kept: Optional[List[StreamedPage]] = [] if keep_pages else None
    cluster_counts: Dict[int, int] = {}

    for batch in ingestor.ingest(raw_pages):
        assignments = organizer.observe_batch(batch)
        if assignments is not None:
            for cluster in assignments:
                cluster_counts[cluster] = cluster_counts.get(cluster, 0) + 1
        if spill is not None:
            for entry in batch:
                spill.add_row(entry.index, entry.page.pc, meta=entry.url)
        if kept is not None:
            kept.extend(batch)

    organizer.ensure_ready()
    if final_reweight:
        ingestor.reweight()
    if spill is not None:
        spill.flush()
    return StreamRunResult(
        ingestor=ingestor,
        organizer=organizer,
        pages=kept,
        cluster_counts=cluster_counts,
        spill_index=spill,
    )


def final_labeling(result: StreamRunResult) -> Clustering:
    """Label every kept page under the final contexts and centroids.

    Re-emits each page from its retained TF counters (so weights match
    the terminal re-weight) and assigns it with the trained organizer.
    Cluster order follows learner centroid order; empty clusters drop.
    """
    if result.pages is None:
        raise ValueError("final_labeling needs a keep_pages=True run")
    vectorizer = result.ingestor.vectorizer
    members: Dict[int, List[int]] = {}
    for position, entry in enumerate(result.pages):
        pc_vec, fc_vec = vectorizer.emit_vectors(entry.pc_tf, entry.fc_tf)
        old = entry.page
        page = FormPage(
            url=old.url,
            pc=pc_vec,
            fc=fc_vec,
            backlinks=old.backlinks,
            label=old.label,
            form_term_count=old.form_term_count,
            page_term_count=old.page_term_count,
            attribute_count=old.attribute_count,
        )
        cluster, _ = result.organizer.assign(page)
        members.setdefault(cluster, []).append(position)
    return Clustering([members[c] for c in sorted(members)])


def reference_parity(
    seed: int = 42,
    n_clusters: int = 8,
    config: Optional[StreamConfig] = None,
) -> Dict[str, object]:
    """Batch-vs-stream quality on the generated reference corpus.

    Returns entropy and overall F-measure for both paths plus their
    deltas (positive delta = stream worse).  The smoke gate and the
    benchmark pin tolerances on these deltas.
    """
    from repro.webgen import generate_benchmark

    web = generate_benchmark(seed=seed)
    raw = web.raw_pages()
    gold = web.labels()

    pipeline = CAFCPipeline(CAFCConfig(k=n_clusters))
    batch_result = pipeline.organize(raw, algorithm="cafc-c")
    position = {page.url: i for i, page in enumerate(raw)}
    batch_clustering = Clustering(
        [
            [position[page.url] for page in cluster.pages]
            for cluster in batch_result.clusters
        ]
    )
    batch_entropy = total_entropy(batch_clustering, gold)
    batch_f = overall_f_measure(batch_clustering, gold)

    run = run_stream(
        iter(raw), n_clusters=n_clusters, config=config, keep_pages=True
    )
    stream_clustering = final_labeling(run)
    stream_entropy = total_entropy(stream_clustering, gold)
    stream_f = overall_f_measure(stream_clustering, gold)

    return {
        "n_pages": len(raw),
        "batch": {"entropy": batch_entropy, "f_measure": batch_f},
        "stream": {
            "entropy": stream_entropy,
            "f_measure": stream_f,
            "reweights": run.stats.reweights,
            "pc_vocab": run.stats.pc_vocab,
            "fc_vocab": run.stats.fc_vocab,
        },
        "delta_entropy": stream_entropy - batch_entropy,
        "delta_f": batch_f - stream_f,
    }


__all__ = [
    "StreamRunResult",
    "final_labeling",
    "reference_parity",
    "run_stream",
]
