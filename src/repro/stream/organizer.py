"""The streaming organizer: bounded-memory clustering over a page stream.

Memory model (the whole point): O(vocabulary + k centroids + reservoir),
independent of stream length.  The organizer keeps

* a deterministic :class:`~repro.clustering.minibatch.ReservoirSample`
  of :class:`~repro.stream.ingest.StreamedPage` entries — each retains
  its LOC-weighted TF counters, so re-weight events can re-vectorize
  the reservoir without HTML or re-analysis;
* one :class:`~repro.clustering.minibatch.MiniBatchKMeans` learner,
  bootstrapped from ``k`` seeded-random reservoir members once
  ``bootstrap_pages`` have streamed past (forced by :meth:`ensure_ready`
  at end of stream for short streams).

Per batch, the learner takes one ``partial_fit`` over the emitted
pages.  At a re-weight event (registered via
:meth:`StreamingIngestor.on_reweight`) the old contexts' vectors become
stale **as a set**: cosines among same-context vectors are still
meaningful, but blending new-context points into old-context centroids
is not.  The organizer therefore re-emits every reservoir member under
the fresh contexts and rebuilds each centroid as the mean of the
re-emitted members assigned to it (assignment taken under the *old*
contexts, where it was well-defined); a cluster left empty keeps a
re-emission of its nearest member.  Learning-rate counts survive, so
the schedule keeps decaying across re-weights.

Final labeling is :meth:`assign` — score-only, no mutation — which the
parity harness runs over the whole corpus after a terminal re-weight.
"""

import random
from typing import List, Optional, Sequence, Tuple

from repro.clustering.minibatch import MiniBatchKMeans, ReservoirSample
from repro.core.form_page import FormPage, VectorPair
from repro.stream.ingest import StreamedPage, StreamingIngestor
from repro.vsm.vector import mean_vector


class StreamOrganizer:
    """Mini-batch clustering driven by a :class:`StreamingIngestor`.

    ``n_clusters`` is the paper's ``k``; ``page_weight`` /
    ``form_weight`` / ``use_pc`` / ``use_fc`` mirror the batch engine's
    Equation-3 knobs.  Construct, then :meth:`attach` to an ingestor
    (wires the re-weight listener), then feed every emitted batch to
    :meth:`observe_batch`.
    """

    def __init__(
        self,
        n_clusters: int,
        page_weight: float = 1.0,
        form_weight: float = 1.0,
        use_pc: bool = True,
        use_fc: bool = True,
        reservoir_size: int = 512,
        reservoir_seed: int = 0,
        bootstrap_pages: int = 256,
        bootstrap_epochs: int = 3,
        train_batch_size: int = 64,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be positive")
        self.n_clusters = n_clusters
        self.page_weight = page_weight
        self.form_weight = form_weight
        self.use_pc = use_pc
        self.use_fc = use_fc
        self.bootstrap_pages = max(bootstrap_pages, n_clusters)
        self.bootstrap_epochs = bootstrap_epochs
        self.train_batch_size = train_batch_size
        self.reservoir = ReservoirSample(reservoir_size, seed=reservoir_seed)
        self._seed_rng = random.Random(
            f"repro.stream.organizer:{reservoir_seed}"
        )
        self.learner: Optional[MiniBatchKMeans] = None
        self.n_reweight_rebuilds = 0

    # ----------------------------------------------------------------
    # Wiring.
    # ----------------------------------------------------------------

    def attach(self, ingestor: StreamingIngestor) -> "StreamOrganizer":
        ingestor.on_reweight(self._on_reweight)
        return self

    @property
    def ready(self) -> bool:
        return self.learner is not None

    # ----------------------------------------------------------------
    # Streaming.
    # ----------------------------------------------------------------

    def observe_batch(
        self, batch: Sequence[StreamedPage]
    ) -> Optional[List[int]]:
        """Absorb one emitted batch; returns assignments once bootstrapped."""
        for entry in batch:
            self.reservoir.offer(entry)
        if self.learner is None:
            if self.reservoir.n_seen >= self.bootstrap_pages:
                self._bootstrap()
            else:
                return None
            # The bootstrap already trained on the reservoir, which
            # contains (a sample of) this batch; fall through to
            # partial_fit anyway — one extra pass is harmless and keeps
            # the code path uniform.
        return self.learner.partial_fit([entry.page for entry in batch])

    def ensure_ready(self) -> None:
        """Force a bootstrap at end-of-stream for short streams."""
        if self.learner is None:
            if not self.reservoir.items:
                raise RuntimeError("cannot bootstrap an empty stream")
            self._bootstrap()

    def assign(self, page: FormPage) -> Tuple[int, float]:
        """Best cluster for ``page`` (score-only; the final labeling pass)."""
        if self.learner is None:
            raise RuntimeError("organizer not bootstrapped yet")
        return self.learner.assign(page)

    def centroid_pairs(self) -> List[VectorPair]:
        if self.learner is None:
            raise RuntimeError("organizer not bootstrapped yet")
        return self.learner.centroid_pairs()

    # ----------------------------------------------------------------
    # Internals.
    # ----------------------------------------------------------------

    def _bootstrap(self) -> None:
        members = self.reservoir.items
        k = min(self.n_clusters, len(members))
        seed_entries = self._seed_rng.sample(members, k)
        self.learner = MiniBatchKMeans(
            [entry.page for entry in seed_entries],
            page_weight=self.page_weight,
            form_weight=self.form_weight,
            use_pc=self.use_pc,
            use_fc=self.use_fc,
        )
        pages = [entry.page for entry in members]
        for _ in range(self.bootstrap_epochs):
            for start in range(0, len(pages), self.train_batch_size):
                self.learner.partial_fit(
                    pages[start : start + self.train_batch_size]
                )

    def _on_reweight(self, ingestor: StreamingIngestor) -> None:
        """Re-vectorize the reservoir and rebuild centroids in the new
        weight space (see module docstring)."""
        vectorizer = ingestor.vectorizer
        entries = self.reservoir.items
        if not entries:
            return
        learner = self.learner
        # Assignment under the old contexts, where centroid cosines are
        # well-defined; falls back to "everything in cluster 0" before
        # bootstrap (the reservoir is then just a holding pen).
        if learner is not None:
            assigned = [learner.assign(entry.page)[0] for entry in entries]
        else:
            assigned = [0] * len(entries)

        refreshed: List[StreamedPage] = []
        for entry in entries:
            pc_vec, fc_vec = vectorizer.emit_vectors(entry.pc_tf, entry.fc_tf)
            old = entry.page
            refreshed.append(
                StreamedPage(
                    page=FormPage(
                        url=old.url,
                        pc=pc_vec,
                        fc=fc_vec,
                        backlinks=old.backlinks,
                        label=old.label,
                        form_term_count=old.form_term_count,
                        page_term_count=old.page_term_count,
                        attribute_count=old.attribute_count,
                    ),
                    pc_tf=entry.pc_tf,
                    fc_tf=entry.fc_tf,
                    index=entry.index,
                )
            )
        self.reservoir.replace_all(refreshed)

        if learner is None:
            return
        by_cluster: List[List[FormPage]] = [[] for _ in range(len(learner))]
        for entry, cluster in zip(refreshed, assigned):
            by_cluster[cluster].append(entry.page)
        seeds: List[VectorPair] = []
        for cluster, members in enumerate(by_cluster):
            if members:
                seeds.append(
                    VectorPair(
                        pc=mean_vector([p.pc for p in members]),
                        fc=mean_vector([p.fc for p in members]),
                    )
                )
            else:
                # Emptied cluster: keep it alive on its nearest member
                # (scored under the old contexts, taken re-emitted) so a
                # later batch can still win it back.
                scores = [
                    learner.similarity(entry.page)[cluster]
                    for entry in entries
                ]
                nearest = max(
                    range(len(refreshed)),
                    key=lambda i: (scores[i], -i),
                )
                page = refreshed[nearest].page
                seeds.append(VectorPair(pc=page.pc, fc=page.fc))
        learner.reseed(seeds, keep_counts=True)
        self.n_reweight_rebuilds += 1


__all__ = ["StreamOrganizer"]
