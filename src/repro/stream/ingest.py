"""Streaming ingestion: analyze → observe → drift-gated re-weight → emit.

The batch vectorizer's contract is "see the whole collection, then
emit".  :class:`StreamingIngestor` relaxes it per batch:

1. analyze the batch (parse + tokenize + stem — the same map phase as
   batch ingestion);
2. fold every page into the per-space statistics
   (:meth:`~repro.core.vectorizer.FormPageVectorizer.stream_observe`)
   while the per-space :class:`~repro.vsm.schemes.IdfDriftTracker`\\ s
   absorb the same documents;
3. if either space's IDF drift bound exceeds
   :attr:`~repro.stream.config.StreamConfig.drift_threshold` (or no
   context exists yet), **re-weight**: prune rare terms when over the
   vocabulary budget, re-prepare the frozen emit contexts, re-arm both
   trackers, and notify listeners (the streaming organizer re-emits its
   reservoir here);
4. emit the batch against the now-current frozen contexts.

Because the drift check runs *after* observing and *before* emitting,
every emitted in-vocabulary weight is within ``LOC * TF *
drift_threshold`` of the exact Equation-1 weight over all pages
observed so far — the quantified relaxation tested in
``tests/test_stream.py``.  Terms first seen after the active snapshot
drop out of emission until the next re-weight (the frozen-vocabulary
treatment ``transform_new`` applies to new pages).  With
``drift_threshold=0`` and ``batch_size=1`` the path degenerates to
exact prefix statistics.
"""

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.core.form_page import FormPage, RawFormPage
from repro.core.vectorizer import FormPageVectorizer
from repro.parallel.config import ParallelConfig
from repro.stream.config import StreamConfig
from repro.vsm.schemes import IdfDriftTracker
from repro.vsm.weights import located_term_frequencies


@dataclass
class StreamedPage:
    """One emitted page plus what a re-weight needs to re-emit it.

    The LOC-weighted TF counters are kept (they are per-page and
    context-free) so reservoir members can be re-vectorized at re-weight
    events without retaining HTML or re-running analysis.
    """

    page: FormPage
    pc_tf: Counter
    fc_tf: Counter
    index: int

    @property
    def url(self) -> str:
        return self.page.url

    @property
    def label(self) -> Optional[str]:
        return self.page.label


@dataclass
class StreamStats:
    """Counters the CLI, gauges, and benchmarks report."""

    pages: int = 0
    batches: int = 0
    reweights: int = 0
    last_drift: float = 0.0
    pc_vocab: int = 0
    fc_vocab: int = 0
    pc_pruned: int = 0
    fc_pruned: int = 0

    def to_dict(self) -> dict:
        return {
            "pages": self.pages,
            "batches": self.batches,
            "reweights": self.reweights,
            "last_drift": self.last_drift,
            "pc_vocab": self.pc_vocab,
            "fc_vocab": self.fc_vocab,
            "pc_pruned": self.pc_pruned,
            "fc_pruned": self.fc_pruned,
        }


class StreamingIngestor:
    """Drives a page stream through observe → re-weight → emit batches.

    ``vectorizer`` defaults to a fresh Equation-1
    :class:`~repro.core.vectorizer.FormPageVectorizer` with the analysis
    cache off — a 100k-page stream of distinct pages would otherwise
    grow the cache with entries that can never hit.  Pass a configured
    vectorizer to stream under a different scheme or LOC policy.
    """

    def __init__(
        self,
        config: Optional[StreamConfig] = None,
        vectorizer: Optional[FormPageVectorizer] = None,
    ) -> None:
        self.config = config or StreamConfig()
        if vectorizer is None:
            vectorizer = FormPageVectorizer(
                parallel=ParallelConfig(use_cache=False)
            )
        self.vectorizer = vectorizer
        self.pc_tracker = IdfDriftTracker()
        self.fc_tracker = IdfDriftTracker()
        self.stats = StreamStats()
        self._reweight_listeners: List[Callable[["StreamingIngestor"], None]] = []

    def on_reweight(
        self, listener: Callable[["StreamingIngestor"], None]
    ) -> None:
        """Register a callback fired *after* each re-weight (contexts are
        current when it runs; the organizer re-emits its reservoir)."""
        self._reweight_listeners.append(listener)

    # ----------------------------------------------------------------
    # Drift and re-weighting.
    # ----------------------------------------------------------------

    def drift(self) -> float:
        """The worse of the two spaces' IDF-drift bounds."""
        return max(
            self.pc_tracker.drift(self.vectorizer.pc_stats),
            self.fc_tracker.drift(self.vectorizer.fc_stats),
        )

    def reweight(self) -> None:
        """Re-prepare the frozen emit contexts now (prune, re-arm, notify)."""
        vectorizer = self.vectorizer
        pc_before = len(vectorizer.pc_corpus.document_frequencies())
        fc_before = len(vectorizer.fc_corpus.document_frequencies())
        vectorizer.reprepare(
            min_df=self.config.min_df, vocab_budget=self.config.vocab_budget
        )
        self.pc_tracker.rearm(vectorizer.pc_stats)
        self.fc_tracker.rearm(vectorizer.fc_stats)
        self.stats.reweights += 1
        self.stats.pc_vocab = len(vectorizer.pc_corpus.document_frequencies())
        self.stats.fc_vocab = len(vectorizer.fc_corpus.document_frequencies())
        self.stats.pc_pruned += max(0, pc_before - self.stats.pc_vocab)
        self.stats.fc_pruned += max(0, fc_before - self.stats.fc_vocab)
        for listener in self._reweight_listeners:
            listener(self)

    # ----------------------------------------------------------------
    # Batch processing.
    # ----------------------------------------------------------------

    def process_batch(
        self, raw_pages: Sequence[RawFormPage]
    ) -> List[StreamedPage]:
        """Observe, maybe re-weight, then emit one batch of pages."""
        if not raw_pages:
            return []
        vectorizer = self.vectorizer
        analyses = [vectorizer._analyze_page(raw) for raw in raw_pages]
        for analysis in analyses:
            vectorizer.stream_observe(analysis)
            self.pc_tracker.absorb(
                vectorizer.pc_stats, {term for term, _ in analysis.pc_terms}
            )
            self.fc_tracker.absorb(
                vectorizer.fc_stats, {term for term, _ in analysis.fc_terms}
            )
        drift = self.drift()
        self.stats.last_drift = drift
        if not vectorizer.contexts_ready or drift > self.config.drift_threshold:
            self.reweight()

        emitted: List[StreamedPage] = []
        weights = vectorizer.location_weights
        for raw, analysis in zip(raw_pages, analyses):
            pc_tf = located_term_frequencies(analysis.pc_terms, weights)
            fc_tf = located_term_frequencies(analysis.fc_terms, weights)
            pc_vec, fc_vec = vectorizer.emit_vectors(pc_tf, fc_tf)
            page = FormPage(
                url=raw.url,
                pc=pc_vec,
                fc=fc_vec,
                backlinks=frozenset(
                    raw.backlinks[: vectorizer.max_backlinks]
                ),
                label=raw.label,
                form_term_count=len(analysis.fc_terms),
                page_term_count=analysis.on_page_terms,
                attribute_count=analysis.attribute_count,
            )
            emitted.append(
                StreamedPage(
                    page=page,
                    pc_tf=pc_tf,
                    fc_tf=fc_tf,
                    index=self.stats.pages,
                )
            )
            self.stats.pages += 1
        self.stats.batches += 1
        return emitted

    def ingest(
        self, raw_pages: Iterable[RawFormPage]
    ) -> Iterator[List[StreamedPage]]:
        """Consume a page iterable lazily, yielding emitted batches.

        Never materializes more than ``config.batch_size`` raw pages at
        once — the whole point of the streaming path.
        """
        batch: List[RawFormPage] = []
        for raw in raw_pages:
            batch.append(raw)
            if len(batch) >= self.config.batch_size:
                yield self.process_batch(batch)
                batch = []
        if batch:
            yield self.process_batch(batch)


__all__ = ["StreamedPage", "StreamStats", "StreamingIngestor"]
