"""repro.stream — bounded-memory streaming ingestion (docs/INGESTION.md).

Pages arrive as a *generator*; the pipeline never holds the corpus:

* :class:`~repro.stream.ingest.StreamingIngestor` — per-batch observe →
  drift-gated re-weight → emit, with the ``LOC*TF*threshold`` weight
  error bound;
* :class:`~repro.stream.organizer.StreamOrganizer` — mini-batch k-means
  over a deterministic reservoir, re-vectorized at re-weight events;
* :func:`~repro.stream.runner.run_stream` /
  :func:`~repro.stream.runner.reference_parity` — the end-to-end driver
  and the batch-parity acceptance gate;
* :class:`~repro.stream.config.StreamConfig` — the knobs, embedded in
  :class:`~repro.core.config.CAFCConfig`.

Exports resolve lazily: ``repro.core.config`` imports
:mod:`repro.stream.config` (a leaf), while the ingestor/organizer/runner
import ``repro.core`` — eager imports here would complete that cycle.
"""

_EXPORTS = {
    "StreamConfig": ("repro.stream.config", "StreamConfig"),
    "StreamedPage": ("repro.stream.ingest", "StreamedPage"),
    "StreamStats": ("repro.stream.ingest", "StreamStats"),
    "StreamingIngestor": ("repro.stream.ingest", "StreamingIngestor"),
    "StreamOrganizer": ("repro.stream.organizer", "StreamOrganizer"),
    "StreamRunResult": ("repro.stream.runner", "StreamRunResult"),
    "final_labeling": ("repro.stream.runner", "final_labeling"),
    "reference_parity": ("repro.stream.runner", "reference_parity"),
    "run_stream": ("repro.stream.runner", "run_stream"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
