"""F-measure for clusterings — Equation 6 (Larsen & Aone, KDD'99).

Per (class i, cluster j):

    Recall(i,j)    = n_ij / n_i
    Precision(i,j) = n_ij / n_j
    F(i,j)         = 2 * R * P / (R + P)

The overall score follows Larsen & Aone, whom the paper cites for the
measure: each *class* contributes the best F it achieves over all
clusters, weighted by class size:

    F = sum_i (n_i / n) * max_j F(i, j)

A perfect clustering scores 1.
"""

from collections import Counter
from typing import Dict, Sequence, Tuple

from repro.clustering.types import Clustering


def precision_recall(
    n_ij: int, n_i: int, n_j: int
) -> Tuple[float, float]:
    """Precision and recall of cluster j for class i (zero-safe)."""
    precision = n_ij / n_j if n_j else 0.0
    recall = n_ij / n_i if n_i else 0.0
    return precision, recall


def f_measure(n_ij: int, n_i: int, n_j: int) -> float:
    """Equation 6 for one (class, cluster) pair (zero-safe)."""
    precision, recall = precision_recall(n_ij, n_i, n_j)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * recall * precision / (recall + precision)


def _contingency(
    clustering: Clustering, gold_labels: Sequence[str]
) -> Tuple[Dict[Tuple[str, int], int], Counter, Dict[int, int]]:
    """n_ij, n_i and n_j tables for the clustering."""
    n_ij: Dict[Tuple[str, int], int] = {}
    class_sizes: Counter = Counter()
    cluster_sizes: Dict[int, int] = {}
    for cluster_index, members in enumerate(clustering.clusters):
        cluster_sizes[cluster_index] = len(members)
        for point in members:
            label = gold_labels[point]
            class_sizes[label] += 1
            key = (label, cluster_index)
            n_ij[key] = n_ij.get(key, 0) + 1
    return n_ij, class_sizes, cluster_sizes


def overall_f_measure(
    clustering: Clustering, gold_labels: Sequence[str]
) -> float:
    """Class-size-weighted best-match F over the whole clustering.

    Returns 0.0 for an empty clustering.
    """
    n_points = clustering.n_points
    if n_points == 0:
        return 0.0
    n_ij, class_sizes, cluster_sizes = _contingency(clustering, gold_labels)

    best_f: Dict[str, float] = {label: 0.0 for label in class_sizes}
    for (label, cluster_index), count in n_ij.items():
        score = f_measure(count, class_sizes[label], cluster_sizes[cluster_index])
        if score > best_f[label]:
            best_f[label] = score

    return sum(
        (class_sizes[label] / n_points) * best_f[label] for label in class_sizes
    )
