"""Cluster entropy — Equation 5.

For cluster *j* with class distribution ``p_ij`` (the probability that a
member of cluster *j* belongs to class *i*):

    Entropy_j = - sum_i  p_ij * log(p_ij)

The total entropy "is the sum of the entropies of each cluster, weighted
by the size of each cluster" — i.e. the size-weighted *average* (weights
n_j / n, the standard formulation the paper's numbers are consistent
with).  Lower is better; 0 means every cluster is pure.

Logarithms are natural: with 8 classes the paper's worst reported entropy
(1.1) exceeds 1, which rules out log base |classes|, and the relative
comparisons the paper draws are base-invariant anyway.
"""

import math
from collections import Counter
from typing import List, Sequence

from repro.clustering.types import Clustering


def class_distribution(labels: Sequence[str]) -> List[float]:
    """Probabilities of each class among ``labels``."""
    if not labels:
        return []
    counts = Counter(labels)
    n = len(labels)
    return [count / n for count in counts.values()]


def cluster_entropy(labels: Sequence[str]) -> float:
    """Entropy of one cluster given its members' gold labels.

    >>> cluster_entropy(["job", "job", "job"])
    0.0
    """
    return -sum(
        p * math.log(p) for p in class_distribution(labels) if p > 0.0
    )


def total_entropy(clustering: Clustering, gold_labels: Sequence[str]) -> float:
    """Equation 5's total: size-weighted mean of per-cluster entropies.

    ``gold_labels[i]`` is the gold class of point ``i``; empty clusters
    contribute nothing.
    """
    n_points = clustering.n_points
    if n_points == 0:
        return 0.0
    weighted = 0.0
    for members in clustering.clusters:
        if not members:
            continue
        member_labels = [gold_labels[i] for i in members]
        weighted += (len(members) / n_points) * cluster_entropy(member_labels)
    return weighted
