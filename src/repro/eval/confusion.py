"""Confusion analysis — the Section 4.2 error discussion, made runnable.

The paper inspects which pages were mis-clustered and finds that most
errors sit on the Music/Movie vocabulary overlap, and that at most one
single-attribute form is among them.  This module computes the machinery
for that analysis: majority labels per cluster, the confusion matrix, and
the list of mis-clustered pages with their properties.
"""

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.clustering.types import Clustering
from repro.core.form_page import FormPage


def majority_label(member_labels: Sequence[str]) -> str:
    """The most frequent label (ties broken alphabetically for
    determinism)."""
    if not member_labels:
        return ""
    counts = Counter(member_labels)
    best_count = max(counts.values())
    return min(label for label, count in counts.items() if count == best_count)


def confusion_matrix(
    clustering: Clustering, gold_labels: Sequence[str]
) -> Dict[Tuple[str, str], int]:
    """(gold label, cluster majority label) -> count.

    Diagonal entries are correctly clustered pages; off-diagonal entries
    show which domains leak into which.
    """
    matrix: Dict[Tuple[str, str], int] = {}
    for members in clustering.clusters:
        if not members:
            continue
        labels = [gold_labels[i] for i in members]
        cluster_label = majority_label(labels)
        for label in labels:
            key = (label, cluster_label)
            matrix[key] = matrix.get(key, 0) + 1
    return matrix


@dataclass
class MisclusteredPage:
    """One page assigned to a cluster dominated by another domain."""

    index: int
    url: str
    gold_label: str
    assigned_label: str
    is_single_attribute: bool


@dataclass
class ConfusionAnalysis:
    """Full error analysis for one clustering of a page collection."""

    matrix: Dict[Tuple[str, str], int]
    misclustered: List[MisclusteredPage]

    @property
    def n_misclustered(self) -> int:
        return len(self.misclustered)

    @property
    def n_single_attribute_errors(self) -> int:
        return sum(1 for page in self.misclustered if page.is_single_attribute)

    def error_pairs(self) -> Counter:
        """(gold, assigned) pairs among errors, most common first."""
        return Counter(
            (page.gold_label, page.assigned_label) for page in self.misclustered
        )

    @staticmethod
    def analyze(
        clustering: Clustering, pages: Sequence[FormPage]
    ) -> "ConfusionAnalysis":
        gold_labels = [page.label or "?" for page in pages]
        matrix = confusion_matrix(clustering, gold_labels)
        misclustered: List[MisclusteredPage] = []
        for members in clustering.clusters:
            if not members:
                continue
            labels = [gold_labels[i] for i in members]
            cluster_label = majority_label(labels)
            for index in members:
                if gold_labels[index] != cluster_label:
                    page = pages[index]
                    misclustered.append(
                        MisclusteredPage(
                            index=index,
                            url=page.url,
                            gold_label=gold_labels[index],
                            assigned_label=cluster_label,
                            is_single_attribute=page.is_single_attribute,
                        )
                    )
        return ConfusionAnalysis(matrix=matrix, misclustered=misclustered)
