"""Cluster-quality evaluation (Section 4.1, "Evaluation Metrics").

* :func:`repro.eval.entropy.total_entropy` — Equation 5, size-weighted.
* :func:`repro.eval.fmeasure.overall_f_measure` — Equation 6, the
  Larsen-Aone overall F-measure.
* :mod:`repro.eval.extra` — purity, NMI and adjusted Rand index (not in
  the paper; useful cross-checks).
* :mod:`repro.eval.confusion` — confusion matrices and mis-clustering
  analysis (the Section 4.2 error discussion).
"""

from repro.eval.confusion import ConfusionAnalysis, confusion_matrix, majority_label
from repro.eval.entropy import cluster_entropy, total_entropy
from repro.eval.extra import adjusted_rand_index, normalized_mutual_information, purity
from repro.eval.fmeasure import f_measure, overall_f_measure, precision_recall

__all__ = [
    "ConfusionAnalysis",
    "confusion_matrix",
    "majority_label",
    "cluster_entropy",
    "total_entropy",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "purity",
    "f_measure",
    "overall_f_measure",
    "precision_recall",
]
