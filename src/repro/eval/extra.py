"""Extra cluster-quality metrics: purity, NMI, adjusted Rand index.

Not reported in the paper, but standard cross-checks; the experiment
harness prints them alongside entropy and F-measure so shape claims can be
verified against more than one lens.
"""

import math
from collections import Counter
from typing import Dict, Sequence, Tuple

from repro.clustering.types import Clustering


def purity(clustering: Clustering, gold_labels: Sequence[str]) -> float:
    """Fraction of points assigned to their cluster's majority class."""
    n_points = clustering.n_points
    if n_points == 0:
        return 0.0
    correct = 0
    for members in clustering.clusters:
        if members:
            counts = Counter(gold_labels[i] for i in members)
            correct += counts.most_common(1)[0][1]
    return correct / n_points


def _entropy_of_counts(counts: Sequence[int], total: int) -> float:
    return -sum(
        (c / total) * math.log(c / total) for c in counts if c > 0
    )


def normalized_mutual_information(
    clustering: Clustering, gold_labels: Sequence[str]
) -> float:
    """NMI with arithmetic-mean normalization, in [0, 1]."""
    n = clustering.n_points
    if n == 0:
        return 0.0
    cluster_counts = [len(m) for m in clustering.clusters if m]
    class_counter: Counter = Counter()
    joint: Dict[Tuple[int, str], int] = {}
    for cluster_index, members in enumerate(clustering.clusters):
        for point in members:
            label = gold_labels[point]
            class_counter[label] += 1
            key = (cluster_index, label)
            joint[key] = joint.get(key, 0) + 1

    h_clusters = _entropy_of_counts(cluster_counts, n)
    h_classes = _entropy_of_counts(list(class_counter.values()), n)
    if h_clusters == 0.0 and h_classes == 0.0:
        return 1.0  # both partitions trivial and identical

    mutual_information = 0.0
    cluster_sizes = {
        i: len(m) for i, m in enumerate(clustering.clusters) if m
    }
    for (cluster_index, label), n_ij in joint.items():
        p_ij = n_ij / n
        p_i = cluster_sizes[cluster_index] / n
        p_j = class_counter[label] / n
        mutual_information += p_ij * math.log(p_ij / (p_i * p_j))

    denominator = (h_clusters + h_classes) / 2.0
    if denominator == 0.0:
        return 0.0
    return mutual_information / denominator


def _comb2(n: int) -> int:
    return n * (n - 1) // 2


def adjusted_rand_index(
    clustering: Clustering, gold_labels: Sequence[str]
) -> float:
    """Adjusted Rand index (chance-corrected pair-counting agreement)."""
    n = clustering.n_points
    if n == 0:
        return 0.0
    class_counter: Counter = Counter()
    joint: Dict[Tuple[int, str], int] = {}
    for cluster_index, members in enumerate(clustering.clusters):
        for point in members:
            label = gold_labels[point]
            class_counter[label] += 1
            key = (cluster_index, label)
            joint[key] = joint.get(key, 0) + 1

    sum_joint = sum(_comb2(count) for count in joint.values())
    sum_clusters = sum(_comb2(len(m)) for m in clustering.clusters)
    sum_classes = sum(_comb2(count) for count in class_counter.values())
    total_pairs = _comb2(n)
    if total_pairs == 0:
        return 1.0

    expected = sum_clusters * sum_classes / total_pairs
    maximum = (sum_clusters + sum_classes) / 2.0
    if maximum == expected:
        return 1.0 if sum_joint == maximum else 0.0
    return (sum_joint - expected) / (maximum - expected)
