"""Config sweeps: evaluate CAFC across a grid of configurations.

Adopters tuning CAFC for their own corpus need to answer "which knob
matters here?" — this module runs a labelled corpus across a declared
grid and reports entropy/F per cell, the same machinery the repo's own
ablation benches use, packaged for external use.
"""

import itertools
import statistics
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.cafc_c import cafc_c
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.core.form_page import FormPage
from repro.core.similarity import BackendSpec
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure


@dataclass
class SweepCell:
    """One grid point and its measured quality."""

    overrides: Dict[str, object]
    entropy: float
    f_measure: float
    fell_back: bool = False   # CAFC-CH could not seed and used CAFC-C

    def label(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in sorted(self.overrides.items()))


@dataclass
class SweepResult:
    cells: List[SweepCell] = field(default_factory=list)

    def best(self) -> SweepCell:
        if not self.cells:
            raise ValueError("empty sweep")
        return min(self.cells, key=lambda cell: cell.entropy)

    def as_rows(self) -> List[List[str]]:
        return [
            [cell.label(), f"{cell.entropy:.3f}", f"{cell.f_measure:.3f}",
             "fallback" if cell.fell_back else ""]
            for cell in self.cells
        ]


def sweep_configs(
    pages: Sequence[FormPage],
    grid: Mapping[str, Sequence[object]],
    base: Optional[CAFCConfig] = None,
    algorithm: str = "cafc-ch",
    n_runs: int = 1,
    backend: BackendSpec = None,
    similarity: BackendSpec = None,
) -> SweepResult:
    """Evaluate every combination of the ``grid`` overrides.

    Parameters
    ----------
    pages:
        Vectorized form pages carrying gold labels (evaluation needs
        them; clustering never reads them).
    grid:
        Field name -> candidate values; fields must exist on
        :class:`CAFCConfig`.  The cartesian product is evaluated.
    base:
        Starting configuration the overrides are applied to.
    algorithm:
        ``"cafc-ch"`` (deterministic; falls back to CAFC-C when hub
        seeding fails) or ``"cafc-c"`` (averaged over ``n_runs`` seeds).
    n_runs:
        Random-seed trials per cell for ``"cafc-c"``.
    backend:
        Similarity backend spec forwarded to every cell's run.  Backend
        *names* (or ``None``) are resolved per cell against that cell's
        config, so grid overrides of ``content_mode`` or the Equation-3
        weights take effect; a backend *instance* is used as-is.
    similarity:
        Removed.  Passing it raises TypeError with a migration hint —
        use ``backend=`` (finishing the SimilarityBackend deprecation).

    Raises
    ------
    ValueError
        For unknown grid fields, an empty grid, or pages without labels.
    """
    if algorithm not in ("cafc-ch", "cafc-c"):
        raise ValueError(f"unknown algorithm: {algorithm!r}")
    if similarity is not None:
        raise TypeError(
            "sweep_configs(similarity=...) was removed after its "
            "deprecation cycle; pass backend= (a backend name such as "
            '"engine", or a SimilarityBackend instance)'
        )
    base = base or CAFCConfig()
    for name in grid:
        if not hasattr(base, name):
            raise ValueError(f"CAFCConfig has no field {name!r}")
    if not grid:
        raise ValueError("empty grid")
    gold = [page.label for page in pages]
    if any(label is None for label in gold):
        raise ValueError("sweep evaluation needs gold labels on every page")

    names = sorted(grid)
    result = SweepResult()
    for values in itertools.product(*(grid[name] for name in names)):
        overrides: Dict[str, object] = dict(zip(names, values))
        config = replace(base, **overrides)
        fell_back = False
        if algorithm == "cafc-ch":
            try:
                clustering = cafc_ch(pages, config, backend=backend).clustering
            except ValueError:
                clustering = cafc_c(pages, config, backend=backend).clustering
                fell_back = True
            entropy = total_entropy(clustering, gold)
            f_measure = overall_f_measure(clustering, gold)
        else:
            entropies, f_measures = [], []
            for run_seed in range(n_runs):
                run_config = replace(config, seed=run_seed)
                clustering = cafc_c(pages, run_config, backend=backend).clustering
                entropies.append(total_entropy(clustering, gold))
                f_measures.append(overall_f_measure(clustering, gold))
            entropy = statistics.mean(entropies)
            f_measure = statistics.mean(f_measures)
        result.cells.append(
            SweepCell(
                overrides=overrides,
                entropy=entropy,
                f_measure=f_measure,
                fell_back=fell_back,
            )
        )
    return result
