"""Configuration for CAFC runs.

Defaults follow the paper's experimental setup (Section 4): k = 8 domains,
FC and PC weighted equally (C1 = C2 = 1), k-means stopping when fewer than
10% of pages move, hub clusters below cardinality 8 pruned, at most 100
backlinks per page.
"""

import enum
from dataclasses import dataclass, field

from repro.options import (
    BACKEND_CHOICES,
    INDEX_CHOICES,
    SCHEME_CHOICES,
    validate_option,
)
from repro.parallel.config import ParallelConfig
from repro.resilience.config import ResilienceConfig
from repro.stream.config import StreamConfig
from repro.vsm.weights import LocationWeights


class ContentMode(enum.Enum):
    """Which feature space(s) drive similarity — the Figure 2 axis."""

    FC = "fc"            # form contents only
    PC = "pc"            # page contents only
    FC_PC = "fc+pc"      # both, combined per Equation 3

    @property
    def uses_fc(self) -> bool:
        return self in (ContentMode.FC, ContentMode.FC_PC)

    @property
    def uses_pc(self) -> bool:
        return self in (ContentMode.PC, ContentMode.FC_PC)


@dataclass
class CAFCConfig:
    """All CAFC tunables.

    Attributes
    ----------
    k:
        Number of clusters (the paper uses the number of domains, 8).
    content_mode:
        FC, PC, or FC+PC (Figure 2 configurations).
    page_weight / form_weight:
        C1 and C2 in Equation 3; the paper sets both to 1.
    location_weights:
        LOC factors for Equation 1; ``LocationWeights.uniform()``
        reproduces the Section 4.4 ablation.
    min_hub_cardinality:
        Hub clusters with fewer form pages are pruned before seed
        selection (Figure 3; the headline configuration uses 8).
    max_backlinks:
        Cap on backlinks retrieved per page (the paper extracted at most
        100 per page from AltaVista).
    use_root_page_backlinks:
        When a form page has no backlinks, also ask for backlinks of the
        site root page (Section 3.1's mitigation for missing data).
    stop_fraction:
        k-means stopping criterion: stop when fewer than this fraction of
        pages move across clusters in one iteration (paper: 10%).
    max_iterations:
        Hard iteration cap for k-means.
    seed:
        RNG seed for random-seed selection; runs are reproducible given
        the same seed.
    backend:
        Which similarity backend batch operations use: ``"auto"``
        (default; currently the compiled engine), ``"engine"`` (force
        the batched :class:`~repro.core.simengine.SimilarityEngine`),
        or ``"naive"`` (per-pair Equation-3 calls — the reference
        path).  All backends agree to 1e-9; see docs/PERFORMANCE.md.
    index:
        Inverted-index retrieval for the read path (classify candidate
        generation and directory search): ``"auto"`` (default; on once
        the collection is large enough to pay off), ``"on"`` (always),
        ``"off"`` (always full scans).  Indexed results are
        bit-identical to the scans — see docs/SERVING.md, "Indexed
        retrieval".
    scheme:
        Term-weighting scheme for vectorization: ``"auto"`` (default;
        the paper's Equation 1), ``"eq1"``, ``"bm25"`` (Okapi BM25 with
        per-space [0, 1] normalization), ``"tf"`` / ``"off"`` (plain
        LOC-weighted TF, corpus weighting disabled).  Pass a
        :class:`~repro.vsm.schemes.WeightingScheme` instance directly
        to the vectorizer for tuned parameters.  See docs/RANKING.md.

        ``backend`` / ``index`` / ``scheme`` share one convention —
        ``"auto" | "off" | <name>`` — and one validator
        (:mod:`repro.options`); the error names the offending field.
    parallel:
        Ingestion execution plan (workers, chunk size, executor, and
        the analysis cache) — see
        :class:`~repro.parallel.config.ParallelConfig` and
        docs/INGESTION.md.  Parallel output is bit-identical to serial.
    resilience:
        Retry/backoff, circuit-breaker and chaos knobs for the flaky
        seams (the backlink API, request vectorization) — see
        :class:`~repro.resilience.config.ResilienceConfig` and
        docs/RESILIENCE.md.
    stream:
        Streaming-ingestion knobs (batch size, IDF drift threshold,
        reservoir, vocabulary budget, spill-to-disk) — see
        :class:`~repro.stream.config.StreamConfig` and
        docs/INGESTION.md, "Streaming ingestion".  Only the streaming
        path (``repro ingest --stream``) reads these; batch runs are
        unaffected.
    """

    k: int = 8
    content_mode: ContentMode = ContentMode.FC_PC
    page_weight: float = 1.0
    form_weight: float = 1.0
    location_weights: LocationWeights = field(default_factory=LocationWeights)
    min_hub_cardinality: int = 8
    max_backlinks: int = 100
    use_root_page_backlinks: bool = True
    stop_fraction: float = 0.1
    max_iterations: int = 50
    seed: int = 0
    backend: str = "auto"
    index: str = "auto"
    scheme: str = "auto"
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    stream: StreamConfig = field(default_factory=StreamConfig)

    def to_dict(self) -> dict:
        """All tunables as JSON-safe data (snapshot support)."""
        return {
            "k": self.k,
            "content_mode": self.content_mode.value,
            "page_weight": self.page_weight,
            "form_weight": self.form_weight,
            "location_weights": self.location_weights.to_dict(),
            "min_hub_cardinality": self.min_hub_cardinality,
            "max_backlinks": self.max_backlinks,
            "use_root_page_backlinks": self.use_root_page_backlinks,
            "stop_fraction": self.stop_fraction,
            "max_iterations": self.max_iterations,
            "seed": self.seed,
            "backend": self.backend,
            "index": self.index,
            "scheme": self.scheme,
            "parallel": self.parallel.to_dict(),
            "resilience": self.resilience.to_dict(),
            "stream": self.stream.to_dict(),
        }

    @classmethod
    def from_dict(cls, state: dict) -> "CAFCConfig":
        """Rebuild a config exported by :meth:`to_dict` (validates)."""
        defaults = cls()
        return cls(
            k=int(state.get("k", defaults.k)),
            content_mode=ContentMode(
                state.get("content_mode", defaults.content_mode.value)
            ),
            page_weight=float(state.get("page_weight", defaults.page_weight)),
            form_weight=float(state.get("form_weight", defaults.form_weight)),
            location_weights=LocationWeights.from_dict(
                state.get("location_weights", {})
            ),
            min_hub_cardinality=int(
                state.get("min_hub_cardinality", defaults.min_hub_cardinality)
            ),
            max_backlinks=int(state.get("max_backlinks", defaults.max_backlinks)),
            use_root_page_backlinks=bool(
                state.get(
                    "use_root_page_backlinks", defaults.use_root_page_backlinks
                )
            ),
            stop_fraction=float(
                state.get("stop_fraction", defaults.stop_fraction)
            ),
            max_iterations=int(
                state.get("max_iterations", defaults.max_iterations)
            ),
            seed=int(state.get("seed", defaults.seed)),
            backend=str(state.get("backend", defaults.backend)),
            index=str(state.get("index", defaults.index)),
            scheme=str(state.get("scheme", defaults.scheme)),
            parallel=ParallelConfig.from_dict(dict(state.get("parallel", {}))),
            resilience=ResilienceConfig.from_dict(
                dict(state.get("resilience", {}))
            ),
            stream=StreamConfig.from_dict(dict(state.get("stream", {}))),
        )

    def __post_init__(self) -> None:
        validate_option("backend", self.backend, BACKEND_CHOICES)
        validate_option("index", self.index, INDEX_CHOICES)
        validate_option("scheme", self.scheme, SCHEME_CHOICES)
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.page_weight < 0 or self.form_weight < 0:
            raise ValueError("feature-space weights must be non-negative")
        if self.page_weight == 0 and self.form_weight == 0:
            raise ValueError("at least one feature-space weight must be positive")
        if not 0 <= self.stop_fraction < 1:
            raise ValueError("stop_fraction must be in [0, 1)")
        if self.min_hub_cardinality < 1:
            raise ValueError("min_hub_cardinality must be at least 1")
