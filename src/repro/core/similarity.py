"""Form-page similarity — Equation 3 — and the similarity backends.

``sim(FP1, FP2) = (C1 * cos(PC1, PC2) + C2 * cos(FC1, FC2)) / (C1 + C2)``

The similarity object works over anything exposing ``.pc`` and ``.fc``
sparse vectors (both :class:`~repro.core.form_page.FormPage` points and
:class:`~repro.core.form_page.VectorPair` centroids), so the same instance
drives k-means assignment, HAC matrices and hub-cluster distances.

The *content mode* restricts which spaces contribute — the FC / PC / FC+PC
configurations of Figure 2.

Backends
--------

Batch consumers no longer thread bare similarity callables around;
they take a :class:`SimilarityBackend`:

* :class:`NaiveBackend` — per-pair :class:`FormPageSimilarity` calls
  (the reference path, with comparison counting);
* :class:`EngineBackend` — the compiled
  :class:`~repro.core.simengine.SimilarityEngine`, which serves the
  same values (within 1e-9; in practice ~1e-15) from CSR-style arrays
  at a fraction of the cost.

``resolve_backend`` maps the ``CAFCConfig.backend`` string (``"auto"``,
``"engine"``, ``"naive"``) or an existing backend instance to a backend
object.  The pre-backend seam — passing a bare similarity callable where
a backend is expected — was deprecated when the backend API landed and
is now a hard :class:`TypeError`; wrap the callable in
:class:`NaiveBackend` instead.
"""

from typing import Callable, List, Optional, Protocol, Sequence, Union, runtime_checkable

from repro.core.config import CAFCConfig, ContentMode
from repro.options import BACKEND_CHOICES, validate_option
from repro.core.simengine import EngineStats, SimilarityEngine
from repro.vsm.vector import SparseVector, cosine_similarity


class HasVectorPair(Protocol):
    """Anything carrying the two feature-space vectors."""

    pc: SparseVector
    fc: SparseVector


class FormPageSimilarity:
    """Equation 3 with configurable feature spaces and weights.

    Parameters
    ----------
    content_mode:
        Which spaces to use.  In single-space modes the other space's
        weight is ignored entirely (the paper's FC and PC configurations).
    page_weight / form_weight:
        C1 and C2.  The paper uses C1 = C2 = 1.
    """

    def __init__(
        self,
        content_mode: ContentMode = ContentMode.FC_PC,
        page_weight: float = 1.0,
        form_weight: float = 1.0,
    ) -> None:
        if content_mode.uses_pc and content_mode.uses_fc:
            if page_weight <= 0 and form_weight <= 0:
                raise ValueError("combined mode needs a positive weight")
        self.content_mode = content_mode
        self.page_weight = page_weight
        self.form_weight = form_weight

    def __call__(self, a: HasVectorPair, b: HasVectorPair) -> float:
        """Similarity in [0, 1] (cosines of non-negative vectors)."""
        mode = self.content_mode
        if mode is ContentMode.PC:
            return cosine_similarity(a.pc, b.pc)
        if mode is ContentMode.FC:
            return cosine_similarity(a.fc, b.fc)
        weighted = (
            self.page_weight * cosine_similarity(a.pc, b.pc)
            + self.form_weight * cosine_similarity(a.fc, b.fc)
        )
        return weighted / (self.page_weight + self.form_weight)

    def distance(self, a: HasVectorPair, b: HasVectorPair) -> float:
        """1 - similarity; used where the paper speaks of distance
        (Algorithm 3 picks the most *distant* hub clusters)."""
        return 1.0 - self(a, b)


def form_page_similarity(
    a: HasVectorPair,
    b: HasVectorPair,
    content_mode: ContentMode = ContentMode.FC_PC,
    page_weight: float = 1.0,
    form_weight: float = 1.0,
) -> float:
    """Thin compatibility wrapper: one Equation-3 similarity, scalar path.

    Equivalent to ``FormPageSimilarity(content_mode, page_weight,
    form_weight)(a, b)`` and guaranteed (by test) to agree with the
    batched :class:`~repro.core.simengine.SimilarityEngine` to 1e-9.
    Prefer a :class:`SimilarityBackend` for anything called in a loop.
    """
    return FormPageSimilarity(content_mode, page_weight, form_weight)(a, b)


# --------------------------------------------------------------------
# Backends.
# --------------------------------------------------------------------


@runtime_checkable
class SimilarityBackend(Protocol):
    """The batched similarity interface every consumer codes against.

    Implementations must agree with Equation 3 (the scalar
    :class:`FormPageSimilarity`) to 1e-9 on every operation.
    """

    stats: EngineStats

    def pair(self, a: HasVectorPair, b: HasVectorPair) -> float:
        """Similarity of one (page or centroid) pair."""
        ...

    def pairwise(self, items: Sequence[HasVectorPair]) -> List[List[float]]:
        """Full symmetric similarity matrix over ``items``."""
        ...

    def page_centroid_matrix(
        self,
        pages: Sequence[HasVectorPair],
        centroids: Sequence[HasVectorPair],
    ) -> List[List[float]]:
        """Rows = pages, columns = centroids."""
        ...


class NaiveBackend:
    """Per-pair Equation-3 calls — the reference backend.

    Wraps a :class:`FormPageSimilarity` and counts comparisons so the
    instrumentation surface matches :class:`EngineBackend`.
    """

    name = "naive"

    def __init__(self, similarity: FormPageSimilarity) -> None:
        self.similarity = similarity
        self.stats = EngineStats(backend="naive")

    @classmethod
    def from_config(cls, config: CAFCConfig) -> "NaiveBackend":
        return cls(
            FormPageSimilarity(
                content_mode=config.content_mode,
                page_weight=config.page_weight,
                form_weight=config.form_weight,
            )
        )

    def pair(self, a: HasVectorPair, b: HasVectorPair) -> float:
        self.stats.comparisons += 1
        return self.similarity(a, b)

    def pairwise(self, items: Sequence[HasVectorPair]) -> List[List[float]]:
        n = len(items)
        matrix = [[0.0] * n for _ in range(n)]
        for i in range(n):
            matrix[i][i] = self.pair(items[i], items[i])
            for j in range(i + 1, n):
                value = self.pair(items[i], items[j])
                matrix[i][j] = value
                matrix[j][i] = value
        return matrix

    def page_centroid_matrix(
        self,
        pages: Sequence[HasVectorPair],
        centroids: Sequence[HasVectorPair],
    ) -> List[List[float]]:
        return [
            [self.pair(page, centroid) for centroid in centroids]
            for page in pages
        ]


class EngineBackend:
    """The compiled-engine backend.

    Engines are compiled per collection and cached (keyed by the
    identity of the collection's items), so repeated batch calls over
    the same pages — k-means iterations, sweeps, cohesion checks —
    reuse one compilation.  ``stats`` aggregates over every engine this
    backend built.
    """

    name = "engine"
    _CACHE_SIZE = 4

    def __init__(
        self,
        content_mode: ContentMode = ContentMode.FC_PC,
        page_weight: float = 1.0,
        form_weight: float = 1.0,
        use_numpy: Optional[bool] = None,
    ) -> None:
        self.content_mode = content_mode
        self.page_weight = page_weight
        self.form_weight = form_weight
        self.use_numpy = use_numpy
        self.stats = EngineStats(
            backend="engine" if use_numpy is None else
            ("engine/numpy" if use_numpy else "engine/python")
        )
        self._scalar = FormPageSimilarity(content_mode, page_weight, form_weight)
        self._engines: "dict[tuple, SimilarityEngine]" = {}

    @classmethod
    def from_config(
        cls, config: CAFCConfig, use_numpy: Optional[bool] = None
    ) -> "EngineBackend":
        return cls(
            content_mode=config.content_mode,
            page_weight=config.page_weight,
            form_weight=config.form_weight,
            use_numpy=use_numpy,
        )

    def engine_for(self, items: Sequence[HasVectorPair]) -> SimilarityEngine:
        """The compiled engine for ``items`` (cached by item identity)."""
        key = tuple(id(item) for item in items)
        engine = self._engines.get(key)
        if engine is not None:
            self.stats.cache_hits += 1
            return engine
        engine = SimilarityEngine(
            items,
            content_mode=self.content_mode,
            page_weight=self.page_weight,
            form_weight=self.form_weight,
            use_numpy=self.use_numpy,
        )
        # The engine holds the items alive, so ids stay valid while cached.
        if len(self._engines) >= self._CACHE_SIZE:
            self._engines.pop(next(iter(self._engines)))
        self._engines[key] = engine
        self._merge(engine)
        return engine

    def _merge(self, engine: SimilarityEngine) -> None:
        self.stats.n_pages = max(self.stats.n_pages, engine.stats.n_pages)
        self.stats.n_terms = max(self.stats.n_terms, engine.stats.n_terms)
        self.stats.build_seconds += engine.stats.build_seconds

    def collect(self, engine: SimilarityEngine) -> None:
        """Fold an engine's counters into the aggregate stats."""
        self.stats.comparisons += engine.stats.comparisons
        self.stats.cache_hits += engine.stats.cache_hits
        engine.stats.comparisons = 0
        engine.stats.cache_hits = 0

    def pair(self, a: HasVectorPair, b: HasVectorPair) -> float:
        # A single pair gains nothing from compilation; the scalar path
        # is the same arithmetic.
        self.stats.comparisons += 1
        return self._scalar(a, b)

    def pairwise(self, items: Sequence[HasVectorPair]) -> List[List[float]]:
        engine = self.engine_for(items)
        matrix = engine.pairwise()
        self.collect(engine)
        if not isinstance(matrix, list):  # ndarray from the fast path
            matrix = matrix.tolist()
        return matrix

    def page_centroid_matrix(
        self,
        pages: Sequence[HasVectorPair],
        centroids: Sequence[HasVectorPair],
    ) -> List[List[float]]:
        engine = self.engine_for(pages)
        matrix = engine.page_centroid_matrix(centroids)
        self.collect(engine)
        return matrix


#: What users may put in ``CAFCConfig.backend`` / pass as ``backend=``.
BackendSpec = Union[None, str, SimilarityBackend, Callable[..., float]]


def resolve_backend(
    spec: BackendSpec, config: Optional[CAFCConfig] = None
) -> SimilarityBackend:
    """Turn a backend spec into a backend instance.

    ``spec`` may be ``None`` (use ``config.backend``), one of the
    strings ``"auto"`` / ``"engine"`` / ``"naive"``, or an existing
    :class:`SimilarityBackend`.  ``"auto"`` currently selects the
    engine (it is never slower on batch shapes and agrees to 1e-9);
    the name is reserved so future heuristics can pick per-workload.

    Bare similarity callables (including :class:`FormPageSimilarity`
    instances) were deprecated when the backend API landed and now
    raise :class:`TypeError`: wrap them — ``NaiveBackend(similarity)``
    — or pass a backend name.
    """
    config = config or CAFCConfig()
    if spec is None:
        spec = config.backend
    if isinstance(spec, str):
        validate_option("backend", spec, BACKEND_CHOICES)
        if spec == "naive":
            return NaiveBackend.from_config(config)
        return EngineBackend.from_config(config)
    if isinstance(spec, (NaiveBackend, EngineBackend)):
        return spec
    if isinstance(spec, SimilarityBackend):
        return spec
    if isinstance(spec, FormPageSimilarity) or callable(spec):
        raise TypeError(
            "bare similarity callables are no longer accepted as backends "
            "(removed after a deprecation cycle); wrap the callable in "
            "NaiveBackend(...) or pass a backend name such as "
            '"engine" or "naive"'
        )
    raise TypeError(f"cannot resolve similarity backend from {spec!r}")
