"""Form-page similarity — Equation 3.

``sim(FP1, FP2) = (C1 * cos(PC1, PC2) + C2 * cos(FC1, FC2)) / (C1 + C2)``

The similarity object works over anything exposing ``.pc`` and ``.fc``
sparse vectors (both :class:`~repro.core.form_page.FormPage` points and
:class:`~repro.core.form_page.VectorPair` centroids), so the same instance
drives k-means assignment, HAC matrices and hub-cluster distances.

The *content mode* restricts which spaces contribute — the FC / PC / FC+PC
configurations of Figure 2.
"""

from typing import Protocol

from repro.core.config import ContentMode
from repro.vsm.vector import SparseVector, cosine_similarity


class HasVectorPair(Protocol):
    """Anything carrying the two feature-space vectors."""

    pc: SparseVector
    fc: SparseVector


class FormPageSimilarity:
    """Equation 3 with configurable feature spaces and weights.

    Parameters
    ----------
    content_mode:
        Which spaces to use.  In single-space modes the other space's
        weight is ignored entirely (the paper's FC and PC configurations).
    page_weight / form_weight:
        C1 and C2.  The paper uses C1 = C2 = 1.
    """

    def __init__(
        self,
        content_mode: ContentMode = ContentMode.FC_PC,
        page_weight: float = 1.0,
        form_weight: float = 1.0,
    ) -> None:
        if content_mode.uses_pc and content_mode.uses_fc:
            if page_weight <= 0 and form_weight <= 0:
                raise ValueError("combined mode needs a positive weight")
        self.content_mode = content_mode
        self.page_weight = page_weight
        self.form_weight = form_weight

    def __call__(self, a: HasVectorPair, b: HasVectorPair) -> float:
        """Similarity in [0, 1] (cosines of non-negative vectors)."""
        mode = self.content_mode
        if mode is ContentMode.PC:
            return cosine_similarity(a.pc, b.pc)
        if mode is ContentMode.FC:
            return cosine_similarity(a.fc, b.fc)
        weighted = (
            self.page_weight * cosine_similarity(a.pc, b.pc)
            + self.form_weight * cosine_similarity(a.fc, b.fc)
        )
        return weighted / (self.page_weight + self.form_weight)

    def distance(self, a: HasVectorPair, b: HasVectorPair) -> float:
        """1 - similarity; used where the paper speaks of distance
        (Algorithm 3 picks the most *distant* hub clusters)."""
        return 1.0 - self(a, b)
