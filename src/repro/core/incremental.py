"""Incremental cluster maintenance.

The paper's opening motivation: "the Web is so vast and dynamic — with
new sources constantly being added and old sources removed and modified
— [that] a scalable solution ... must automatically discover" and keep
organizing sources.  Re-running CAFC from scratch on every discovery is
wasteful; this module maintains an organized collection incrementally:

* **add** — a new form page is vectorized against the frozen corpus
  statistics, assigned to its most similar cluster (Section 5's
  classification step), and the cluster centroid is updated;
* **remove** — a page leaves its cluster; the centroid is rebuilt;
* **drift detection** — incremental updates slowly degrade the
  partition (the corpus IDF ages, centroids absorb borderline pages).
  The organizer tracks the mean assignment similarity; when it falls
  below a factor of its initial level, ``needs_reclustering`` turns on
  and the caller should run the full pipeline again.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.cafc_c import similarity_for
from repro.core.config import CAFCConfig
from repro.core.form_page import FormPage, RawFormPage, VectorPair, centroid_of
from repro.core.similarity import FormPageSimilarity
from repro.core.vectorizer import FormPageVectorizer


@dataclass
class IncrementalCluster:
    """One maintained cluster."""

    pages: List[FormPage] = field(default_factory=list)
    centroid: VectorPair = field(
        default_factory=lambda: VectorPair(
            pc=centroid_of([]).pc, fc=centroid_of([]).fc
        )
    )

    @property
    def size(self) -> int:
        return len(self.pages)

    def rebuild_centroid(self) -> None:
        self.centroid = centroid_of(self.pages)


class IncrementalOrganizer:
    """Maintains a CAFC clustering as sources come and go.

    Build it from an initial full clustering (lists of vectorized pages
    per cluster) plus the fitted vectorizer, then feed it additions and
    removals.  Watch :attr:`needs_reclustering`.
    """

    def __init__(
        self,
        initial_clusters: List[List[FormPage]],
        vectorizer: FormPageVectorizer,
        config: Optional[CAFCConfig] = None,
        drift_threshold: float = 0.7,
    ) -> None:
        if not initial_clusters:
            raise ValueError("need at least one initial cluster")
        if not 0.0 < drift_threshold <= 1.0:
            raise ValueError("drift_threshold must be in (0, 1]")
        self.config = config or CAFCConfig()
        self.vectorizer = vectorizer
        self.similarity: FormPageSimilarity = similarity_for(self.config)
        self.drift_threshold = drift_threshold
        self.clusters: List[IncrementalCluster] = []
        self._by_url: Dict[str, int] = {}
        for members in initial_clusters:
            cluster = IncrementalCluster(pages=list(members))
            cluster.rebuild_centroid()
            self.clusters.append(cluster)
            for page in members:
                self._by_url[page.url] = len(self.clusters) - 1

        self._baseline_cohesion = self._mean_cohesion()
        self.n_added = 0
        self.n_removed = 0

    # ----------------------------------------------------------------
    # Cohesion / drift.
    # ----------------------------------------------------------------

    def _mean_cohesion(self) -> float:
        """Mean page-to-own-centroid similarity over the collection."""
        total = 0.0
        count = 0
        for cluster in self.clusters:
            for page in cluster.pages:
                total += self.similarity(page, cluster.centroid)
                count += 1
        return total / count if count else 0.0

    @property
    def cohesion(self) -> float:
        return self._mean_cohesion()

    @property
    def needs_reclustering(self) -> bool:
        """True when cohesion fell below ``drift_threshold`` x initial."""
        if self._baseline_cohesion == 0.0:
            return False
        return self._mean_cohesion() < self.drift_threshold * self._baseline_cohesion

    # ----------------------------------------------------------------
    # Updates.
    # ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_url)

    def __contains__(self, url: str) -> bool:
        return url in self._by_url

    def cluster_of(self, url: str) -> int:
        """Cluster index of a managed page (KeyError when unknown)."""
        return self._by_url[url]

    def add(self, raw: RawFormPage) -> int:
        """Insert a newly discovered source; returns its cluster index.

        The page is vectorized against the frozen corpus statistics and
        joins its most similar cluster (classification, Section 5).
        Re-adding a managed URL replaces the old page first.
        """
        if raw.url in self._by_url:
            self.remove(raw.url)
        page = self.vectorizer.transform_new(raw)
        best_index = max(
            range(len(self.clusters)),
            key=lambda i: self.similarity(page, self.clusters[i].centroid),
        )
        cluster = self.clusters[best_index]
        cluster.pages.append(page)
        cluster.rebuild_centroid()
        self._by_url[raw.url] = best_index
        self.n_added += 1
        return best_index

    def remove(self, url: str) -> bool:
        """Drop a source (a database went offline).  Returns False when
        the URL is not managed."""
        cluster_index = self._by_url.pop(url, None)
        if cluster_index is None:
            return False
        cluster = self.clusters[cluster_index]
        cluster.pages = [page for page in cluster.pages if page.url != url]
        cluster.rebuild_centroid()
        self.n_removed += 1
        return True

    def sizes(self) -> List[int]:
        return [cluster.size for cluster in self.clusters]
