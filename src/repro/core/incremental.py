"""Incremental cluster maintenance.

The paper's opening motivation: "the Web is so vast and dynamic — with
new sources constantly being added and old sources removed and modified
— [that] a scalable solution ... must automatically discover" and keep
organizing sources.  Re-running CAFC from scratch on every discovery is
wasteful; this module maintains an organized collection incrementally:

* **add** — a new form page is vectorized against the frozen corpus
  statistics, assigned to its most similar cluster (Section 5's
  classification step), and the cluster centroid is updated.  Each add
  costs exactly ``k + 1`` similarity evaluations (one per centroid to
  pick the cluster, one for the new page's cohesion contribution) —
  independent of how many pages are managed;
* **remove** — a page leaves its cluster; the centroid is rebuilt (no
  similarity evaluations at all);
* **drift detection** — incremental updates slowly degrade the
  partition (the corpus IDF ages, centroids absorb borderline pages).
  The organizer tracks the mean assignment similarity as a *running
  sum*: each page's page-to-centroid similarity is recorded when the
  page is assigned and retired when it leaves.  Contributions are not
  recomputed when a centroid later moves, so the running cohesion is an
  approximation that drifts with the clusters — exactly the quantity a
  staleness monitor wants.  ``refresh_cohesion()`` re-scores everything
  when an exact value is needed.  When cohesion falls below a factor of
  its initial level, ``needs_reclustering`` turns on and the caller
  should run the full pipeline again.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import CAFCConfig
from repro.core.form_page import FormPage, RawFormPage, VectorPair, centroid_of
from repro.core.similarity import (
    BackendSpec,
    FormPageSimilarity,
    SimilarityBackend,
    resolve_backend,
)
from repro.core.vectorizer import FormPageVectorizer
from repro.index.centroids import CentroidIndex
from repro.index.directory_index import (
    INDEX_AUTO_MIN_CLUSTERS,
    validate_index_mode,
)


@dataclass
class IncrementalCluster:
    """One maintained cluster."""

    pages: List[FormPage] = field(default_factory=list)
    centroid: VectorPair = field(
        default_factory=lambda: VectorPair(
            pc=centroid_of([]).pc, fc=centroid_of([]).fc
        )
    )

    @property
    def size(self) -> int:
        return len(self.pages)

    def rebuild_centroid(self) -> None:
        self.centroid = centroid_of(self.pages)


class IncrementalOrganizer:
    """Maintains a CAFC clustering as sources come and go.

    Build it from an initial full clustering (lists of vectorized pages
    per cluster) plus the fitted vectorizer, then feed it additions and
    removals.  Watch :attr:`needs_reclustering`.

    ``backend`` selects the similarity backend (``None`` uses
    ``config.backend``); ``backend.stats.comparisons`` counts every
    similarity evaluation, which is how the regression tests pin the
    O(1)-per-add property.
    """

    def __init__(
        self,
        initial_clusters: List[List[FormPage]],
        vectorizer: FormPageVectorizer,
        config: Optional[CAFCConfig] = None,
        drift_threshold: float = 0.7,
        backend: BackendSpec = None,
        index: Optional[str] = None,
    ) -> None:
        if not initial_clusters:
            raise ValueError("need at least one initial cluster")
        if not 0.0 < drift_threshold <= 1.0:
            raise ValueError("drift_threshold must be in (0, 1]")
        self.config = config or CAFCConfig()
        self.vectorizer = vectorizer
        self.backend: SimilarityBackend = resolve_backend(backend, self.config)
        # Kept for backward compatibility with code that reached for the
        # scalar callable; the organizer itself goes through the backend.
        self.similarity: FormPageSimilarity = FormPageSimilarity(
            content_mode=self.config.content_mode,
            page_weight=self.config.page_weight,
            form_weight=self.config.form_weight,
        )
        self.drift_threshold = drift_threshold
        self.clusters: List[IncrementalCluster] = []
        self._by_url: Dict[str, int] = {}
        for members in initial_clusters:
            cluster = IncrementalCluster(pages=list(members))
            cluster.rebuild_centroid()
            self.clusters.append(cluster)
            for page in members:
                self._by_url[page.url] = len(self.clusters) - 1

        # Candidate-pruned classification (repro.index): with many
        # clusters, scoring a page against every centroid per classify
        # is the read path's scan; posting lists over the centroids cut
        # it to a provably sufficient candidate set, re-scored through
        # the same backend.pair arithmetic (results bit-identical).
        # Cluster count never changes after construction (recluster
        # preserves it), so the auto decision is made once here.
        self.index_mode = validate_index_mode(
            index if index is not None else self.config.index
        )
        self._index_active = self.index_mode == "on" or (
            self.index_mode == "auto"
            and len(self.clusters) >= INDEX_AUTO_MIN_CLUSTERS
        )
        self.centroid_index: Optional[CentroidIndex] = None
        if self._index_active:
            self.centroid_index = CentroidIndex(
                content_mode=self.config.content_mode,
                page_weight=self.config.page_weight,
                form_weight=self.config.form_weight,
            )
            self.centroid_index.rebuild(self.clusters)

        self._contrib: Dict[str, float] = {}
        self._cohesion_sum = 0.0
        self.refresh_cohesion()
        self._baseline_cohesion = self.cohesion
        self.n_added = 0
        self.n_removed = 0

    # ----------------------------------------------------------------
    # Cohesion / drift.
    # ----------------------------------------------------------------

    def refresh_cohesion(self) -> float:
        """Re-score every page against its current centroid (O(n)
        similarity evaluations), re-syncing the running sum.  Returns the
        refreshed mean cohesion.

        An empty organizer (clusters exist but hold no pages — a
        directory bootstrapped before any source arrived, or drained by
        removals) has cohesion 0.0 by definition; the guard keeps the
        mean from dividing by the zero page count.
        """
        self._contrib = {}
        self._cohesion_sum = 0.0
        if not self._by_url:
            return 0.0
        for cluster in self.clusters:
            for page in cluster.pages:
                value = self.backend.pair(page, cluster.centroid)
                self._contrib[page.url] = value
                self._cohesion_sum += value
        return self.cohesion

    @property
    def cohesion(self) -> float:
        """Mean page-to-own-centroid similarity (running sum, O(1))."""
        count = len(self._contrib)
        return self._cohesion_sum / count if count else 0.0

    @property
    def needs_reclustering(self) -> bool:
        """True when cohesion fell below ``drift_threshold`` x initial."""
        if self._baseline_cohesion == 0.0 or not self._by_url:
            return False
        return self.cohesion < self.drift_threshold * self._baseline_cohesion

    # ----------------------------------------------------------------
    # Updates.
    # ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_url)

    def __contains__(self, url: str) -> bool:
        return url in self._by_url

    def cluster_of(self, url: str) -> int:
        """Cluster index of a managed page (KeyError when unknown)."""
        return self._by_url[url]

    def centroid_pairs(self) -> List[VectorPair]:
        """The current centroids, in cluster order (read-only view)."""
        return [cluster.centroid for cluster in self.clusters]

    # ----------------------------------------------------------------
    # Classification (Section 5) — read-only scoring paths.
    # ----------------------------------------------------------------

    def classify_vectorized(self, page: FormPage) -> Tuple[int, float]:
        """Best cluster for an already-vectorized page, without mutating
        anything.  Returns ``(cluster_index, similarity)``; ties break
        toward the lowest index, exactly as :meth:`add` assigns.

        With the centroid index active (``index="on"``, or ``"auto"``
        over at least ``INDEX_AUTO_MIN_CLUSTERS`` clusters), posting-
        list pruning generates a candidate set and only the survivors
        are scored — same winner, same float, fewer evaluations.  The
        full scan costs ``len(self.clusters)`` similarity evaluations
        and remains the reference (and the fallback when a concurrent
        reader finds the index rows stale).
        """
        index = self.centroid_index
        if index is not None and index.fresh(self.clusters):
            hit = index.top1(
                page,
                lambda i: self.backend.pair(page, self.clusters[i].centroid),
            )
            if hit is not None:
                return hit
            # Every centroid scored 0: mirror the scan's argmax over an
            # all-zero score list (first cluster wins).
            return 0, self.backend.pair(page, self.clusters[0].centroid)
        scores = [
            self.backend.pair(page, cluster.centroid)
            for cluster in self.clusters
        ]
        best_index = max(range(len(scores)), key=scores.__getitem__)
        return best_index, scores[best_index]

    def classify(self, raw: RawFormPage) -> Tuple[int, float]:
        """Vectorize a raw page and score it (no mutation) — the serving
        path's non-destructive twin of :meth:`add`."""
        return self.classify_vectorized(self.vectorizer.transform_new(raw))

    def classify_batch(
        self, pages: Sequence[FormPage]
    ) -> List[Tuple[int, float]]:
        """Classify many vectorized pages in ONE backend batch call.

        This is the micro-batching hook the form-directory server
        coalesces concurrent requests through: a single
        ``page_centroid_matrix`` over pages x centroids replaces
        ``len(pages) * len(self.clusters)`` scalar pair calls.  Argmax
        tie-breaking matches :meth:`classify_vectorized` (lowest index).
        """
        pages = list(pages)
        if not pages:
            return []
        matrix = self.backend.page_centroid_matrix(
            pages, self.centroid_pairs()
        )
        results: List[Tuple[int, float]] = []
        for row in matrix:
            best_index = max(range(len(row)), key=row.__getitem__)
            results.append((best_index, row[best_index]))
        return results

    def add(self, raw: RawFormPage) -> int:
        """Insert a newly discovered source; returns its cluster index.

        The page is vectorized against the frozen corpus statistics and
        joins its most similar cluster (classification, Section 5).
        Re-adding a managed URL replaces the old page first.

        Cost: exactly ``len(self.clusters) + 1`` similarity evaluations,
        regardless of collection size.
        """
        if raw.url in self._by_url:
            self.remove(raw.url)
        return self._insert(self.vectorizer.transform_new(raw))

    def add_vectorized(self, page: FormPage) -> int:
        """Insert an already-vectorized page (the server vectorizes
        outside its write lock, then inserts under it).  Same semantics
        and similarity budget as :meth:`add`."""
        if page.url in self._by_url:
            self.remove(page.url)
        return self._insert(page)

    def _insert(self, page: FormPage) -> int:
        best_index, _ = self.classify_vectorized(page)
        cluster = self.clusters[best_index]
        cluster.pages.append(page)
        cluster.rebuild_centroid()
        if self.centroid_index is not None:
            self.centroid_index.sync(self.clusters)
        contribution = self.backend.pair(page, cluster.centroid)
        self._contrib[page.url] = contribution
        self._cohesion_sum += contribution
        self._by_url[page.url] = best_index
        self.n_added += 1
        if self._baseline_cohesion == 0.0 and self.cohesion > 0.0:
            # The organizer started empty (baseline 0 would disarm drift
            # detection forever); the first real content re-arms it.
            self._baseline_cohesion = self.cohesion
        return best_index

    def remove(self, url: str) -> bool:
        """Drop a source (a database went offline).  Returns False when
        the URL is not managed.  Costs no similarity evaluations."""
        cluster_index = self._by_url.pop(url, None)
        if cluster_index is None:
            return False
        cluster = self.clusters[cluster_index]
        cluster.pages = [page for page in cluster.pages if page.url != url]
        cluster.rebuild_centroid()
        if self.centroid_index is not None:
            self.centroid_index.sync(self.clusters)
        self._cohesion_sum -= self._contrib.pop(url, 0.0)
        self.n_removed += 1
        return True

    def sizes(self) -> List[int]:
        return [cluster.size for cluster in self.clusters]

    # ----------------------------------------------------------------
    # Drift repair.
    # ----------------------------------------------------------------

    def recluster(self, max_iterations: Optional[int] = None) -> int:
        """Re-run batched k-means over every managed page, seeded with
        the *current* centroids — the drift repair a long-running
        directory performs when :attr:`needs_reclustering` turns on.

        Cheaper than the full pipeline (no re-crawl, no re-vectorize, no
        hub re-seeding): the pages keep their frozen-corpus vectors and
        the existing centroids are already close to a good solution, so
        the loop converges in a few iterations.  The number of clusters
        is preserved (emptied clusters keep their previous centroid, the
        k-means convention).  Re-syncs cohesion and resets the drift
        baseline to the repaired level.  Returns how many pages changed
        cluster.
        """
        from repro.core.simengine import SimilarityEngine

        pages = [
            page for cluster in self.clusters for page in cluster.pages
        ]
        if not pages:
            return 0
        old_assignment = dict(self._by_url)
        engine = SimilarityEngine.from_config(pages, self.config)
        result = engine.kmeans(
            self.centroid_pairs(),
            stop_fraction=self.config.stop_fraction,
            max_iterations=max_iterations or self.config.max_iterations,
        )
        self.backend.stats.merge(engine.stats)
        assignment = [-1] * len(pages)
        for index, members in enumerate(result.clustering.clusters):
            for member in members:
                assignment[member] = index
        final_centroids = [
            VectorPair(pc=c.pc, fc=c.fc) for c in result.centroids
        ]
        return self._apply_assignment(
            pages, assignment, old_assignment, final_centroids
        )

    def recluster_minibatch(
        self,
        reservoir_size: int = 512,
        batch_size: int = 64,
        epochs: int = 3,
        seed: int = 0,
    ) -> int:
        """Drift repair on a *bounded reservoir* instead of a full pass.

        The streaming mode: a deterministic reservoir sample of the
        managed pages trains a :class:`~repro.clustering.minibatch.
        MiniBatchKMeans` seeded with the current centroids (O(reservoir)
        similarity work, whatever the collection size), then one
        assignment sweep re-labels every member against the trained
        centroids.  The sweep is O(n) *assignments* but — unlike
        :meth:`recluster` — there is exactly one of them, no iterate-to-
        convergence loop, and the training set never exceeds
        ``reservoir_size`` pages.  Cluster count is preserved; emptied
        clusters keep their trained centroid.  Returns how many pages
        moved.
        """
        from repro.clustering.minibatch import MiniBatchKMeans, ReservoirSample

        pages = [
            page for cluster in self.clusters for page in cluster.pages
        ]
        if not pages:
            return 0
        old_assignment = dict(self._by_url)
        learner = MiniBatchKMeans(
            self.centroid_pairs(),
            page_weight=self.config.page_weight,
            form_weight=self.config.form_weight,
            use_pc=self.config.content_mode.uses_pc,
            use_fc=self.config.content_mode.uses_fc,
        )
        reservoir = ReservoirSample(reservoir_size, seed=seed)
        for page in pages:
            reservoir.offer(page)
        sample = reservoir.items
        for _ in range(max(1, epochs)):
            for offset in range(0, len(sample), max(1, batch_size)):
                learner.partial_fit(sample[offset : offset + batch_size])
        assignment = [learner.assign(page)[0] for page in pages]
        return self._apply_assignment(
            pages, assignment, old_assignment, learner.centroid_pairs()
        )

    def _apply_assignment(
        self,
        pages: List[FormPage],
        assignment: List[int],
        old_assignment: Dict[str, int],
        final_centroids: List[VectorPair],
    ) -> int:
        """Rebuild cluster structure from a fresh page->cluster labeling."""
        moved = 0
        new_clusters: List[IncrementalCluster] = []
        self._by_url = {}
        members_of: List[List[FormPage]] = [
            [] for _ in range(len(final_centroids))
        ]
        for page, index in zip(pages, assignment):
            members_of[index].append(page)
        for index, members in enumerate(members_of):
            cluster = IncrementalCluster(pages=members)
            if cluster.pages:
                cluster.rebuild_centroid()
            else:
                # Emptied cluster: keep its final trained centroid so it
                # can win pages back later (keep-previous convention).
                final = final_centroids[index]
                cluster.centroid = VectorPair(pc=final.pc, fc=final.fc)
            new_clusters.append(cluster)
            for page in cluster.pages:
                self._by_url[page.url] = index
                if old_assignment.get(page.url) != index:
                    moved += 1
        self.clusters = new_clusters
        if self.centroid_index is not None:
            self.centroid_index.rebuild(self.clusters)
        self.refresh_cohesion()
        self._baseline_cohesion = self.cohesion
        return moved
