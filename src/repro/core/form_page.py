"""The form-page model: ``FP(Backlink, PC, FC)``.

Two representations exist:

* :class:`RawFormPage` — what a crawler hands the pipeline: a URL, the raw
  HTML, the backlink URLs retrieved from a search engine, and (for
  evaluation only) an optional gold domain label.
* :class:`FormPage` — the vectorized form of Sections 2.1 / 3.2: the PC and
  PC vectors plus the backlink set, ready for similarity computation.

Vectorization (raw -> vectorized) is the job of
:class:`repro.core.vectorizer.FormPageVectorizer` because Equation 1 needs
corpus-level IDF statistics, which no single page can compute alone.
"""

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.html.text_extract import TextLocation
from repro.vsm.vector import SparseVector


@dataclass
class RawFormPage:
    """A crawled form page before vectorization.

    ``label`` is the gold-standard domain (Section 4.1's manual
    classification); it is carried for evaluation and never consulted by
    the clustering algorithms.
    """

    url: str
    html: str
    backlinks: List[str] = field(default_factory=list)
    label: Optional[str] = None
    # Anchor strings of links pointing at this page (Section-6 extension;
    # harvested via repro.link_analysis.anchor_text).  Folded into the PC
    # feature space with the ANCHOR location weight when present.
    anchor_texts: List[str] = field(default_factory=list)


# One analyzed term plus its markup location — the vectorizer's unit.
LocatedTerm = Tuple[str, TextLocation]


@dataclass
class FormPage:
    """A vectorized form page: ``FP(Backlink, PC, FC)`` (Section 3.2).

    ``pc`` and ``fc`` are Equation-1 weighted term vectors.  ``backlinks``
    is a frozen set of URLs pointing at this page (possibly via its site
    root, per Section 3.1).  ``form_term_count`` and ``page_term_count``
    are raw (pre-IDF) term totals used for the Table 1 analysis.

    ``pc_norm`` / ``fc_norm`` are the Euclidean norms of the two
    vectors, computed once at construction (vectorize) time so that no
    similarity path ever recomputes them — they also warm the vectors'
    own norm caches, keeping every consumer on the same float.
    """

    url: str
    pc: SparseVector
    fc: SparseVector
    backlinks: FrozenSet[str] = frozenset()
    label: Optional[str] = None
    form_term_count: int = 0
    page_term_count: int = 0
    attribute_count: int = 0
    pc_norm: float = field(init=False, default=0.0)
    fc_norm: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self.pc_norm = self.pc.norm()
        self.fc_norm = self.fc.norm()

    @property
    def is_single_attribute(self) -> bool:
        """Single-attribute (keyword-style) form, per Section 4.1."""
        return self.attribute_count == 1

    @property
    def terms_outside_form(self) -> int:
        """Page terms minus form terms — Table 1's quantity."""
        return max(self.page_term_count - self.form_term_count, 0)


@dataclass
class VectorPair:
    """A point in the combined (PC, FC) space — also used for centroids.

    Equation 4 averages member vectors per feature space; a centroid is
    therefore itself a (PC, FC) pair, which is why k-means over form pages
    can use one type for points and centroids.
    """

    pc: SparseVector
    fc: SparseVector

    @staticmethod
    def of(page: FormPage) -> "VectorPair":
        return VectorPair(pc=page.pc, fc=page.fc)


def centroid_of(pages: List[FormPage]) -> VectorPair:
    """Equation 4: per-space mean of the member pages' vectors."""
    from repro.vsm.vector import mean_vector

    return VectorPair(
        pc=mean_vector(page.pc for page in pages),
        fc=mean_vector(page.fc for page in pages),
    )
