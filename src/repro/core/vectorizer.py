"""Vectorizing raw form pages — Equation 1 over the FC and PC spaces.

The vectorizer performs the Section 2.1 construction:

1. parse the HTML and pull out every visible text fragment with its
   location (title / option / anchor / body) and whether it lies inside a
   ``<form>`` element;
2. analyze the text (tokenize, drop stopwords, Porter-stem);
3. build per-feature-space corpus statistics (document frequencies) over
   the whole collection;
4. emit, for every page, the LOC-weighted TF-IDF vectors for FC (terms
   inside the form) and PC (all page terms).

IDF is corpus-relative, so the vectorizer must see the full collection
before any vector exists: call :meth:`FormPageVectorizer.fit_transform`
once over the corpus, then (optionally) :meth:`transform_new` for pages
that arrive later (Section 5: classifying new sources against built
clusters).
"""

from typing import List, Optional, Sequence, Tuple

from repro.core.form_page import FormPage, LocatedTerm, RawFormPage
from repro.html.forms import extract_forms
from repro.html.parser import parse_html
from repro.html.text_extract import TextLocation, extract_located_text
from repro.text.analyzer import TextAnalyzer
from repro.vsm.corpus import CorpusStats
from repro.vsm.weights import LocationWeights, located_term_frequencies, tf_idf_vector


class FormPageVectorizer:
    """Builds FC/PC vectors for a collection of raw form pages."""

    def __init__(
        self,
        location_weights: Optional[LocationWeights] = None,
        analyzer: Optional[TextAnalyzer] = None,
        max_backlinks: int = 100,
    ) -> None:
        self.location_weights = location_weights or LocationWeights()
        self.analyzer = analyzer or TextAnalyzer()
        self.max_backlinks = max_backlinks
        self.fc_corpus = CorpusStats()
        self.pc_corpus = CorpusStats()
        self._fitted = False

    # ----------------------------------------------------------------
    # Per-page text analysis.
    # ----------------------------------------------------------------

    def _analyze_page(
        self, raw: RawFormPage
    ) -> Tuple[List[LocatedTerm], List[LocatedTerm], int, int]:
        """Return (pc_terms, fc_terms, attribute_count, on_page_terms).

        ``on_page_terms`` counts only the page's own visible terms —
        harvested anchor text (appended at the end of ``pc_terms``) is
        excluded, since Table 1 reasons about on-page text.
        """
        root = parse_html(raw.html)
        pc_terms: List[LocatedTerm] = []
        fc_terms: List[LocatedTerm] = []
        for fragment in extract_located_text(root):
            terms = self.analyzer.analyze(fragment.text)
            located = [(term, fragment.location) for term in terms]
            pc_terms.extend(located)
            if fragment.inside_form:
                fc_terms.extend(located)
        # Incoming anchor text (when harvested) joins the page context
        # with the ANCHOR location weight — it describes the page the
        # way the linking site sees it.
        on_page_terms = len(pc_terms)
        for anchor in raw.anchor_texts:
            pc_terms.extend(
                (term, TextLocation.ANCHOR) for term in self.analyzer.analyze(anchor)
            )
        attribute_count = 0
        forms = extract_forms(root)
        if forms:
            # A page can embed several forms (nav search + the database
            # form); the database form is normally the largest.
            attribute_count = max(form.attribute_count for form in forms)
        return pc_terms, fc_terms, attribute_count, on_page_terms

    # ----------------------------------------------------------------
    # Fitting and transforming.
    # ----------------------------------------------------------------

    def fit_transform(self, raw_pages: Sequence[RawFormPage]) -> List[FormPage]:
        """Vectorize a full collection (computes corpus IDF, then vectors)."""
        analyzed = [self._analyze_page(raw) for raw in raw_pages]

        # Pass 1 — document frequencies per feature space.
        for pc_terms, fc_terms, _, _ in analyzed:
            self.pc_corpus.add_document(term for term, _ in pc_terms)
            self.fc_corpus.add_document(term for term, _ in fc_terms)
        self._fitted = True

        # Pass 2 — Equation 1 vectors.
        return [
            self._build_form_page(raw, pc_terms, fc_terms, attribute_count, on_page)
            for raw, (pc_terms, fc_terms, attribute_count, on_page) in zip(
                raw_pages, analyzed
            )
        ]

    # ----------------------------------------------------------------
    # State export / import (snapshot support).
    #
    # Everything :meth:`transform_new` consumes is exported: the two
    # corpus statistics, the LOC policy, and the backlink cap.  The
    # analyzer is rebuilt from library defaults — it is a pure function
    # of its (default) stopword list and stemmer, so a fresh instance
    # reproduces the same terms.  Counts are integers and weights plain
    # floats, so a JSON round trip of this state yields bit-identical
    # vectors for any page.
    # ----------------------------------------------------------------

    def export_state(self) -> dict:
        """The fitted state as JSON-safe data (for snapshots)."""
        if not self._fitted:
            raise RuntimeError("vectorizer must be fitted before export_state")
        return {
            "max_backlinks": self.max_backlinks,
            "location_weights": self.location_weights.to_dict(),
            "pc_corpus": self.pc_corpus.to_dict(),
            "fc_corpus": self.fc_corpus.to_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "FormPageVectorizer":
        """Rebuild a fitted vectorizer from :meth:`export_state` data.

        The result classifies new pages (``transform_new``) exactly as
        the original would; it must not be re-fitted.
        """
        vectorizer = cls(
            location_weights=LocationWeights.from_dict(
                state.get("location_weights", {})
            ),
            max_backlinks=int(state.get("max_backlinks", 100)),
        )
        vectorizer.pc_corpus = CorpusStats.from_dict(state.get("pc_corpus", {}))
        vectorizer.fc_corpus = CorpusStats.from_dict(state.get("fc_corpus", {}))
        vectorizer._fitted = True
        return vectorizer

    def transform_new(self, raw: RawFormPage) -> FormPage:
        """Vectorize a page against the already-fitted corpus statistics.

        Terms unseen during fitting get IDF 0 and drop out; this is the
        standard frozen-vocabulary treatment for scoring new documents.
        """
        if not self._fitted:
            raise RuntimeError("vectorizer must be fitted before transform_new")
        pc_terms, fc_terms, attribute_count, on_page = self._analyze_page(raw)
        return self._build_form_page(raw, pc_terms, fc_terms, attribute_count, on_page)

    def _build_form_page(
        self,
        raw: RawFormPage,
        pc_terms: List[LocatedTerm],
        fc_terms: List[LocatedTerm],
        attribute_count: int,
        on_page_terms: int,
    ) -> FormPage:
        pc_tf = located_term_frequencies(pc_terms, self.location_weights)
        fc_tf = located_term_frequencies(fc_terms, self.location_weights)
        return FormPage(
            url=raw.url,
            pc=tf_idf_vector(pc_tf, self.pc_corpus),
            fc=tf_idf_vector(fc_tf, self.fc_corpus),
            backlinks=frozenset(raw.backlinks[: self.max_backlinks]),
            label=raw.label,
            form_term_count=len(fc_terms),
            page_term_count=on_page_terms,
            attribute_count=attribute_count,
        )
