"""Vectorizing raw form pages — Equation 1 over the FC and PC spaces.

The vectorizer performs the Section 2.1 construction:

1. parse the HTML and pull out every visible text fragment with its
   location (title / option / anchor / body) and whether it lies inside a
   ``<form>`` element;
2. analyze the text (tokenize, drop stopwords, Porter-stem);
3. build per-feature-space corpus statistics (document frequencies) over
   the whole collection;
4. emit, for every page, the LOC-weighted TF-IDF vectors for FC (terms
   inside the form) and PC (all page terms).

IDF is corpus-relative, so the vectorizer must see the full collection
before any vector exists: call :meth:`FormPageVectorizer.fit_transform`
once over the corpus, then (optionally) :meth:`transform_new` for pages
that arrive later (Section 5: classifying new sources against built
clusters).

Steps 1-2 (the CPU-heavy map phase) run through
:mod:`repro.parallel.ingest` under the vectorizer's
:class:`~repro.parallel.config.ParallelConfig` — serial, threaded, or on
a process pool — and per-page analyses are memoized by content hash, so
re-runs and the service's retry path skip re-parsing unchanged pages.
Parallel and cached output is bit-identical to serial output (see
docs/INGESTION.md for the determinism contract).
"""

import threading
from typing import List, Optional, Sequence

from repro.core.form_page import FormPage, RawFormPage
from repro.parallel.cache import (
    AnalysisCache,
    DiskAnalysisCache,
    analyzer_fingerprint,
    page_analysis_key,
)
from repro.parallel.config import ParallelConfig
from repro.parallel.ingest import (
    IngestError,
    IngestStats,
    PageAnalysis,
    analyze_form_page,
    analyze_pages,
)
from repro.text.analyzer import TextAnalyzer
from repro.vsm.corpus import CorpusStats
from repro.vsm.weights import LocationWeights, located_term_frequencies, tf_idf_vector


class FormPageVectorizer:
    """Builds FC/PC vectors for a collection of raw form pages."""

    def __init__(
        self,
        location_weights: Optional[LocationWeights] = None,
        analyzer: Optional[TextAnalyzer] = None,
        max_backlinks: int = 100,
        parallel: Optional[ParallelConfig] = None,
        analysis_cache_size: int = 4096,
    ) -> None:
        self.location_weights = location_weights or LocationWeights()
        self.analyzer = analyzer or TextAnalyzer()
        self.max_backlinks = max_backlinks
        self.parallel = parallel or ParallelConfig()
        self.fc_corpus = CorpusStats()
        self.pc_corpus = CorpusStats()
        self._fitted = False
        # Per-page analysis memo (content-hash keyed): fit_transform
        # fills it, transform_new reuses it — the service /classify
        # retry path re-analyzes nothing.
        self._analysis_cache = AnalysisCache(
            analysis_cache_size if self.parallel.use_cache else 0
        )
        self._disk_cache: Optional[DiskAnalysisCache] = (
            DiskAnalysisCache(self.parallel.cache_dir)
            if self.parallel.use_cache and self.parallel.cache_dir
            else None
        )
        self.ingest_stats = IngestStats()
        # transform_new runs concurrently under the service's threaded
        # HTTP server; the analysis cache locks itself, this lock keeps
        # the stats counters consistent.
        self._stats_lock = threading.Lock()

    # ----------------------------------------------------------------
    # Per-page text analysis.
    # ----------------------------------------------------------------

    def _analyze_page(self, raw: RawFormPage) -> PageAnalysis:
        """Analyze one page, reusing any cached analysis for its content."""
        key = None
        if self.parallel.use_cache:
            key = page_analysis_key(raw, analyzer_fingerprint(self.analyzer))
            hit = self._analysis_cache.get(key)
            if hit is not None:
                with self._stats_lock:
                    self.ingest_stats.pages_total += 1
                    self.ingest_stats.memory_cache_hits += 1
                return hit
            if self._disk_cache is not None:
                hit = self._disk_cache.get(key)
                if hit is not None:
                    self._analysis_cache.put(key, hit)
                    with self._stats_lock:
                        self.ingest_stats.pages_total += 1
                        self.ingest_stats.disk_cache_hits += 1
                    return hit
        try:
            analysis = analyze_form_page(raw, self.analyzer)
        except Exception as exc:
            raise IngestError(raw.url, f"{type(exc).__name__}: {exc}") from exc
        with self._stats_lock:
            self.ingest_stats.pages_total += 1
            self.ingest_stats.pages_analyzed += 1
        if key is not None:
            self._analysis_cache.put(key, analysis)
            if self._disk_cache is not None:
                self._disk_cache.put(key, analysis)
        return analysis

    # ----------------------------------------------------------------
    # Fitting and transforming.
    # ----------------------------------------------------------------

    def fit_transform(self, raw_pages: Sequence[RawFormPage]) -> List[FormPage]:
        """Vectorize a full collection (computes corpus IDF, then vectors).

        The map phase (parse + tokenize + stem) runs under the
        vectorizer's :class:`ParallelConfig`; the document-frequency
        merge happens here, in the parent, in page order — the exact
        call sequence of the serial path — so vocabulary order, DF
        counts, and every float weight are identical whatever executor
        analyzed the pages.
        """
        analyzed = analyze_pages(
            raw_pages,
            self.analyzer,
            config=self.parallel,
            memory_cache=self._analysis_cache if self.parallel.use_cache else None,
            disk_cache=self._disk_cache,
            stats=self.ingest_stats,
        )

        # Pass 1 — document frequencies per feature space.
        for analysis in analyzed:
            self.pc_corpus.add_document(term for term, _ in analysis.pc_terms)
            self.fc_corpus.add_document(term for term, _ in analysis.fc_terms)
        self._fitted = True

        # Pass 2 — Equation 1 vectors, over materialized IDF maps (same
        # ``log(N / n_i)`` floats as per-term ``idf`` calls, minus the
        # per-lookup method dispatch).
        pc_idf = self.pc_corpus.idf_map()
        fc_idf = self.fc_corpus.idf_map()
        return [
            self._build_form_page(raw, analysis, pc_idf=pc_idf, fc_idf=fc_idf)
            for raw, analysis in zip(raw_pages, analyzed)
        ]

    # ----------------------------------------------------------------
    # State export / import (snapshot support).
    #
    # Everything :meth:`transform_new` consumes is exported: the two
    # corpus statistics, the LOC policy, and the backlink cap.  The
    # analyzer is rebuilt from library defaults — it is a pure function
    # of its (default) stopword list and stemmer, so a fresh instance
    # reproduces the same terms.  Counts are integers and weights plain
    # floats, so a JSON round trip of this state yields bit-identical
    # vectors for any page.
    # ----------------------------------------------------------------

    def export_state(self) -> dict:
        """The fitted state as JSON-safe data (for snapshots)."""
        if not self._fitted:
            raise RuntimeError("vectorizer must be fitted before export_state")
        return {
            "max_backlinks": self.max_backlinks,
            "location_weights": self.location_weights.to_dict(),
            "pc_corpus": self.pc_corpus.to_dict(),
            "fc_corpus": self.fc_corpus.to_dict(),
        }

    @classmethod
    def from_state(
        cls, state: dict, parallel: Optional[ParallelConfig] = None
    ) -> "FormPageVectorizer":
        """Rebuild a fitted vectorizer from :meth:`export_state` data.

        The result classifies new pages (``transform_new``) exactly as
        the original would; it must not be re-fitted.
        """
        vectorizer = cls(
            location_weights=LocationWeights.from_dict(
                state.get("location_weights", {})
            ),
            max_backlinks=int(state.get("max_backlinks", 100)),
            parallel=parallel,
        )
        vectorizer.pc_corpus = CorpusStats.from_dict(state.get("pc_corpus", {}))
        vectorizer.fc_corpus = CorpusStats.from_dict(state.get("fc_corpus", {}))
        vectorizer._fitted = True
        return vectorizer

    def transform_new(self, raw: RawFormPage) -> FormPage:
        """Vectorize a page against the already-fitted corpus statistics.

        Terms unseen during fitting get IDF 0 and drop out; this is the
        standard frozen-vocabulary treatment for scoring new documents.
        A page whose content was already analyzed (during
        ``fit_transform`` or an earlier ``transform_new``) reuses the
        cached analysis instead of re-parsing.
        """
        if not self._fitted:
            raise RuntimeError("vectorizer must be fitted before transform_new")
        return self._build_form_page(raw, self._analyze_page(raw))

    def _build_form_page(
        self,
        raw: RawFormPage,
        analysis: PageAnalysis,
        pc_idf: Optional[dict] = None,
        fc_idf: Optional[dict] = None,
    ) -> FormPage:
        pc_tf = located_term_frequencies(analysis.pc_terms, self.location_weights)
        fc_tf = located_term_frequencies(analysis.fc_terms, self.location_weights)
        return FormPage(
            url=raw.url,
            pc=tf_idf_vector(pc_tf, self.pc_corpus, idf_map=pc_idf),
            fc=tf_idf_vector(fc_tf, self.fc_corpus, idf_map=fc_idf),
            backlinks=frozenset(raw.backlinks[: self.max_backlinks]),
            label=raw.label,
            form_term_count=len(analysis.fc_terms),
            page_term_count=analysis.on_page_terms,
            attribute_count=analysis.attribute_count,
        )
