"""Vectorizing raw form pages over the FC and PC feature spaces.

The vectorizer performs the Section 2.1 construction:

1. parse the HTML and pull out every visible text fragment with its
   location (title / option / anchor / body) and whether it lies inside a
   ``<form>`` element;
2. analyze the text (tokenize, drop stopwords, Porter-stem);
3. build per-feature-space corpus statistics over the whole collection
   (document frequencies, plus whatever else the active
   :class:`~repro.vsm.schemes.WeightingScheme` tracks);
4. emit, for every page, the scheme's weight vectors for FC (terms
   inside the form) and PC (all page terms) — Equation 1 under the
   default :class:`~repro.vsm.schemes.Eq1Scheme`, BM25 under
   :class:`~repro.vsm.schemes.BM25Scheme` (docs/RANKING.md).

Corpus statistics are collection-relative, so the vectorizer must see
the full collection before any vector exists: call
:meth:`FormPageVectorizer.fit_transform` once over the corpus, then
(optionally) :meth:`transform_new` for pages that arrive later
(Section 5: classifying new sources against built clusters).

Steps 1-2 (the CPU-heavy map phase) run through
:mod:`repro.parallel.ingest` under the vectorizer's
:class:`~repro.parallel.config.ParallelConfig` — serial, threaded, or on
a process pool — and per-page analyses are memoized by content hash, so
re-runs and the service's retry path skip re-parsing unchanged pages.
Parallel and cached output is bit-identical to serial output (see
docs/INGESTION.md for the determinism contract).
"""

import threading
from typing import List, Optional, Sequence

from repro.core.form_page import FormPage, RawFormPage
from repro.parallel.cache import (
    AnalysisCache,
    DiskAnalysisCache,
    analyzer_fingerprint,
    page_analysis_key,
)
from repro.parallel.config import ParallelConfig
from repro.parallel.ingest import (
    IngestError,
    IngestStats,
    PageAnalysis,
    analyze_form_page,
    analyze_pages,
)
from repro.text.analyzer import TextAnalyzer
from repro.vsm.corpus import CorpusStats
from repro.vsm.schemes import (
    SchemeSpec,
    SpaceStats,
    resolve_scheme,
    scheme_from_dict,
)
from repro.vsm.weights import LocationWeights, located_term_frequencies


class FormPageVectorizer:
    """Builds FC/PC vectors for a collection of raw form pages.

    ``scheme`` selects the term-weighting formula — a name accepted by
    :func:`~repro.vsm.schemes.resolve_scheme` (``"auto"`` / ``"off"`` /
    ``"eq1"`` / ``"bm25"`` / ``"tf"``) or a
    :class:`~repro.vsm.schemes.WeightingScheme` instance for tuned
    parameters.  The default is Equation 1, bit-identical to the
    pre-seam vectorizer.
    """

    def __init__(
        self,
        location_weights: Optional[LocationWeights] = None,
        analyzer: Optional[TextAnalyzer] = None,
        max_backlinks: int = 100,
        parallel: Optional[ParallelConfig] = None,
        analysis_cache_size: int = 4096,
        scheme: SchemeSpec = None,
    ) -> None:
        self.location_weights = location_weights or LocationWeights()
        self.analyzer = analyzer or TextAnalyzer()
        self.max_backlinks = max_backlinks
        self.parallel = parallel or ParallelConfig()
        self.scheme = resolve_scheme(scheme)
        self.fc_stats = SpaceStats()
        self.pc_stats = SpaceStats()
        # Per-space emit contexts (e.g. IDF maps), prepared after fit
        # and invalidated by it; transform_new reuses them.
        self._pc_context = None
        self._fc_context = None
        self._contexts_ready = False
        self._fitted = False
        # Per-page analysis memo (content-hash keyed): fit_transform
        # fills it, transform_new reuses it — the service /classify
        # retry path re-analyzes nothing.
        self._analysis_cache = AnalysisCache(
            analysis_cache_size if self.parallel.use_cache else 0
        )
        self._disk_cache: Optional[DiskAnalysisCache] = (
            DiskAnalysisCache(self.parallel.cache_dir)
            if self.parallel.use_cache and self.parallel.cache_dir
            else None
        )
        self.ingest_stats = IngestStats()
        # transform_new runs concurrently under the service's threaded
        # HTTP server; the analysis cache locks itself, this lock keeps
        # the stats counters consistent.
        self._stats_lock = threading.Lock()

    # ----------------------------------------------------------------
    # Corpus-statistics views.
    # ----------------------------------------------------------------

    @property
    def pc_corpus(self) -> CorpusStats:
        """PC document frequencies (view into the PC space stats)."""
        return self.pc_stats.corpus

    @property
    def fc_corpus(self) -> CorpusStats:
        """FC document frequencies (view into the FC space stats)."""
        return self.fc_stats.corpus

    # ----------------------------------------------------------------
    # Per-page text analysis.
    # ----------------------------------------------------------------

    def _analyze_page(self, raw: RawFormPage) -> PageAnalysis:
        """Analyze one page, reusing any cached analysis for its content."""
        key = None
        if self.parallel.use_cache:
            key = page_analysis_key(raw, analyzer_fingerprint(self.analyzer))
            hit = self._analysis_cache.get(key)
            if hit is not None:
                with self._stats_lock:
                    self.ingest_stats.pages_total += 1
                    self.ingest_stats.memory_cache_hits += 1
                return hit
            if self._disk_cache is not None:
                hit = self._disk_cache.get(key)
                if hit is not None:
                    self._analysis_cache.put(key, hit)
                    with self._stats_lock:
                        self.ingest_stats.pages_total += 1
                        self.ingest_stats.disk_cache_hits += 1
                    return hit
        try:
            analysis = analyze_form_page(raw, self.analyzer)
        except Exception as exc:
            raise IngestError(raw.url, f"{type(exc).__name__}: {exc}") from exc
        with self._stats_lock:
            self.ingest_stats.pages_total += 1
            self.ingest_stats.pages_analyzed += 1
        if key is not None:
            self._analysis_cache.put(key, analysis)
            if self._disk_cache is not None:
                self._disk_cache.put(key, analysis)
        return analysis

    # ----------------------------------------------------------------
    # Fitting and transforming.
    # ----------------------------------------------------------------

    def fit_transform(self, raw_pages: Sequence[RawFormPage]) -> List[FormPage]:
        """Vectorize a full collection (computes corpus IDF, then vectors).

        The map phase (parse + tokenize + stem) runs under the
        vectorizer's :class:`ParallelConfig`; the document-frequency
        merge happens here, in the parent, in page order — the exact
        call sequence of the serial path — so vocabulary order, DF
        counts, and every float weight are identical whatever executor
        analyzed the pages.
        """
        analyzed = analyze_pages(
            raw_pages,
            self.analyzer,
            config=self.parallel,
            memory_cache=self._analysis_cache if self.parallel.use_cache else None,
            disk_cache=self._disk_cache,
            stats=self.ingest_stats,
        )

        # Pass 1 — per-space scheme statistics (document frequencies,
        # plus e.g. BM25's length totals), folded in page order.
        scheme = self.scheme
        for analysis in analyzed:
            scheme.observe(
                self.pc_stats, analysis.pc_terms, self.location_weights
            )
            scheme.observe(
                self.fc_stats, analysis.fc_terms, self.location_weights
            )
        self._fitted = True

        # Pass 2 — the scheme's weight vectors, over per-space emit
        # contexts prepared once (for Equation 1: the materialized IDF
        # map, the same ``log(N / n_i)`` floats as per-term ``idf``
        # calls, minus the per-lookup method dispatch).
        pc_context, fc_context = self._prepare_contexts()
        return [
            self._build_form_page(
                raw, analysis, pc_context=pc_context, fc_context=fc_context
            )
            for raw, analysis in zip(raw_pages, analyzed)
        ]

    def _prepare_contexts(self):
        """(Re)build the per-space emit contexts after a fit or load."""
        self._pc_context = self.scheme.prepare(self.pc_stats)
        self._fc_context = self.scheme.prepare(self.fc_stats)
        self._contexts_ready = True
        return self._pc_context, self._fc_context

    # ----------------------------------------------------------------
    # Streaming ingestion hooks (repro.stream; docs/INGESTION.md).
    #
    # The batch contract above observes the *whole* collection before
    # any vector exists.  The streaming path splits the three phases
    # apart: ``stream_observe`` folds documents into the per-space
    # stats online, ``reprepare`` refreshes the frozen emit contexts at
    # re-weight events (the drift policy decides when), and
    # ``emit_vectors`` emits against whatever context is current —
    # deliberately NOT auto-refreshing, because the staleness between
    # re-weights is the quantified relaxation the drift tracker bounds.
    # ----------------------------------------------------------------

    @property
    def contexts_ready(self) -> bool:
        """Whether prepared emit contexts exist (streaming can emit)."""
        return self._contexts_ready

    def stream_observe(self, analysis: PageAnalysis) -> None:
        """Fold one analyzed page into the per-space statistics without
        touching the prepared emit contexts."""
        self.scheme.observe(
            self.pc_stats, analysis.pc_terms, self.location_weights
        )
        self.scheme.observe(
            self.fc_stats, analysis.fc_terms, self.location_weights
        )
        self._fitted = True

    def reprepare(self, min_df: int = 1, vocab_budget: int = 0):
        """Refresh the emit contexts from the current statistics.

        ``min_df`` > 1 first prunes rarer terms from both DF tables when
        a table exceeds ``vocab_budget`` entries (0 = always prune) —
        the streaming vocabulary floor that keeps the prepared contexts,
        and hence the interned vocabulary, from growing with hapax terms
        (site brands) an unbounded stream produces at O(pages).
        Returns ``(pc_context, fc_context)``.
        """
        if min_df > 1:
            for stats in (self.pc_stats, self.fc_stats):
                table = stats.corpus.document_frequencies()
                if vocab_budget <= 0 or len(table) > vocab_budget:
                    stats.corpus.prune_rare(min_df)
        return self._prepare_contexts()

    def emit_vectors(self, pc_tf, fc_tf):
        """Emit one page's (pc, fc) vectors from LOC-weighted TF counters
        against the *current frozen* contexts.

        Raises unless :meth:`reprepare` (or a batch fit) ran first —
        emitting without a context would silently fall back to
        per-emission exact statistics, which both costs O(vocab) per
        page and breaks the drift-bound contract.
        """
        if not self._contexts_ready:
            raise RuntimeError(
                "no prepared emit contexts; call reprepare() before emitting"
            )
        return (
            self.scheme.vector(pc_tf, self.pc_stats, self._pc_context),
            self.scheme.vector(fc_tf, self.fc_stats, self._fc_context),
        )

    def stream_emit(self, raw: RawFormPage, analysis: PageAnalysis) -> FormPage:
        """Build a :class:`FormPage` against the current frozen contexts."""
        if not self._contexts_ready:
            raise RuntimeError(
                "no prepared emit contexts; call reprepare() before emitting"
            )
        return self._build_form_page(
            raw,
            analysis,
            pc_context=self._pc_context,
            fc_context=self._fc_context,
        )

    # ----------------------------------------------------------------
    # State export / import (snapshot support).
    #
    # Everything :meth:`transform_new` consumes is exported: the two
    # corpus statistics, the LOC policy, and the backlink cap.  The
    # analyzer is rebuilt from library defaults — it is a pure function
    # of its (default) stopword list and stemmer, so a fresh instance
    # reproduces the same terms.  Counts are integers and weights plain
    # floats, so a JSON round trip of this state yields bit-identical
    # vectors for any page.
    # ----------------------------------------------------------------

    def export_state(self) -> dict:
        """The fitted state as JSON-safe data (for snapshots).

        The ``pc_corpus`` / ``fc_corpus`` keys keep their pre-seam
        shape, and a default-scheme export adds only the (ignorable)
        ``scheme`` / length keys — so Equation-1 state stays loadable by
        pre-seam readers, while non-default schemes are refused by them
        at the snapshot layer's version gate.
        """
        if not self._fitted:
            raise RuntimeError("vectorizer must be fitted before export_state")
        return {
            "max_backlinks": self.max_backlinks,
            "location_weights": self.location_weights.to_dict(),
            "scheme": self.scheme.to_dict(),
            "pc_corpus": self.pc_corpus.to_dict(),
            "fc_corpus": self.fc_corpus.to_dict(),
            "pc_total_weighted_length": self.pc_stats.total_weighted_length,
            "fc_total_weighted_length": self.fc_stats.total_weighted_length,
        }

    @classmethod
    def from_state(
        cls, state: dict, parallel: Optional[ParallelConfig] = None
    ) -> "FormPageVectorizer":
        """Rebuild a fitted vectorizer from :meth:`export_state` data.

        The result classifies new pages (``transform_new``) exactly as
        the original would; it must not be re-fitted.  State without a
        ``scheme`` entry (exported before the scheme seam) loads as
        Equation 1 — which is exactly how it was built.  Unknown scheme
        names raise :class:`~repro.vsm.schemes.UnknownSchemeError`.
        """
        vectorizer = cls(
            location_weights=LocationWeights.from_dict(
                state.get("location_weights", {})
            ),
            max_backlinks=int(state.get("max_backlinks", 100)),
            parallel=parallel,
            scheme=scheme_from_dict(dict(state.get("scheme", {"name": "eq1"}))),
        )
        vectorizer.pc_stats = SpaceStats(
            CorpusStats.from_dict(state.get("pc_corpus", {})),
            float(state.get("pc_total_weighted_length", 0.0)),
        )
        vectorizer.fc_stats = SpaceStats(
            CorpusStats.from_dict(state.get("fc_corpus", {})),
            float(state.get("fc_total_weighted_length", 0.0)),
        )
        vectorizer._fitted = True
        return vectorizer

    def transform_new(self, raw: RawFormPage) -> FormPage:
        """Vectorize a page against the already-fitted corpus statistics.

        Terms unseen during fitting get IDF 0 and drop out; this is the
        standard frozen-vocabulary treatment for scoring new documents.
        A page whose content was already analyzed (during
        ``fit_transform`` or an earlier ``transform_new``) reuses the
        cached analysis instead of re-parsing.
        """
        if not self._fitted:
            raise RuntimeError("vectorizer must be fitted before transform_new")
        if self._contexts_ready:
            pc_context, fc_context = self._pc_context, self._fc_context
        else:  # first transform after from_state: prepare once, reuse
            pc_context, fc_context = self._prepare_contexts()
        return self._build_form_page(
            raw,
            self._analyze_page(raw),
            pc_context=pc_context,
            fc_context=fc_context,
        )

    def _build_form_page(
        self,
        raw: RawFormPage,
        analysis: PageAnalysis,
        pc_context=None,
        fc_context=None,
    ) -> FormPage:
        pc_tf = located_term_frequencies(analysis.pc_terms, self.location_weights)
        fc_tf = located_term_frequencies(analysis.fc_terms, self.location_weights)
        return FormPage(
            url=raw.url,
            pc=self.scheme.vector(pc_tf, self.pc_stats, pc_context),
            fc=self.scheme.vector(fc_tf, self.fc_stats, fc_context),
            backlinks=frozenset(raw.backlinks[: self.max_backlinks]),
            label=raw.label,
            form_term_count=len(analysis.fc_terms),
            page_term_count=analysis.on_page_terms,
            attribute_count=analysis.attribute_count,
        )
