"""Algorithm 3 — SelectHubClusters: greedy farthest-first seed selection.

Given the (pruned) hub clusters, pick the ``k`` most mutually distant ones
to serve as k-means seeds:

1. compute the pairwise distance matrix between hub-cluster centroids
   (distance = 1 - Equation-3 similarity);
2. start with the two most distant clusters;
3. repeatedly add the cluster whose summed distance to the current seed
   set is maximal, until ``k`` seeds are chosen.

The paper argues the selection is robust to outliers because it operates
on clusters (multi-document centroids), not individual pages — provided
small clusters were pruned first (Section 3.3).
"""

from typing import List, Sequence

import numpy as np

from repro.core.hubs import HubCluster
from repro.core.similarity import FormPageSimilarity


def hub_distance_matrix(
    clusters: Sequence[HubCluster],
    similarity: FormPageSimilarity,
) -> np.ndarray:
    """Pairwise centroid distances (1 - similarity), symmetric, zero diag."""
    n = len(clusters)
    matrix = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            distance = similarity.distance(clusters[i].centroid, clusters[j].centroid)
            matrix[i, j] = distance
            matrix[j, i] = distance
    return matrix


def select_hub_clusters(
    clusters: Sequence[HubCluster],
    k: int,
    similarity: FormPageSimilarity,
) -> List[HubCluster]:
    """Pick the ``k`` most mutually distant hub clusters (Algorithm 3).

    Raises ValueError when fewer than ``k`` hub clusters are available —
    the caller should lower the cardinality threshold or fall back to
    random seeding.

    Determinism: ties in the greedy objective are broken by the clusters'
    order in ``clusters`` (which `build_hub_clusters` makes deterministic).
    """
    if k < 1:
        raise ValueError("k must be positive")
    if len(clusters) < k:
        raise ValueError(
            f"need at least {k} hub clusters, have {len(clusters)}; "
            "lower min_hub_cardinality or use random seeding"
        )
    if k == 1:
        return [clusters[0]]

    distances = hub_distance_matrix(clusters, similarity)
    n = len(clusters)

    # Step 1: the two most distant clusters.  np.argmax on the upper
    # triangle gives the first maximal pair in row-major order.
    upper = np.triu(distances, k=1)
    flat_index = int(np.argmax(upper))
    first, second = divmod(flat_index, n)
    selected = [first, second]

    # Step 2: greedily add the cluster maximizing the summed distance to
    # the already-selected set.
    summed = distances[first] + distances[second]
    chosen_mask = np.zeros(n, dtype=bool)
    chosen_mask[[first, second]] = True
    while len(selected) < k:
        candidate_scores = np.where(chosen_mask, -np.inf, summed)
        best = int(np.argmax(candidate_scores))
        selected.append(best)
        chosen_mask[best] = True
        summed = summed + distances[best]

    return [clusters[i] for i in selected]
