"""Algorithm 3 — SelectHubClusters: greedy farthest-first seed selection.

Given the (pruned) hub clusters, pick the ``k`` most mutually distant ones
to serve as k-means seeds:

1. compute the pairwise distance matrix between hub-cluster centroids
   (distance = 1 - Equation-3 similarity);
2. start with the two most distant clusters;
3. repeatedly add the cluster whose summed distance to the current seed
   set is maximal, until ``k`` seeds are chosen.

The paper argues the selection is robust to outliers because it operates
on clusters (multi-document centroids), not individual pages — provided
small clusters were pruned first (Section 3.3).

The distance matrix is served by a similarity backend (one batched
:meth:`~repro.core.similarity.SimilarityBackend.pairwise` call).  The
old positional ``similarity=`` callable seam is gone: pass ``backend=``
(a name, a backend instance, or ``None`` for the default) —
``resolve_backend`` rejects bare callables with a migration hint.
"""

from typing import List, Sequence

import numpy as np

from repro.core.hubs import HubCluster
from repro.core.similarity import BackendSpec, resolve_backend


def hub_distance_matrix(
    clusters: Sequence[HubCluster],
    *,
    backend: BackendSpec = None,
) -> np.ndarray:
    """Pairwise centroid distances (1 - similarity), symmetric, zero diag.

    ``backend`` is a backend name, a
    :class:`~repro.core.similarity.SimilarityBackend`, or ``None`` for
    the default.
    """
    resolved = resolve_backend(backend)
    n = len(clusters)
    if n == 0:
        return np.zeros((0, 0), dtype=np.float64)
    centroids = [cluster.centroid for cluster in clusters]
    matrix = 1.0 - np.asarray(resolved.pairwise(centroids), dtype=np.float64)
    np.fill_diagonal(matrix, 0.0)
    return matrix


def select_hub_clusters(
    clusters: Sequence[HubCluster],
    k: int,
    *,
    backend: BackendSpec = None,
) -> List[HubCluster]:
    """Pick the ``k`` most mutually distant hub clusters (Algorithm 3).

    Raises ValueError when fewer than ``k`` hub clusters are available —
    the caller should lower the cardinality threshold or fall back to
    random seeding.

    Determinism: ties in the greedy objective are broken by the clusters'
    order in ``clusters`` (which `build_hub_clusters` makes deterministic).

    The similarity arithmetic comes from ``backend`` (a backend name, a
    :class:`~repro.core.similarity.SimilarityBackend`, or ``None`` for
    the default).
    """
    if k < 1:
        raise ValueError("k must be positive")
    if len(clusters) < k:
        raise ValueError(
            f"need at least {k} hub clusters, have {len(clusters)}; "
            "lower min_hub_cardinality or use random seeding"
        )
    resolved = resolve_backend(backend)
    if k == 1:
        return [clusters[0]]

    distances = hub_distance_matrix(clusters, backend=resolved)
    n = len(clusters)

    # Step 1: the two most distant clusters.  np.argmax on the upper
    # triangle gives the first maximal pair in row-major order.
    upper = np.triu(distances, k=1)
    flat_index = int(np.argmax(upper))
    first, second = divmod(flat_index, n)
    selected = [first, second]

    # Step 2: greedily add the cluster maximizing the summed distance to
    # the already-selected set.
    summed = distances[first] + distances[second]
    chosen_mask = np.zeros(n, dtype=bool)
    chosen_mask[[first, second]] = True
    while len(selected) < k:
        candidate_scores = np.where(chosen_mask, -np.inf, summed)
        best = int(np.argmax(candidate_scores))
        selected.append(best)
        chosen_mask[best] = True
        summed = summed + distances[best]

    return [clusters[i] for i in selected]
