"""Batched sparse similarity engine — the shared backend for Equation 3.

Every hot path of the reproduction (Algorithm 1's assignment loop,
Algorithm 3's hub-distance matrix, incremental cohesion, the explorer's
query scoring, the schema baseline) is some batch of Equation-3 cosines.
Computing them pair-by-pair over string-keyed dictionaries caps corpus
size; this module compiles a collection once into CSR-style parallel
arrays and serves every batched shape from that one representation:

* :meth:`SimilarityEngine.pairwise` — the full n x n similarity matrix
  via inverted-index accumulation (upper triangle only);
* :meth:`SimilarityEngine.page_centroid_matrix` — pages x centroids,
  the k-means assignment shape;
* :meth:`SimilarityEngine.to_centroids` — Equation-4 means straight
  from the compiled rows;
* :meth:`SimilarityEngine.topk` — query-against-collection ranking;
* :meth:`SimilarityEngine.kmeans` — Algorithm 1's loop, batched, with
  tie-breaking and stopping semantics identical to
  :func:`repro.clustering.kmeans.kmeans`.

Everything is pure Python over :mod:`array` buffers; when NumPy and
SciPy are importable (detected once at import time) the two matrix
shapes switch to one sparse matmul.  Both paths agree with the scalar
:class:`~repro.core.similarity.FormPageSimilarity` to well below 1e-9:
per-space cosines are accumulated from pre-normalized rows and combined
with the literal Equation-3 expression, never algebraically rearranged.

The engine never changes Eq. 1-6 semantics — it only changes how the
same arithmetic is batched.
"""

import time
from array import array
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ContentMode
from repro.core.form_page import VectorPair
from repro.vsm.vector import SparseVector

try:  # optional fast path, detected once at import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is normally present
    _np = None
try:
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover
    _sp = None

#: True when the NumPy/SciPy matmul fast path is available.
HAVE_NUMPY = _np is not None and _sp is not None


@dataclass
class EngineStats:
    """Instrumentation counters for one engine (or backend) instance.

    ``comparisons`` counts pair-similarity equivalents: a pairwise call
    over n items adds n*(n-1)/2, an assignment pass adds pages x
    centroids, a top-k query adds one per scored item.  ``cache_hits``
    counts reuses of already-computed work (memoized single pairs,
    compiled-engine reuse).  ``build_seconds`` is time spent compiling
    collections into the packed representation.
    """

    n_pages: int = 0
    n_terms: int = 0
    build_seconds: float = 0.0
    comparisons: int = 0
    cache_hits: int = 0
    backend: str = "python"

    def snapshot(self) -> "EngineStats":
        """An immutable copy (for surfacing through results)."""
        return replace(self)

    def merge(self, other: "EngineStats") -> None:
        """Fold another instance's counters into this one (rollup).

        Counters add; sizes take the max (they describe the largest
        collection either side compiled); the backend tag is kept unless
        this instance has none yet.
        """
        self.n_pages = max(self.n_pages, other.n_pages)
        self.n_terms = max(self.n_terms, other.n_terms)
        self.build_seconds += other.build_seconds
        self.comparisons += other.comparisons
        self.cache_hits += other.cache_hits
        if not self.backend:
            self.backend = other.backend

    def as_dict(self) -> Dict[str, object]:
        """Counters as plain data — the /metrics rollup shape."""
        return {
            "backend": self.backend,
            "n_pages": self.n_pages,
            "n_terms": self.n_terms,
            "build_seconds": self.build_seconds,
            "comparisons": self.comparisons,
            "cache_hits": self.cache_hits,
        }

    def summary(self) -> str:
        return (
            f"backend={self.backend} pages={self.n_pages} "
            f"terms={self.n_terms} build={self.build_seconds:.3f}s "
            f"comparisons={self.comparisons} cache_hits={self.cache_hits}"
        )


class _Space:
    """One compiled feature space (PC or FC) in CSR-style arrays."""

    __slots__ = (
        "vocab", "term_of", "ids", "raw", "nrm", "norms", "_postings", "_csr"
    )

    def __init__(self) -> None:
        self.vocab: Dict[str, int] = {}
        self.term_of: List[str] = []
        self.ids: List[array] = []     # per row: term ids ('l')
        self.raw: List[array] = []     # per row: raw Equation-1 weights ('d')
        self.nrm: List[array] = []     # per row: weights / row norm ('d')
        self.norms: List[float] = []
        self._postings: Optional[Dict[int, List[Tuple[int, float]]]] = None
        self._csr = None

    def add_row(self, vector: SparseVector) -> None:
        ids = array("l")
        raw = array("d")
        vocab = self.vocab
        term_of = self.term_of
        for term, weight in vector.items():
            term_id = vocab.get(term)
            if term_id is None:
                term_id = len(term_of)
                vocab[term] = term_id
                term_of.append(term)
            ids.append(term_id)
            raw.append(weight)
        norm = vector.norm()
        self.ids.append(ids)
        self.raw.append(raw)
        if norm > 0.0:
            inv = 1.0 / norm
            self.nrm.append(array("d", (w * inv for w in raw)))
        else:
            self.nrm.append(array("d"))
        self.norms.append(norm)

    # -- derived structures (built lazily, cached) --------------------

    def postings(self) -> Dict[int, List[Tuple[int, float]]]:
        """Inverted index over normalized rows: id -> [(row, weight)].

        Rows are appended in ascending order (pages are compiled in
        sequence), which the upper-triangle accumulation relies on.
        Each posting is one list of (row, weight) tuples — the layout
        the accumulation loops iterate millions of times, so one tuple
        unpack per step replaces parallel-array indexing.
        """
        if self._postings is None:
            postings: Dict[int, List[Tuple[int, float]]] = {}
            for row, (ids, weights) in enumerate(zip(self.ids, self.nrm)):
                for term_id, weight in zip(ids, weights):
                    entry = postings.get(term_id)
                    if entry is None:
                        entry = []
                        postings[term_id] = entry
                    entry.append((row, weight))
            self._postings = postings
        return self._postings

    def csr(self):
        """Normalized rows as a scipy CSR matrix (fast path only)."""
        if self._csr is None:
            indptr = [0]
            indices: List[int] = []
            data: List[float] = []
            for ids, weights in zip(self.ids, self.nrm):
                indices.extend(ids)
                data.extend(weights)
                indptr.append(len(indices))
            self._csr = _sp.csr_matrix(
                (data, indices, indptr),
                shape=(len(self.ids), max(len(self.vocab), 1)),
                dtype=_np.float64,
            )
        return self._csr

    # -- per-row helpers ----------------------------------------------

    def row_map(self, row: int) -> Dict[int, float]:
        return dict(zip(self.ids[row], self.nrm[row]))

    def self_cosine(self, row: int) -> float:
        """cos(row, row): 1.0-ish for non-empty rows, 0.0 for empty."""
        weights = self.nrm[row]
        if not weights:
            return 0.0
        return sum(w * w for w in weights)

    def compile_external(self, vector: SparseVector) -> Dict[int, float]:
        """A foreign vector as a normalized id -> weight map.

        The norm is the vector's *full* norm (out-of-vocabulary terms
        included), exactly as the scalar cosine sees it; OOV terms are
        then dropped because no compiled row can match them.
        """
        norm = vector.norm()
        if norm == 0.0:
            return {}
        inv = 1.0 / norm
        vocab = self.vocab
        compiled: Dict[int, float] = {}
        for term, weight in vector.items():
            term_id = vocab.get(term)
            if term_id is not None:
                compiled[term_id] = weight * inv
        return compiled

    def score_column(self, query: Dict[int, float], n_rows: int) -> List[float]:
        """Cosine of ``query`` against every compiled row (accumulator)."""
        scores = [0.0] * n_rows
        postings = self.postings()
        for term_id, query_weight in query.items():
            entry = postings.get(term_id)
            if entry is None:
                continue
            for row, weight in entry:
                scores[row] += query_weight * weight
        return scores

    def pairwise_upper(self) -> List[List[float]]:
        """All-pairs cosine dot products, upper triangle only.

        Returned rows are full length but only ``row[i][j]`` with
        ``j > i`` is meaningful; the engine's combine step fills the
        diagonal and mirrors the lower triangle in one pass.  The inner
        loop iterates a slice of (row, weight) tuples, so each step is
        one unpack plus one indexed add — the cheapest scatter CPython
        offers for this shape.
        """
        n = len(self.ids)
        sims: List[List[float]] = [[0.0] * n for _ in range(n)]
        for pool in self.postings().values():
            m = len(pool)
            if m < 2:
                continue
            for a in range(m - 1):
                row_a, weight_a = pool[a]
                target = sims[row_a]
                for row_b, weight_b in pool[a + 1:]:
                    target[row_b] += weight_a * weight_b
        return sims

    def pairwise_numpy(self):
        matrix = self.csr()
        dense = _np.asarray((matrix @ matrix.T).todense())
        _np.fill_diagonal(
            dense, [self.self_cosine(i) for i in range(len(self.ids))]
        )
        return dense


class CompiledCentroids:
    """Equation-4 centroids in engine id space, ready for batched scoring.

    Built either from an assignment over the engine's own rows
    (:meth:`SimilarityEngine.to_centroids`) or by compiling external
    :class:`~repro.core.form_page.VectorPair` objects.  ``raw[space][i]``
    is the centroid's raw id -> weight map, ``nrm[space][i]`` the
    normalized one used for cosine scoring; ``norms[space][i]`` the
    Euclidean norm (0.0 for an empty centroid).
    """

    def __init__(self, engine: "SimilarityEngine", k: int) -> None:
        self.engine = engine
        self.k = k
        self.raw: Dict[str, List[Dict[int, float]]] = {}
        self.nrm: Dict[str, List[Dict[int, float]]] = {}
        self.norms: Dict[str, List[float]] = {}
        for name in engine.space_names:
            self.raw[name] = [{} for _ in range(k)]
            self.nrm[name] = [{} for _ in range(k)]
            self.norms[name] = [0.0] * k

    def __len__(self) -> int:
        return self.k

    def set_raw(self, space: str, index: int, raw: Dict[int, float]) -> None:
        norm = _sqrt_sum_sq(raw)
        self.raw[space][index] = raw
        self.norms[space][index] = norm
        if norm > 0.0:
            inv = 1.0 / norm
            self.nrm[space][index] = {i: w * inv for i, w in raw.items()}
        else:
            self.nrm[space][index] = {}

    def vector_pair(self, index: int) -> VectorPair:
        """Materialize centroid ``index`` back into string-term vectors."""
        pc = self._materialize("pc", index)
        fc = self._materialize("fc", index)
        return VectorPair(pc=pc, fc=fc)

    def _materialize(self, space: str, index: int) -> SparseVector:
        compiled = self.raw.get(space)
        if compiled is None:
            return SparseVector()
        term_of = self.engine.space(space).term_of
        return SparseVector(
            {term_of[i]: w for i, w in compiled[index].items()}
        )


def _sqrt_sum_sq(weights: Dict[int, float]) -> float:
    total = 0.0
    for weight in weights.values():
        total += weight * weight
    return total ** 0.5


class SimilarityEngine:
    """Compiled Equation-3 similarity over a fixed collection.

    Parameters
    ----------
    items:
        Anything with ``.pc`` / ``.fc`` sparse vectors (form pages, hub
        centroids, schema adapters).  The engine indexes them once; all
        batched operations refer to them by position.
    content_mode / page_weight / form_weight:
        The Equation-3 configuration, exactly as
        :class:`~repro.core.similarity.FormPageSimilarity` takes it.
    use_numpy:
        ``None`` (default) auto-detects the NumPy/SciPy fast path;
        ``False`` forces the pure-Python path (the benchmarks use this
        to prove the pure path's speedup); ``True`` requires the fast
        path and raises if it is unavailable.
    """

    def __init__(
        self,
        items: Sequence,
        content_mode: ContentMode = ContentMode.FC_PC,
        page_weight: float = 1.0,
        form_weight: float = 1.0,
        use_numpy: Optional[bool] = None,
    ) -> None:
        if use_numpy is None:
            use_numpy = HAVE_NUMPY
        elif use_numpy and not HAVE_NUMPY:
            raise RuntimeError("NumPy/SciPy fast path requested but unavailable")
        self.items = list(items)
        self.content_mode = content_mode
        self.page_weight = page_weight
        self.form_weight = form_weight
        self.use_numpy = use_numpy
        self.stats = EngineStats(backend="numpy" if use_numpy else "python")

        started = time.perf_counter()
        self._spaces: Dict[str, _Space] = {}
        # A space with zero Equation-3 weight contributes nothing and is
        # not compiled at all (matches the scalar formula exactly).
        if content_mode.uses_pc and (
            content_mode is ContentMode.PC or page_weight > 0
        ):
            self._spaces["pc"] = _Space()
        if content_mode.uses_fc and (
            content_mode is ContentMode.FC or form_weight > 0
        ):
            self._spaces["fc"] = _Space()
        for item in self.items:
            for name, space in self._spaces.items():
                space.add_row(getattr(item, name))
        self._pair_cache: Dict[Tuple[int, int], float] = {}
        self.stats.build_seconds = time.perf_counter() - started
        self.stats.n_pages = len(self.items)
        self.stats.n_terms = sum(
            len(space.vocab) for space in self._spaces.values()
        )

    # ----------------------------------------------------------------
    # Introspection.
    # ----------------------------------------------------------------

    @classmethod
    def from_config(cls, items: Sequence, config,
                    use_numpy: Optional[bool] = None) -> "SimilarityEngine":
        """Build an engine matching a :class:`~repro.core.config.CAFCConfig`."""
        return cls(
            items,
            content_mode=config.content_mode,
            page_weight=config.page_weight,
            form_weight=config.form_weight,
            use_numpy=use_numpy,
        )

    @property
    def n_pages(self) -> int:
        return len(self.items)

    @property
    def n_terms(self) -> int:
        return self.stats.n_terms

    @property
    def space_names(self) -> Tuple[str, ...]:
        return tuple(self._spaces)

    def space(self, name: str) -> _Space:
        return self._spaces[name]

    # ----------------------------------------------------------------
    # Combining per-space cosines — the literal Equation-3 expression.
    # ----------------------------------------------------------------

    def _combine(self, pc: float, fc: float) -> float:
        mode = self.content_mode
        if mode is ContentMode.PC:
            return pc
        if mode is ContentMode.FC:
            return fc
        return (self.page_weight * pc + self.form_weight * fc) / (
            self.page_weight + self.form_weight
        )

    def _space_value(self, per_space: Dict[str, float]) -> float:
        return self._combine(per_space.get("pc", 0.0), per_space.get("fc", 0.0))

    # ----------------------------------------------------------------
    # Single pairs (memoized).
    # ----------------------------------------------------------------

    def similarity(self, i: int, j: int) -> float:
        """Equation-3 similarity between compiled items ``i`` and ``j``."""
        key = (i, j) if i <= j else (j, i)
        cached = self._pair_cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        per_space: Dict[str, float] = {}
        for name, space in self._spaces.items():
            if i == j:
                per_space[name] = space.self_cosine(i)
                continue
            ids_i, nrm_i = space.ids[i], space.nrm[i]
            row_j = space.row_map(j)
            total = 0.0
            get = row_j.get
            for term_id, weight in zip(ids_i, nrm_i):
                other = get(term_id)
                if other is not None:
                    total += weight * other
            per_space[name] = total
        value = self._space_value(per_space)
        self._pair_cache[key] = value
        self.stats.comparisons += 1
        return value

    # ----------------------------------------------------------------
    # Batched shapes.
    # ----------------------------------------------------------------

    def pairwise(self, indices: Optional[Sequence[int]] = None):
        """The full symmetric similarity matrix over the compiled items.

        Returns a list of row lists on the pure-Python path, an ndarray
        on the fast path.  ``indices`` restricts to a sub-collection
        (rows/columns follow the given order).
        """
        n = len(self.items)
        self.stats.comparisons += n * (n - 1) // 2
        if not self._spaces:
            zeros = [[0.0] * n for _ in range(n)]
            return _np.asarray(zeros) if self.use_numpy else zeros
        if self.use_numpy:
            total = None
            for name, space in self._spaces.items():
                matrix = space.pairwise_numpy()
                if self.content_mode is ContentMode.FC_PC:
                    weight = (
                        self.page_weight if name == "pc" else self.form_weight
                    )
                    matrix = matrix * weight
                total = matrix if total is None else total + matrix
            if self.content_mode is ContentMode.FC_PC:
                total = total / (self.page_weight + self.form_weight)
            if indices is not None:
                index_array = _np.asarray(list(indices))
                total = total[_np.ix_(index_array, index_array)]
            return total

        per_space = {
            name: space.pairwise_upper()
            for name, space in self._spaces.items()
        }
        if len(per_space) == 1 and self.content_mode is not ContentMode.FC_PC:
            combined = next(iter(per_space.values()))
        else:
            # The literal Equation-3 expression, hoisted out of _combine
            # so the whole matrix combines in C-speed comprehensions.
            # Only the upper triangle is combined (the lower is mirrored
            # afterwards), in place over the PC matrix.
            pc_matrix = per_space.get("pc")
            fc_matrix = per_space.get("fc")
            zero_row = [0.0] * n
            pw = self.page_weight
            fw = self.form_weight
            scale = pw + fw
            combined = (
                pc_matrix if pc_matrix is not None
                else [[0.0] * n for _ in range(n)]
            )
            for i in range(n):
                row = combined[i]
                other = fc_matrix[i] if fc_matrix is not None else zero_row
                row[i + 1:] = [
                    (pw * p + fw * f) / scale
                    for p, f in zip(row[i + 1:], other[i + 1:])
                ]
        # One pass fills the diagonal and mirrors the upper triangle.
        pc_space = self._spaces.get("pc")
        fc_space = self._spaces.get("fc")
        for i in range(n):
            row = combined[i]
            row[i] = self._combine(
                pc_space.self_cosine(i) if pc_space is not None else 0.0,
                fc_space.self_cosine(i) if fc_space is not None else 0.0,
            )
            for j in range(i + 1, n):
                combined[j][i] = row[j]
        if indices is not None:
            chosen = list(indices)
            combined = [[combined[i][j] for j in chosen] for i in chosen]
        return combined

    def to_centroids(
        self, assignments: Sequence[int], k: Optional[int] = None
    ) -> CompiledCentroids:
        """Equation-4 centroids per cluster, straight from compiled rows.

        ``assignments[i]`` is the cluster of item ``i``; clusters with no
        members come back empty (callers wanting k-means' keep-previous
        semantics handle that, as :meth:`kmeans` does).
        """
        if k is None:
            k = (max(assignments) + 1) if len(assignments) else 0
        centroids = CompiledCentroids(self, k)
        counts = [0] * k
        for cluster in assignments:
            counts[cluster] += 1
        for name, space in self._spaces.items():
            sums: List[Dict[int, float]] = [{} for _ in range(k)]
            for row, cluster in enumerate(assignments):
                target = sums[cluster]
                for term_id, weight in zip(space.ids[row], space.raw[row]):
                    target[term_id] = target.get(term_id, 0.0) + weight
            for cluster in range(k):
                if counts[cluster] == 0:
                    continue
                inv = 1.0 / counts[cluster]
                centroids.set_raw(
                    name,
                    cluster,
                    {i: w * inv for i, w in sums[cluster].items()},
                )
        return centroids

    def compile_centroids(
        self, pairs: Sequence
    ) -> CompiledCentroids:
        """Compile external (PC, FC) pairs — e.g. hub-cluster centroids —
        into the engine's id space for batched scoring."""
        centroids = CompiledCentroids(self, len(pairs))
        for name, space in self._spaces.items():
            for index, pair in enumerate(pairs):
                vector: SparseVector = getattr(pair, name)
                norm = vector.norm()
                centroids.norms[name][index] = norm
                centroids.nrm[name][index] = space.compile_external(vector)
                vocab = space.vocab
                centroids.raw[name][index] = {
                    vocab[term]: weight
                    for term, weight in vector.items()
                    if term in vocab
                }
        return centroids

    def page_centroid_matrix(self, centroids) -> List[List[float]]:
        """Similarity of every compiled item against every centroid.

        ``centroids`` is a :class:`CompiledCentroids` or a sequence of
        (PC, FC) pairs, which is compiled on the fly.  Returns rows =
        items, columns = centroids (a list of row lists; the fast path
        also returns nested lists so callers need no NumPy).
        """
        if not isinstance(centroids, CompiledCentroids):
            centroids = self.compile_centroids(centroids)
        n = len(self.items)
        k = len(centroids)
        self.stats.comparisons += n * k
        columns: Dict[str, List[List[float]]] = {}
        for name, space in self._spaces.items():
            space_columns = []
            for index in range(k):
                space_columns.append(
                    space.score_column(centroids.nrm[name][index], n)
                )
            columns[name] = space_columns
        pc_columns = columns.get("pc")
        fc_columns = columns.get("fc")
        matrix: List[List[float]] = []
        for row in range(n):
            matrix.append(
                [
                    self._combine(
                        pc_columns[index][row] if pc_columns else 0.0,
                        fc_columns[index][row] if fc_columns else 0.0,
                    )
                    for index in range(k)
                ]
            )
        return matrix

    def topk(self, query, n: int = 3) -> List[Tuple[int, float]]:
        """The ``n`` compiled items most similar to ``query``.

        ``query`` is anything with ``.pc`` / ``.fc`` vectors.  Items with
        zero (or negative) similarity are omitted; ties break toward the
        lower index, matching the explorer's historical ordering.
        """
        total = len(self.items)
        self.stats.comparisons += total
        per_space: Dict[str, List[float]] = {}
        for name, space in self._spaces.items():
            compiled = space.compile_external(getattr(query, name))
            per_space[name] = space.score_column(compiled, total)
        pc_scores = per_space.get("pc")
        fc_scores = per_space.get("fc")
        scored = []
        for index in range(total):
            value = self._combine(
                pc_scores[index] if pc_scores else 0.0,
                fc_scores[index] if fc_scores else 0.0,
            )
            if value > 0.0:
                scored.append((index, value))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:n]

    # ----------------------------------------------------------------
    # Batched k-means (Algorithm 1's loop).
    # ----------------------------------------------------------------

    def kmeans(
        self,
        initial_centroids: Sequence,
        stop_fraction: float = 0.1,
        max_iterations: int = 50,
    ):
        """Run k-means over the compiled items from the given seeds.

        Semantically identical to :func:`repro.clustering.kmeans.kmeans`
        driven by :class:`~repro.core.similarity.FormPageSimilarity`:
        same assignment tie-breaking (stability toward the previous
        cluster, then the lowest index), same keep-previous-centroid
        behaviour for emptied clusters, same sub-10%-moved stopping
        rule.  Returns the same :class:`~repro.clustering.kmeans.KMeansResult`.
        """
        from repro.clustering.kmeans import KMeansResult
        from repro.clustering.types import Clustering

        if not initial_centroids:
            raise ValueError("kmeans requires at least one initial centroid")
        k = len(initial_centroids)
        n = len(self.items)
        if n == 0:
            return KMeansResult(
                Clustering([[] for _ in range(k)]),
                list(initial_centroids),
                iterations=0,
                converged=True,
            )

        current = self.compile_centroids(initial_centroids)
        # Per-cluster materialized centroid: starts at the seeds, updated
        # whenever the cluster is non-empty (mirrors the generic engine).
        final_pairs: List = list(initial_centroids)
        assignment = self._assign(current, previous=None)
        converged = False
        iterations = 0

        for iterations in range(1, max_iterations + 1):
            updated = self.to_centroids(assignment, k)
            counts = [0] * k
            for cluster in assignment:
                counts[cluster] += 1
            for cluster in range(k):
                if counts[cluster]:
                    for name in self.space_names:
                        current.raw[name][cluster] = updated.raw[name][cluster]
                        current.nrm[name][cluster] = updated.nrm[name][cluster]
                        current.norms[name][cluster] = updated.norms[name][cluster]
                    final_pairs[cluster] = None  # materialize lazily below

            new_assignment = self._assign(current, previous=assignment)
            moved = sum(
                1 for old, new in zip(assignment, new_assignment) if old != new
            )
            assignment = new_assignment
            if moved <= stop_fraction * n and (stop_fraction > 0 or moved == 0):
                converged = True
                break

        clusters: List[List[int]] = [[] for _ in range(k)]
        for point, cluster in enumerate(assignment):
            clusters[cluster].append(point)
        for cluster in range(k):
            if final_pairs[cluster] is None:
                final_pairs[cluster] = current.vector_pair(cluster)
        return KMeansResult(
            Clustering(clusters), final_pairs, iterations, converged
        )

    def _assign(
        self, centroids: CompiledCentroids, previous: Optional[List[int]]
    ) -> List[int]:
        matrix = self.page_centroid_matrix(centroids)
        k = len(centroids)
        assignment: List[int] = []
        for index, row in enumerate(matrix):
            best_cluster = 0
            best_similarity = float("-inf")
            prev_cluster = previous[index] if previous is not None else -1
            for cluster in range(k):
                score = row[cluster]
                if score > best_similarity:
                    best_similarity = score
                    best_cluster = cluster
                elif score == best_similarity and cluster == prev_cluster:
                    best_cluster = cluster
            assignment.append(best_cluster)
        return assignment


__all__ = [
    "HAVE_NUMPY",
    "EngineStats",
    "CompiledCentroids",
    "SimilarityEngine",
]
