"""Hub clusters: sets of form pages co-cited by a hub page (Section 3).

The hub-cluster pipeline, as the paper describes it:

1. Every backlink URL of every form page is a candidate hub.  Grouping
   form pages by shared backlink yields the raw *hub clusters* ("3,450
   distinct sets of pages that are co-cited by a hub").
2. Intra-site hubs — backlinks on the same site as the page they point to
   — "do not add much information about the topic" and are dropped.
3. Hub clusters below a minimum cardinality are pruned (Figure 3 sweeps
   this threshold; the headline configuration uses 8), which both removes
   unreliable evidence and shrinks the greedy-selection search space
   (3,450 -> 164 in the paper).

Each surviving hub cluster carries an Equation-4 centroid over its member
pages, ready for Algorithm 3's distance computations and for seeding
k-means.
"""

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.form_page import FormPage, VectorPair, centroid_of
from repro.resilience.flaky import ResilientSearchEngine
from repro.resilience.retry import CircuitBreaker, RetryPolicy
from repro.webgraph.urls import same_site


@dataclass
class HubCluster:
    """A set of form pages co-cited by one hub.

    ``members`` are indices into the form-page sequence the cluster was
    built from; ``centroid`` is the per-space mean vector (Equation 4).
    """

    hub_url: str
    members: List[int]
    centroid: VectorPair

    @property
    def cardinality(self) -> int:
        return len(self.members)

    def member_labels(self, pages: Sequence[FormPage]) -> List[str]:
        """Gold labels of the member pages (evaluation only)."""
        return [pages[i].label or "?" for i in self.members]

    def is_homogeneous(self, pages: Sequence[FormPage]) -> bool:
        """True when every member page shares one gold label."""
        labels = {pages[i].label for i in self.members}
        return len(labels) == 1


def group_by_hub(
    pages: Sequence[FormPage],
    drop_intra_site: bool = True,
) -> Dict[str, FrozenSet[int]]:
    """Group form-page indices by shared backlink URL.

    Returns hub URL -> co-cited page-index set.  With ``drop_intra_site``
    (the paper's behaviour) a backlink is ignored for a page on the same
    site, so purely navigational hubs never form clusters.
    """
    co_cited: Dict[str, set] = {}
    for index, page in enumerate(pages):
        for backlink in page.backlinks:
            if drop_intra_site and same_site(backlink, page.url):
                continue
            co_cited.setdefault(backlink, set()).add(index)
    return {hub: frozenset(members) for hub, members in co_cited.items()}


def build_hub_clusters(
    pages: Sequence[FormPage],
    min_cardinality: int = 1,
    drop_intra_site: bool = True,
    deduplicate: bool = True,
) -> List[HubCluster]:
    """Build hub clusters over ``pages`` (steps 1-3 above).

    Parameters
    ----------
    pages:
        The vectorized form pages (backlinks included).
    min_cardinality:
        Keep only clusters with at least this many member pages.
    drop_intra_site:
        Ignore backlinks from the page's own site.
    deduplicate:
        Distinct hubs frequently co-cite the *same* page set (mirrored
        directory pages).  Deduplicating by member set keeps the greedy
        selection from wasting picks on identical centroids.  The count of
        *distinct sets* is what the paper reports (3,450).

    Returns
    -------
    list of HubCluster, largest first (ties broken by hub URL for
    determinism).
    """
    grouped = group_by_hub(pages, drop_intra_site=drop_intra_site)

    qualifying: List[tuple] = []
    seen_member_sets: set = set()
    for hub_url in sorted(grouped):
        members = grouped[hub_url]
        if len(members) < min_cardinality:
            continue
        if deduplicate:
            if members in seen_member_sets:
                continue
            seen_member_sets.add(members)
        qualifying.append((hub_url, members))

    clusters = [
        HubCluster(
            hub_url=hub_url,
            members=sorted(members),
            centroid=centroid_of([pages[i] for i in members]),
        )
        for hub_url, members in qualifying
    ]
    clusters.sort(key=lambda c: (-c.cardinality, c.hub_url))
    return clusters


def backlink_coverage(pages: Sequence[FormPage]) -> float:
    """Fraction of pages with at least one backlink — the paper's
    harvest-quality number (they saw ~85% from AltaVista; a collapse
    toward 0 means hub evidence is gone and CAFC-CH seeding should
    yield to CAFC-C's random seeding).  Returns 0.0 for no pages."""
    if not pages:
        return 0.0
    covered = sum(1 for page in pages if page.backlinks)
    return covered / len(pages)


def harvest_hub_evidence(
    engine,
    requests: Sequence[Tuple[str, str]],
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
) -> Tuple[Dict[str, List[str]], "ResilientSearchEngine"]:
    """Harvest backlinks for many form pages through the resilient
    wrapper — the retry/backoff face of the Section 3.1 seam.

    ``requests`` is ``(form_page_url, site_root_url)`` pairs;
    transient/timeout/rate-limit failures are retried per ``policy``
    (defaults apply when omitted), a shared ``breaker`` stops hammering
    a downed engine, and pages whose queries still fail degrade to an
    empty backlink list — never an exception.  Returns the per-URL
    backlinks plus the wrapper itself (its ``report`` says how much
    degradation happened).
    """
    resilient = (
        engine
        if isinstance(engine, ResilientSearchEngine)
        else ResilientSearchEngine(engine, policy=policy, breaker=breaker)
    )
    harvested: Dict[str, List[str]] = {}
    for url, root_url in requests:
        harvested[url] = resilient.harvest_backlinks(url, root_url)
    return harvested, resilient


def homogeneity_rate(
    clusters: Sequence[HubCluster], pages: Sequence[FormPage]
) -> float:
    """Fraction of hub clusters whose members share one gold label.

    The paper reports 69% over its 3,450 raw clusters (Section 3.1).
    Returns 0.0 for an empty cluster list.
    """
    if not clusters:
        return 0.0
    homogeneous = sum(1 for c in clusters if c.is_homogeneous(pages))
    return homogeneous / len(clusters)
