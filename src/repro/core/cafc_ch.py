"""CAFC-CH — Algorithm 2: hub-seeded content clustering.

The two-phase composition that is the paper's key idea (Section 3):

1. **Hub phase** — build hub clusters from backlinks, prune small ones,
   and greedily select the ``k`` most mutually distant (Algorithm 3).
2. **Content phase** — run CAFC-C's k-means *from those hub-cluster
   centroids* instead of random seeds; content similarity then reinforces
   or negates the hub-induced similarity.

Hub evidence is used only for seeding — after the first assignment pass
every page (including the hub-cluster members) is free to move, which is
how content "negates" a bad hub grouping.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.clustering.kmeans import KMeansResult
from repro.core.cafc_c import cafc_c
from repro.core.config import CAFCConfig
from repro.core.form_page import FormPage
from repro.core.hubs import HubCluster, build_hub_clusters
from repro.core.seeds import select_hub_clusters
from repro.core.similarity import BackendSpec, resolve_backend


@dataclass
class CAFCCHResult:
    """CAFC-CH output: the k-means result plus the hub phase's artifacts
    (useful for analysis and the hub-statistics experiments)."""

    kmeans: KMeansResult
    hub_clusters: List[HubCluster]
    selected_seeds: List[HubCluster]

    @property
    def clustering(self):
        return self.kmeans.clustering


def cafc_ch(
    pages: Sequence[FormPage],
    config: Optional[CAFCConfig] = None,
    hub_clusters: Optional[List[HubCluster]] = None,
    backend: BackendSpec = None,
) -> CAFCCHResult:
    """Run CAFC-CH (Algorithm 2).

    Parameters
    ----------
    pages:
        Vectorized form pages, backlinks included.
    config:
        Run configuration (notably ``min_hub_cardinality``, Figure 3's
        sweep variable).
    hub_clusters:
        Pre-built hub clusters (already pruned); built from ``pages`` when
        omitted.  Passing them in lets experiments reuse one hub harvest
        across many configurations.
    backend:
        Similarity backend for both phases (the Algorithm-3 distance
        matrix and the k-means loop): ``None`` (use ``config.backend``),
        a backend name, or a backend instance.

    Raises
    ------
    ValueError
        When fewer than ``k`` hub clusters survive pruning.  Callers that
        want graceful degradation should catch this and fall back to
        :func:`repro.core.cafc_c.cafc_c`.
    """
    config = config or CAFCConfig()
    if hub_clusters is None:
        hub_clusters = build_hub_clusters(
            pages, min_cardinality=config.min_hub_cardinality
        )
    resolved = resolve_backend(backend, config)
    selected = select_hub_clusters(hub_clusters, config.k, backend=resolved)
    seed_centroids = [cluster.centroid for cluster in selected]
    result = cafc_c(pages, config, seed_centroids=seed_centroids, backend=resolved)
    return CAFCCHResult(kmeans=result, hub_clusters=hub_clusters, selected_seeds=selected)
