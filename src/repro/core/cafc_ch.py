"""CAFC-CH — Algorithm 2: hub-seeded content clustering.

The two-phase composition that is the paper's key idea (Section 3):

1. **Hub phase** — build hub clusters from backlinks, prune small ones,
   and greedily select the ``k`` most mutually distant (Algorithm 3).
2. **Content phase** — run CAFC-C's k-means *from those hub-cluster
   centroids* instead of random seeds; content similarity then reinforces
   or negates the hub-induced similarity.

Hub evidence is used only for seeding — after the first assignment pass
every page (including the hub-cluster members) is free to move, which is
how content "negates" a bad hub grouping.

Hub evidence is also the pipeline's flakiest input (it comes from the
``link:`` APIs the paper found incomplete), so this module owns the
graceful-degradation step: with ``fallback=True``, a run whose backlink
coverage collapsed below usability degrades to CAFC-C's random seeding
— the paper's own ordering of the algorithms — with a structured
warning and a ``degraded_fallbacks`` counter bump instead of an
exception.
"""

import logging
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.clustering.kmeans import KMeansResult
from repro.core.cafc_c import cafc_c
from repro.core.config import CAFCConfig
from repro.core.form_page import FormPage
from repro.core.hubs import HubCluster, backlink_coverage, build_hub_clusters
from repro.core.seeds import select_hub_clusters
from repro.core.similarity import BackendSpec, resolve_backend
from repro.resilience.stats import STATS

logger = logging.getLogger("repro.resilience")


@dataclass
class CAFCCHResult:
    """CAFC-CH output: the k-means result plus the hub phase's artifacts
    (useful for analysis and the hub-statistics experiments).

    ``degraded`` is True when the run fell back to CAFC-C random
    seeding because too few hub clusters survived (only possible with
    ``fallback=True``); ``selected_seeds`` is then empty."""

    kmeans: KMeansResult
    hub_clusters: List[HubCluster]
    selected_seeds: List[HubCluster]
    degraded: bool = False
    degraded_reason: str = ""

    @property
    def clustering(self):
        return self.kmeans.clustering


def cafc_ch(
    pages: Sequence[FormPage],
    config: Optional[CAFCConfig] = None,
    hub_clusters: Optional[List[HubCluster]] = None,
    backend: BackendSpec = None,
    fallback: bool = False,
) -> CAFCCHResult:
    """Run CAFC-CH (Algorithm 2).

    Parameters
    ----------
    pages:
        Vectorized form pages, backlinks included.
    config:
        Run configuration (notably ``min_hub_cardinality``, Figure 3's
        sweep variable).
    hub_clusters:
        Pre-built hub clusters (already pruned); built from ``pages`` when
        omitted.  Passing them in lets experiments reuse one hub harvest
        across many configurations.
    backend:
        Similarity backend for both phases (the Algorithm-3 distance
        matrix and the k-means loop): ``None`` (use ``config.backend``),
        a backend name, or a backend instance.
    fallback:
        When True and fewer than ``k`` hub clusters survive pruning
        (backlink coverage collapsed, aggressive pruning, tiny corpus),
        degrade to CAFC-C random seeding instead of raising: the result
        carries ``degraded=True`` plus the reason, a structured warning
        is logged, and the process-wide ``degraded_fallbacks`` counter
        (surfaced as a ``/metrics`` gauge) is bumped.

    Raises
    ------
    ValueError
        Without ``fallback``, when fewer than ``k`` hub clusters survive
        pruning.  Callers that want graceful degradation should pass
        ``fallback=True`` (or catch this and run
        :func:`repro.core.cafc_c.cafc_c` themselves).
    """
    config = config or CAFCConfig()
    if hub_clusters is None:
        hub_clusters = build_hub_clusters(
            pages, min_cardinality=config.min_hub_cardinality
        )
    resolved = resolve_backend(backend, config)
    try:
        selected = select_hub_clusters(hub_clusters, config.k, backend=resolved)
    except ValueError as exc:
        if not fallback:
            raise
        coverage = backlink_coverage(pages)
        reason = (
            f"{len(hub_clusters)} hub cluster(s) for k={config.k} "
            f"(backlink coverage {coverage:.0%}); "
            "degrading to CAFC-C random seeding"
        )
        logger.warning(
            "cafc-ch degraded: %s", reason,
            extra={
                "event": "cafc_ch_degraded",
                "n_hub_clusters": len(hub_clusters),
                "k": config.k,
                "backlink_coverage": coverage,
            },
        )
        STATS.inc("degraded_fallbacks")
        result = cafc_c(pages, config, backend=resolved)
        return CAFCCHResult(
            kmeans=result,
            hub_clusters=hub_clusters,
            selected_seeds=[],
            degraded=True,
            degraded_reason=f"{exc}",
        )
    seed_centroids = [cluster.centroid for cluster in selected]
    result = cafc_c(pages, config, seed_centroids=seed_centroids, backend=resolved)
    return CAFCCHResult(kmeans=result, hub_clusters=hub_clusters, selected_seeds=selected)
