"""CAFC-C — Algorithm 1: k-means over form pages.

``cafc_c(pages, config)`` runs the paper's content-based clustering:

* seeds: ``k`` randomly selected form pages (their own vectors serve as
  the initial centroids), or caller-provided seed centroids (this is the
  hook CAFC-CH and the HAC-seeding experiment use — Algorithm 2 line 3
  literally calls "CAFC-C(..., hubClusters)");
* assignment: Equation-3 similarity between a page and each centroid;
* update: Equation-4 per-space mean;
* stop: fewer than ``stop_fraction`` of pages moved (paper: 10%).

The similarity arithmetic is served by a pluggable backend (see
:mod:`repro.core.similarity`): the default ``"auto"`` routes the
assignment loop through the compiled
:class:`~repro.core.simengine.SimilarityEngine`; ``backend="naive"``
keeps the historical per-pair path.  Both produce the same clustering.
"""

import random
from typing import List, Optional, Sequence

from repro.clustering.kmeans import KMeansResult, kmeans
from repro.core.config import CAFCConfig
from repro.core.form_page import FormPage, VectorPair, centroid_of
from repro.core.similarity import (
    BackendSpec,
    EngineBackend,
    FormPageSimilarity,
    resolve_backend,
)


def similarity_for(config: CAFCConfig) -> FormPageSimilarity:
    """The Equation-3 similarity implied by a config."""
    return FormPageSimilarity(
        content_mode=config.content_mode,
        page_weight=config.page_weight,
        form_weight=config.form_weight,
    )


def random_seed_centroids(
    pages: Sequence[FormPage], k: int, rng: random.Random
) -> List[VectorPair]:
    """Algorithm 1 line 2: centroids of ``k`` randomly chosen form pages.

    A seed cluster of size one has the page's own vectors as its centroid.
    """
    if k > len(pages):
        raise ValueError(f"cannot seed {k} clusters from {len(pages)} pages")
    indices = rng.sample(range(len(pages)), k)
    return [VectorPair.of(pages[i]) for i in indices]


def cafc_c(
    pages: Sequence[FormPage],
    config: Optional[CAFCConfig] = None,
    seed_centroids: Optional[Sequence[VectorPair]] = None,
    backend: BackendSpec = None,
) -> KMeansResult:
    """Run CAFC-C (Algorithm 1).

    Parameters
    ----------
    pages:
        Vectorized form pages.
    config:
        Run configuration; defaults to the paper's setup.
    seed_centroids:
        Optional externally computed seeds (hub clusters for CAFC-CH,
        HAC groups for the Section 4.3 experiment).  When omitted, ``k``
        random pages seed the run, drawn from ``config.seed``'s RNG.
    backend:
        Similarity backend: ``None`` (use ``config.backend``), a name
        (``"auto"`` / ``"engine"`` / ``"naive"``), or a
        :class:`~repro.core.similarity.SimilarityBackend` instance.

    Returns
    -------
    KMeansResult whose clustering indexes into ``pages``.
    """
    config = config or CAFCConfig()
    resolved = resolve_backend(backend, config)
    if seed_centroids is None:
        rng = random.Random(config.seed)
        seed_centroids = random_seed_centroids(pages, config.k, rng)
    elif len(seed_centroids) != config.k:
        raise ValueError(
            f"got {len(seed_centroids)} seed centroids for k={config.k}"
        )

    if isinstance(resolved, EngineBackend) and pages:
        engine = resolved.engine_for(list(pages))
        result = engine.kmeans(
            list(seed_centroids),
            stop_fraction=config.stop_fraction,
            max_iterations=config.max_iterations,
        )
        resolved.collect(engine)
        return result

    return kmeans(
        points=list(pages),
        initial_centroids=list(seed_centroids),
        similarity=resolved.pair,
        make_centroid=centroid_of,
        stop_fraction=config.stop_fraction,
        max_iterations=config.max_iterations,
    )
