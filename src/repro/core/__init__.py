"""CAFC — Context-Aware Form Clustering (the paper's contribution).

Public API
----------

* :class:`repro.core.config.CAFCConfig` — all tunables in one place
  (k, content mode, C1/C2, LOC weights, hub min-cardinality, ...).
* :class:`repro.core.form_page.RawFormPage` /
  :class:`repro.core.form_page.FormPage` — the form-page model
  ``FP(Backlink, PC, FC)`` of Sections 2.1 and 3.2.
* :class:`repro.core.vectorizer.FormPageVectorizer` — Equation 1 vectors.
* :class:`repro.core.similarity.FormPageSimilarity` — Equation 3 (scalar);
  :class:`repro.core.similarity.SimilarityBackend` with
  :class:`~repro.core.similarity.NaiveBackend` /
  :class:`~repro.core.similarity.EngineBackend` — the batched backends.
* :class:`repro.core.simengine.SimilarityEngine` — the compiled sparse
  engine behind ``EngineBackend`` (with :class:`~repro.core.simengine.EngineStats`
  instrumentation).
* :func:`repro.core.cafc_c.cafc_c` — Algorithm 1.
* :func:`repro.core.cafc_ch.cafc_ch` — Algorithm 2 (+ Algorithm 3 via
  :mod:`repro.core.hubs` and :mod:`repro.core.seeds`).
* :class:`repro.core.pipeline.CAFCPipeline` — one-call API from raw HTML
  pages (plus backlinks) to labelled clusters.
"""

from repro.core.cafc_c import cafc_c
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig, ContentMode
from repro.core.form_page import FormPage, RawFormPage
from repro.core.hubs import HubCluster, build_hub_clusters
from repro.core.incremental import IncrementalOrganizer
from repro.core.pipeline import CAFCPipeline, CAFCResult
from repro.core.seeds import select_hub_clusters
from repro.core.simengine import HAVE_NUMPY, EngineStats, SimilarityEngine
from repro.core.similarity import (
    EngineBackend,
    FormPageSimilarity,
    NaiveBackend,
    SimilarityBackend,
    form_page_similarity,
    resolve_backend,
)
from repro.core.vectorizer import FormPageVectorizer

__all__ = [
    "cafc_c",
    "cafc_ch",
    "CAFCConfig",
    "ContentMode",
    "FormPage",
    "RawFormPage",
    "HubCluster",
    "build_hub_clusters",
    "IncrementalOrganizer",
    "CAFCPipeline",
    "CAFCResult",
    "select_hub_clusters",
    "FormPageSimilarity",
    "form_page_similarity",
    "SimilarityBackend",
    "NaiveBackend",
    "EngineBackend",
    "resolve_backend",
    "SimilarityEngine",
    "EngineStats",
    "HAVE_NUMPY",
    "FormPageVectorizer",
]
