"""High-level CAFC pipeline: raw HTML pages in, organized clusters out.

:class:`CAFCPipeline` wires the whole stack together:

    raw form pages (URL + HTML + backlinks)
      -> FormPageVectorizer      (Equation 1 vectors)
      -> CAFC-CH or CAFC-C       (Algorithms 1-3)
      -> CAFCResult              (clusters + descriptive labels)

plus the Section-5 extension: classifying *new* form pages against the
built clusters ("once the clusters are built and properly labeled ...
they can be used as the basis to automatically classify new sources").
"""

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.cafc_c import cafc_c
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.core.form_page import FormPage, RawFormPage, VectorPair, centroid_of
from repro.core.similarity import BackendSpec, SimilarityBackend, resolve_backend
from repro.core.simengine import EngineStats
from repro.core.vectorizer import FormPageVectorizer


@dataclass
class OrganizedCluster:
    """One output cluster: its member pages, centroid, and a descriptive
    label derived from the centroid's heaviest terms."""

    pages: List[FormPage]
    centroid: VectorPair
    top_terms: List[str]

    @property
    def size(self) -> int:
        return len(self.pages)

    @property
    def urls(self) -> List[str]:
        return [page.url for page in self.pages]


@dataclass
class CAFCResult:
    """Pipeline output: the organized clusters plus bookkeeping."""

    clusters: List[OrganizedCluster]
    algorithm: str
    iterations: int
    used_hub_seeding: bool
    # Only populated by CAFC-CH runs:
    n_hub_clusters: int = 0
    seed_hub_urls: List[str] = field(default_factory=list)
    # True when a CAFC-CH run gracefully degraded to CAFC-C random
    # seeding (too few hub clusters — backlink coverage collapsed).
    degraded: bool = False
    # Similarity-backend instrumentation for the run (``--profile``);
    # None for results loaded from disk or built without a backend.
    engine_stats: Optional[EngineStats] = None

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def n_pages(self) -> int:
        return sum(cluster.size for cluster in self.clusters)


def _label_terms(centroid: VectorPair, n_terms: int) -> List[str]:
    """Descriptive terms for a cluster: heaviest centroid terms, with the
    two spaces interleaved (PC first — page vocabulary reads better)."""
    pc_terms = [term for term, _ in centroid.pc.top_terms(n_terms)]
    fc_terms = [term for term, _ in centroid.fc.top_terms(n_terms)]
    merged: List[str] = []
    for pc_term, fc_term in zip(pc_terms, fc_terms):
        for term in (pc_term, fc_term):
            if term not in merged:
                merged.append(term)
    return merged[:n_terms] if merged else pc_terms[:n_terms]


class CAFCPipeline:
    """One-call interface to CAFC.

    Usage::

        pipeline = CAFCPipeline(CAFCConfig(k=8))
        result = pipeline.organize(raw_pages)           # CAFC-CH, with
                                                        # CAFC-C fallback
        for cluster in result.clusters:
            print(cluster.top_terms, cluster.size)

        domain = pipeline.classify(new_raw_page, result)
    """

    def __init__(
        self,
        config: Optional[CAFCConfig] = None,
        backend: BackendSpec = None,
    ) -> None:
        self.config = config or CAFCConfig()
        self.vectorizer = FormPageVectorizer(
            location_weights=self.config.location_weights,
            max_backlinks=self.config.max_backlinks,
            parallel=self.config.parallel,
            scheme=self.config.scheme,
        )
        self.backend: SimilarityBackend = resolve_backend(backend, self.config)

    # ----------------------------------------------------------------
    # Organizing.
    # ----------------------------------------------------------------

    def vectorize(self, raw_pages: Sequence[RawFormPage]) -> List[FormPage]:
        """Vectorize a collection (fits corpus IDF statistics)."""
        return self.vectorizer.fit_transform(raw_pages)

    def organize(
        self,
        raw_pages: Sequence[RawFormPage],
        algorithm: str = "cafc-ch",
        n_label_terms: int = 6,
    ) -> CAFCResult:
        """Cluster raw form pages into database-domain groups.

        ``algorithm`` is ``"cafc-ch"`` (default; falls back to CAFC-C when
        too few hub clusters survive pruning), ``"cafc-c"``, or ``"hac"``
        (content-only agglomerative clustering, the Table-2 alternative).
        """
        if algorithm not in ("cafc-ch", "cafc-c", "hac"):
            raise ValueError(f"unknown algorithm: {algorithm!r}")
        pages = self.vectorize(raw_pages)
        return self.organize_vectorized(pages, algorithm, n_label_terms)

    def organize_vectorized(
        self,
        pages: Sequence[FormPage],
        algorithm: str = "cafc-ch",
        n_label_terms: int = 6,
    ) -> CAFCResult:
        """Cluster already-vectorized form pages."""
        used_hubs = False
        degraded = False
        n_hub_clusters = 0
        seed_hub_urls: List[str] = []
        iterations = 0

        if algorithm == "cafc-ch":
            # Too few hub clusters (backlink coverage collapsed) degrades
            # to content-only CAFC-C inside cafc_ch — the paper's own
            # fallback ordering — with a structured warning and a
            # degraded_fallbacks counter bump, never an exception.
            ch_result = cafc_ch(
                pages, self.config, backend=self.backend, fallback=True
            )
            km_result = ch_result.kmeans
            n_hub_clusters = len(ch_result.hub_clusters)
            if ch_result.degraded:
                degraded = True
                algorithm = "cafc-c (hub fallback)"
            else:
                used_hubs = True
                seed_hub_urls = [seed.hub_url for seed in ch_result.selected_seeds]
            clustering = km_result.clustering
            iterations = km_result.iterations
        elif algorithm == "hac":
            from repro.clustering.hac import Linkage, hac
            from repro.vsm.batch import form_page_similarity_matrix

            matrix = form_page_similarity_matrix(
                pages,
                page_weight=self.config.page_weight,
                form_weight=self.config.form_weight,
                use_pc=self.config.content_mode.uses_pc,
                use_fc=self.config.content_mode.uses_fc,
            )
            hac_result = hac(
                matrix, n_clusters=min(self.config.k, len(pages)),
                linkage=Linkage.AVERAGE,
            )
            clustering = hac_result.clustering
            iterations = len(hac_result.merges)
        else:
            km_result = cafc_c(pages, self.config, backend=self.backend)
            clustering = km_result.clustering
            iterations = km_result.iterations

        clusters = []
        for members in clustering.compact().clusters:
            member_pages = [pages[i] for i in members]
            centroid = centroid_of(member_pages)
            clusters.append(
                OrganizedCluster(
                    pages=member_pages,
                    centroid=centroid,
                    top_terms=_label_terms(centroid, n_label_terms),
                )
            )
        clusters.sort(key=lambda c: -c.size)
        return CAFCResult(
            clusters=clusters,
            algorithm=algorithm,
            iterations=iterations,
            used_hub_seeding=used_hubs,
            n_hub_clusters=n_hub_clusters,
            seed_hub_urls=seed_hub_urls,
            degraded=degraded,
            engine_stats=self.backend.stats.snapshot(),
        )

    # ----------------------------------------------------------------
    # Classifying new pages (Section 5 extension).
    # ----------------------------------------------------------------

    def classify(self, raw_page: RawFormPage, result: CAFCResult) -> int:
        """Assign a new page to the most similar existing cluster.

        Returns the index of the winning cluster in ``result.clusters``.
        The page is vectorized against the frozen corpus statistics, so
        the pipeline must have organized a collection first.
        """
        if not result.clusters:
            raise ValueError("cannot classify against an empty result")
        page = self.vectorizer.transform_new(raw_page)
        scores = [
            self.backend.pair(page, cluster.centroid)
            for cluster in result.clusters
        ]
        return max(range(len(scores)), key=scores.__getitem__)
