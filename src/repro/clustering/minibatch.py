"""Mini-batch k-means over sparse (PC, FC) pairs — the streaming organizer's core.

Batch k-means (:mod:`repro.clustering.kmeans`) re-assigns *every* point
each iteration, which assumes the collection fits in memory and can be
walked repeatedly.  A stream cannot be walked twice.  This module
implements the Sculley (WWW 2010) mini-batch variant: points arrive in
small batches, each point updates only its winning centroid, and the
per-centroid learning rate ``eta = 1 / count`` decays so centroids
converge to the running mean of everything ever assigned to them.

Two representation tricks keep the update O(nnz(point)) instead of
O(nnz(centroid)):

* centroids are held as ``alpha * weights`` — a scalar multiplier over a
  mutable ``{term id: float}`` dict — so the decay ``(1 - eta) * c``
  touches one scalar, and only the incoming point's coordinates are
  written;
* cosine assignment is scale-invariant, so scoring ignores ``alpha``
  entirely and divides by an incrementally maintained sum of squares.

The module is deliberately ignorant of :mod:`repro.core`: points are
anything with ``.pc`` / ``.fc`` :class:`~repro.vsm.vector.SparseVector`
attributes (``FormPage`` and ``VectorPair`` both qualify), which keeps
the clustering package a generic substrate.
"""

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.vsm.vector import SparseVector

# Rescale the alpha-trick accumulator before the multiplier underflows.
_ALPHA_FLOOR = 1e-9


class _SpaceCentroid:
    """One feature space of a mini-batch centroid: ``alpha * weights``."""

    __slots__ = ("weights", "alpha", "sumsq")

    def __init__(self, vector: Optional[SparseVector] = None) -> None:
        if vector is None:
            self.weights: Dict[int, float] = {}
            self.sumsq = 0.0
        else:
            # Struct-of-arrays internals: interned ids + packed floats.
            self.weights = dict(zip(vector._ids, vector._vals))
            self.sumsq = sum(w * w for w in self.weights.values())
        self.alpha = 1.0

    def cosine(self, vector: SparseVector, vector_norm: float) -> float:
        """Cosine against the true centroid (``alpha`` cancels)."""
        if self.sumsq <= 0.0 or vector_norm == 0.0:
            return 0.0
        weights = self.weights
        dot = 0.0
        for tid, value in zip(vector._ids, vector._vals):
            hit = weights.get(tid)
            if hit is not None:
                dot += value * hit
        if dot == 0.0:
            return 0.0
        return dot / (math.sqrt(self.sumsq) * vector_norm)

    def blend(self, vector: SparseVector, eta: float) -> None:
        """``c <- (1 - eta) * c + eta * x`` in O(nnz(x))."""
        decay = 1.0 - eta
        if decay <= 0.0:
            # eta == 1: the centroid *becomes* the point (first assignment).
            self.weights = dict(zip(vector._ids, vector._vals))
            self.sumsq = sum(w * w for w in self.weights.values())
            self.alpha = 1.0
            return
        self.alpha *= decay
        self.sumsq *= decay * decay
        if self.alpha < _ALPHA_FLOOR:
            alpha = self.alpha
            self.weights = {
                tid: value * alpha for tid, value in self.weights.items()
            }
            self.sumsq = sum(w * w for w in self.weights.values())
            self.alpha = 1.0
        scale = eta / self.alpha
        weights = self.weights
        sumsq = self.sumsq
        for tid, value in zip(vector._ids, vector._vals):
            old = weights.get(tid, 0.0)
            new = old + value * scale
            weights[tid] = new
            sumsq += new * new - old * old
        self.sumsq = max(sumsq, 0.0)

    def to_vector(self) -> SparseVector:
        alpha = self.alpha
        return SparseVector._from_ids(
            (tid, value * alpha) for tid, value in self.weights.items()
        )


class MiniBatchKMeans:
    """Streaming centroid maintenance with Equation-3 assignment.

    ``seeds`` are the initial centroids as ``.pc`` / ``.fc`` holders;
    ``page_weight`` / ``form_weight`` are Equation 3's C1 / C2 and
    ``use_pc`` / ``use_fc`` the content-mode axis.  :meth:`partial_fit`
    consumes one mini-batch; :meth:`assign` scores without mutating
    (the final labeling pass).  Determinism: ties break toward the
    lowest centroid index, matching the batch engine's argmax.
    """

    def __init__(
        self,
        seeds: Sequence,
        page_weight: float = 1.0,
        form_weight: float = 1.0,
        use_pc: bool = True,
        use_fc: bool = True,
    ) -> None:
        if not seeds:
            raise ValueError("need at least one seed centroid")
        if not (use_pc or use_fc):
            raise ValueError("at least one feature space must be active")
        total = (page_weight if use_pc else 0.0) + (
            form_weight if use_fc else 0.0
        )
        if total <= 0.0:
            raise ValueError("active feature-space weights must be positive")
        self.page_weight = page_weight
        self.form_weight = form_weight
        self.use_pc = use_pc
        self.use_fc = use_fc
        self._scale = 1.0 / total
        self.pc: List[_SpaceCentroid] = [
            _SpaceCentroid(seed.pc) for seed in seeds
        ]
        self.fc: List[_SpaceCentroid] = [
            _SpaceCentroid(seed.fc) for seed in seeds
        ]
        self.counts: List[int] = [1] * len(self.pc)
        self.n_updates = 0

    def __len__(self) -> int:
        return len(self.counts)

    def similarity(self, point) -> List[float]:
        """Equation-3 score of ``point`` against every centroid."""
        pc = point.pc
        fc = point.fc
        pc_norm = getattr(point, "pc_norm", None)
        fc_norm = getattr(point, "fc_norm", None)
        if pc_norm is None:
            pc_norm = pc.norm()
        if fc_norm is None:
            fc_norm = fc.norm()
        scores: List[float] = []
        for index in range(len(self.counts)):
            score = 0.0
            if self.use_pc:
                score += self.page_weight * self.pc[index].cosine(pc, pc_norm)
            if self.use_fc:
                score += self.form_weight * self.fc[index].cosine(fc, fc_norm)
            scores.append(score * self._scale)
        return scores

    def assign(self, point) -> Tuple[int, float]:
        """Best centroid for ``point`` (no mutation); ties to lowest index."""
        scores = self.similarity(point)
        best = max(range(len(scores)), key=lambda i: (scores[i], -i))
        return best, scores[best]

    def partial_fit(self, batch: Sequence) -> List[int]:
        """Absorb one mini-batch (assign, then per-point centroid update).

        Assignment for the whole batch happens against the centroids as
        they stood at batch entry (the Sculley formulation: cache the
        centroid per point, then apply learning-rate updates), so the
        result is independent of intra-batch order effects on scoring.
        """
        assignments = [self.assign(point)[0] for point in batch]
        for point, index in zip(batch, assignments):
            self.counts[index] += 1
            eta = 1.0 / self.counts[index]
            if self.use_pc:
                self.pc[index].blend(point.pc, eta)
            if self.use_fc:
                self.fc[index].blend(point.fc, eta)
            self.n_updates += 1
        return assignments

    def centroid_pairs(self) -> List:
        """Materialize the centroids as :class:`~repro.core.form_page.
        VectorPair` objects (imported lazily — layering)."""
        from repro.core.form_page import VectorPair

        return [
            VectorPair(pc=self.pc[i].to_vector(), fc=self.fc[i].to_vector())
            for i in range(len(self.counts))
        ]

    def reseed(self, seeds: Sequence, keep_counts: bool = True) -> None:
        """Replace centroid coordinates (a re-weight event re-vectorized
        them) while optionally preserving the learning-rate schedule."""
        if len(seeds) != len(self.counts):
            raise ValueError("reseed must preserve the number of centroids")
        self.pc = [_SpaceCentroid(seed.pc) for seed in seeds]
        self.fc = [_SpaceCentroid(seed.fc) for seed in seeds]
        if not keep_counts:
            self.counts = [1] * len(self.counts)


class ReservoirSample:
    """Deterministic Algorithm-R reservoir over a stream.

    Keeps a uniform sample of at most ``capacity`` items using a seeded
    RNG, so two runs over the same stream retain the same members.  The
    streaming organizer re-clusters on this bounded set instead of full
    passes, and re-vectorizes it on re-weight events.
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self.items: List = []
        self.n_seen = 0
        self._rng = random.Random(f"repro.reservoir:{seed}")

    def __len__(self) -> int:
        return len(self.items)

    def offer(self, item) -> bool:
        """Consider one stream item; returns True when it was retained."""
        self.n_seen += 1
        if len(self.items) < self.capacity:
            self.items.append(item)
            return True
        slot = self._rng.randrange(self.n_seen)
        if slot < self.capacity:
            self.items[slot] = item
            return True
        return False

    def replace_all(self, items: Sequence) -> None:
        """Swap the retained items in place (re-vectorization on
        re-weight); membership and order are preserved."""
        if len(items) != len(self.items):
            raise ValueError("replace_all must preserve reservoir size")
        self.items = list(items)


__all__ = ["MiniBatchKMeans", "ReservoirSample"]
