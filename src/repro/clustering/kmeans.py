"""A generic k-means engine (Algorithm 1's clustering core).

The engine is parameterized over the point type:

* ``similarity(point, centroid) -> float`` — higher is closer;
* ``make_centroid(points) -> centroid`` — Equation 4 for form pages.

The paper's stopping criterion is unusual and matters for reproducing its
numbers: iteration stops "until fewer than 10% of the form pages move
across clusters" (Section 2.2), not on exact convergence.
"""

from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, Sequence, TypeVar

from repro.clustering.types import Clustering

Point = TypeVar("Point")
Centroid = TypeVar("Centroid")

SimilarityFn = Callable[[Point, Centroid], float]
CentroidFn = Callable[[Sequence[Point]], Centroid]


@dataclass
class KMeansResult(Generic[Centroid]):
    """Outcome of a k-means run."""

    clustering: Clustering
    centroids: List[Centroid]
    iterations: int
    converged: bool


def _assign(
    points: Sequence[Point],
    centroids: Sequence[Centroid],
    similarity: SimilarityFn,
    previous: Optional[List[int]],
) -> List[int]:
    """Assign each point to its most similar centroid.

    Ties are broken toward the point's previous cluster (stability), then
    toward the lowest centroid index (determinism).
    """
    assignment: List[int] = []
    for index, point in enumerate(points):
        best_cluster = 0
        best_similarity = float("-inf")
        prev_cluster = previous[index] if previous is not None else -1
        for cluster_index, centroid in enumerate(centroids):
            score = similarity(point, centroid)
            if score > best_similarity:
                best_similarity = score
                best_cluster = cluster_index
            elif score == best_similarity and cluster_index == prev_cluster:
                best_cluster = cluster_index
        assignment.append(best_cluster)
    return assignment


def kmeans(
    points: Sequence[Point],
    initial_centroids: Sequence[Centroid],
    similarity: SimilarityFn,
    make_centroid: CentroidFn,
    stop_fraction: float = 0.1,
    max_iterations: int = 50,
) -> KMeansResult:
    """Run k-means from the given initial centroids.

    Parameters
    ----------
    points:
        The objects to cluster.
    initial_centroids:
        Seed centroids; their count fixes ``k``.  (Seeding strategies live
        in :mod:`repro.clustering.seeding` and :mod:`repro.core.seeds`.)
    similarity:
        Point-to-centroid similarity; **higher is more similar**.
    make_centroid:
        Rebuilds a centroid from a cluster's member points.  Called only on
        non-empty clusters; an emptied cluster keeps its previous centroid
        so it can re-acquire points on the next pass.
    stop_fraction:
        Stop when the fraction of points that changed cluster in an
        iteration falls below this (paper: 10%).  Use 0 for exact
        convergence.
    max_iterations:
        Hard cap as a safety net against oscillation.

    Returns
    -------
    KMeansResult
        Final clustering (indices into ``points``), final centroids, number
        of iterations run, and whether the stop criterion was reached
        (as opposed to hitting ``max_iterations``).
    """
    if not initial_centroids:
        raise ValueError("kmeans requires at least one initial centroid")
    if not points:
        return KMeansResult(
            Clustering([[] for _ in initial_centroids]),
            list(initial_centroids),
            iterations=0,
            converged=True,
        )

    k = len(initial_centroids)
    centroids = list(initial_centroids)
    assignment = _assign(points, centroids, similarity, previous=None)
    n = len(points)
    converged = False
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        # Recompute centroids from current membership.
        members_of: List[List[int]] = [[] for _ in range(k)]
        for point_index, cluster_index in enumerate(assignment):
            members_of[cluster_index].append(point_index)
        for cluster_index in range(k):
            member_indices = members_of[cluster_index]
            if member_indices:
                centroids[cluster_index] = make_centroid(
                    [points[i] for i in member_indices]
                )

        new_assignment = _assign(points, centroids, similarity, previous=assignment)
        moved = sum(1 for old, new in zip(assignment, new_assignment) if old != new)
        assignment = new_assignment
        if moved <= stop_fraction * n and (stop_fraction > 0 or moved == 0):
            converged = True
            break

    clusters: List[List[int]] = [[] for _ in range(k)]
    for point_index, cluster_index in enumerate(assignment):
        clusters[cluster_index].append(point_index)
    return KMeansResult(Clustering(clusters), centroids, iterations, converged)
