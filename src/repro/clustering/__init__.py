"""Generic clustering substrate.

The paper builds on two classic strategies (Section 2.2 and Section 4.3):

* :func:`repro.clustering.kmeans.kmeans` — a partition centroid-based
  k-means engine, parameterized over the point type via pluggable
  similarity and centroid functions, with the paper's stopping criterion
  (stop when fewer than a fraction of points move between clusters).
* :func:`repro.clustering.hac.hac` — hierarchical agglomerative clustering
  with single / complete / average linkage (Lance-Williams updates over a
  numpy similarity matrix), cut at ``k`` clusters.
* :mod:`repro.clustering.seeding` — random seed selection and the
  "HAC-over-a-sample" seeding scheme the paper evaluates in Section 4.3.
"""

from repro.clustering.hac import Linkage, hac
from repro.clustering.kmeans import KMeansResult, kmeans
from repro.clustering.minibatch import MiniBatchKMeans, ReservoirSample
from repro.clustering.seeding import hac_seed_groups, random_seed_indices
from repro.clustering.types import Clustering

__all__ = [
    "Linkage",
    "hac",
    "KMeansResult",
    "kmeans",
    "MiniBatchKMeans",
    "ReservoirSample",
    "hac_seed_groups",
    "random_seed_indices",
    "Clustering",
]
