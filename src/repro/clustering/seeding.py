"""Seed-selection strategies for k-means.

Three schemes appear in the paper:

* **random seeds** (Algorithm 1, line 2) — CAFC-C's default;
* **HAC seeding** (Section 4.3) — run HAC over the points (the paper ran it
  over the entire dataset) and use the resulting groups as seed clusters;
* **hub-cluster seeding** (Algorithm 3) — lives in :mod:`repro.core.seeds`
  because it needs form-page/backlink semantics.
"""

import random
from typing import Callable, List, Sequence

import numpy as np

from repro.clustering.hac import Linkage, hac


def random_seed_indices(
    n_points: int, k: int, rng: random.Random
) -> List[int]:
    """Pick ``k`` distinct point indices uniformly at random.

    Raises ValueError when there are fewer points than requested seeds.
    """
    if k > n_points:
        raise ValueError(f"cannot pick {k} seeds from {n_points} points")
    return rng.sample(range(n_points), k)


def kmeans_plus_plus_indices(
    points: Sequence,
    k: int,
    similarity: Callable[[object, object], float],
    rng: random.Random,
) -> List[int]:
    """k-means++ seeding (Arthur & Vassilvitskii, 2007).

    Not in the paper (it was published the same year), but the modern
    default for random-ish seeding — included so hub seeding can be
    compared against a stronger random baseline.  Works on similarities:
    the sampling weight is the squared *distance* (1 - similarity) to
    the nearest already-chosen seed.
    """
    if k > len(points):
        raise ValueError(f"cannot pick {k} seeds from {len(points)} points")
    first = rng.randrange(len(points))
    chosen = [first]
    # Squared distance to the nearest chosen seed, maintained per point.
    nearest_sq = [
        (1.0 - similarity(point, points[first])) ** 2 for point in points
    ]
    while len(chosen) < k:
        total = sum(nearest_sq)
        if total <= 0.0:
            # All remaining points coincide with seeds; fall back to
            # uniform choice among the unchosen.
            remaining = [i for i in range(len(points)) if i not in chosen]
            chosen.append(rng.choice(remaining))
        else:
            threshold = rng.random() * total
            cumulative = 0.0
            pick = len(points) - 1
            for index, weight in enumerate(nearest_sq):
                cumulative += weight
                if cumulative >= threshold:
                    pick = index
                    break
            if pick in chosen:
                # Zero-distance duplicate; choose any unchosen point.
                remaining = [i for i in range(len(points)) if i not in chosen]
                pick = rng.choice(remaining)
            chosen.append(pick)
        new_seed = points[chosen[-1]]
        for index, point in enumerate(points):
            distance_sq = (1.0 - similarity(point, new_seed)) ** 2
            if distance_sq < nearest_sq[index]:
                nearest_sq[index] = distance_sq
    return chosen


def hac_seed_groups(
    matrix: np.ndarray,
    k: int,
    linkage: Linkage = Linkage.AVERAGE,
) -> List[List[int]]:
    """Derive ``k`` seed groups by cutting a HAC dendrogram at ``k``.

    Returns the member-index lists of the HAC clusters; the caller builds
    centroids from them (the "widely-used technique to derive seeds for
    k-means" of Section 4.3).
    """
    result = hac(matrix, n_clusters=k, linkage=linkage)
    return [list(members) for members in result.clustering.clusters]


def sample_then_hac_seed_groups(
    points: Sequence,
    k: int,
    sample_size: int,
    similarity: Callable[[object, object], float],
    rng: random.Random,
    linkage: Linkage = Linkage.AVERAGE,
) -> List[List[int]]:
    """The textbook variant: HAC over a random *sample*, groups as seeds.

    Returns member indices **into the original point sequence**.
    """
    if sample_size < k:
        raise ValueError("sample_size must be at least k")
    sample_size = min(sample_size, len(points))
    sample_indices = rng.sample(range(len(points)), sample_size)
    from repro.clustering.hac import similarity_matrix  # local: avoid cycle

    matrix = similarity_matrix([points[i] for i in sample_indices], similarity)
    groups = hac_seed_groups(matrix, k, linkage)
    return [[sample_indices[i] for i in group] for group in groups]
