"""Clustering result types.

A clustering over ``n`` points is represented by a list of clusters, each a
list of point indices.  Indices refer to whatever sequence of points the
caller clustered; labels and metadata stay on the caller's side.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class Clustering:
    """A partition (or partial partition) of point indices into clusters.

    Empty clusters are permitted while iterating (k-means can empty one)
    but :meth:`compact` drops them for final reporting.
    """

    clusters: List[List[int]] = field(default_factory=list)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def n_points(self) -> int:
        return sum(len(members) for members in self.clusters)

    def assignment(self) -> Dict[int, int]:
        """Map point index -> cluster index."""
        mapping: Dict[int, int] = {}
        for cluster_index, members in enumerate(self.clusters):
            for point in members:
                mapping[point] = cluster_index
        return mapping

    def labels(self, n_points: int) -> List[int]:
        """Dense label array: ``labels[i]`` is the cluster of point ``i``.

        Points not assigned to any cluster get label ``-1``.
        """
        labels = [-1] * n_points
        for cluster_index, members in enumerate(self.clusters):
            for point in members:
                labels[point] = cluster_index
        return labels

    def compact(self) -> "Clustering":
        """Return a copy without empty clusters."""
        return Clustering([list(members) for members in self.clusters if members])

    def sizes(self) -> List[int]:
        return [len(members) for members in self.clusters]

    @staticmethod
    def from_labels(labels: Sequence[int]) -> "Clustering":
        """Build a clustering from a dense label array (labels >= 0)."""
        by_label: Dict[int, List[int]] = {}
        for point, label in enumerate(labels):
            if label >= 0:
                by_label.setdefault(label, []).append(point)
        return Clustering([by_label[label] for label in sorted(by_label)])
