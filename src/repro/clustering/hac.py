"""Hierarchical agglomerative clustering (HAC).

Section 4.3 of the paper compares k-means against HAC ("starts with the
individual documents as initial clusters and, at each step, combines the
closest pair of clusters") and also uses HAC output as k-means seeds.

The implementation works on a *similarity* matrix (higher = closer, as
everywhere in this library) and supports the three classic linkages via
Lance-Williams-style updates on a numpy matrix, making the n=454 corpus
clustering instantaneous.
"""

import enum
from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.clustering.types import Clustering


class Linkage(enum.Enum):
    """Cluster-pair similarity definition."""

    SINGLE = "single"       # max pairwise similarity (nearest members)
    COMPLETE = "complete"   # min pairwise similarity (farthest members)
    AVERAGE = "average"     # mean pairwise similarity (UPGMA)


@dataclass
class MergeStep:
    """One agglomeration: clusters ``left`` and ``right`` merged at
    ``similarity``.  Cluster ids are the surviving representative indices
    in the working matrix."""

    left: int
    right: int
    similarity: float


@dataclass
class HacResult:
    """HAC output: the flat clustering at the requested cut plus the full
    merge history (a dendrogram in list form)."""

    clustering: Clustering
    merges: List[MergeStep]


def similarity_matrix(
    points: Sequence,
    similarity: Callable[[object, object], float],
) -> np.ndarray:
    """Build the dense pairwise similarity matrix for ``points``.

    The diagonal is set to self-similarity 1.0 by convention; HAC never
    reads it.
    """
    n = len(points)
    matrix = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        matrix[i, i] = 1.0
        for j in range(i + 1, n):
            score = similarity(points[i], points[j])
            matrix[i, j] = score
            matrix[j, i] = score
    return matrix


def hac(
    matrix: np.ndarray,
    n_clusters: int,
    linkage: Linkage = Linkage.AVERAGE,
) -> HacResult:
    """Agglomerate until ``n_clusters`` clusters remain.

    Parameters
    ----------
    matrix:
        Symmetric pairwise *similarity* matrix (n x n).
    n_clusters:
        Where to cut the dendrogram (1 <= n_clusters <= n).
    linkage:
        How the similarity between merged clusters is defined.

    Notes
    -----
    Average linkage uses the size-weighted Lance-Williams update
    ``s(AuB, C) = (|A| s(A,C) + |B| s(B,C)) / (|A|+|B|)`` which is exact
    for mean pairwise similarity (UPGMA).
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("similarity matrix must be square")
    if not 1 <= n_clusters <= max(n, 1):
        raise ValueError(f"n_clusters must be in [1, {n}], got {n_clusters}")
    if n == 0:
        return HacResult(Clustering([]), [])

    sim = matrix.astype(np.float64, copy=True)
    members = [[i] for i in range(n)]
    sizes = np.ones(n, dtype=np.float64)
    return _agglomerate(sim, members, sizes, n_clusters, linkage)


def _agglomerate(
    sim: np.ndarray,
    members: List[List[int]],
    sizes: np.ndarray,
    n_clusters: int,
    linkage: Linkage,
) -> HacResult:
    """The shared merge loop.  ``sim`` is consumed (mutated)."""
    n = sim.shape[0]
    np.fill_diagonal(sim, -np.inf)  # never merge a cluster with itself
    active = [True] * n
    merges: List[MergeStep] = []
    remaining = n

    while remaining > n_clusters:
        # Find the most similar active pair.  Masking inactive rows keeps
        # the argmax a single vectorized call.
        masked = np.where(
            np.outer(active, active), sim, -np.inf
        )
        flat_index = int(np.argmax(masked))
        i, j = divmod(flat_index, n)
        if i == j or not active[i] or not active[j]:
            break  # no mergeable pair left (disconnected degenerate input)
        if i > j:
            i, j = j, i
        merges.append(MergeStep(i, j, float(sim[i, j])))

        # Lance-Williams update of row/column i (the survivor).
        if linkage is Linkage.SINGLE:
            updated = np.maximum(sim[i], sim[j])
        elif linkage is Linkage.COMPLETE:
            updated = np.minimum(sim[i], sim[j])
        else:  # AVERAGE
            updated = (sizes[i] * sim[i] + sizes[j] * sim[j]) / (sizes[i] + sizes[j])
        sim[i, :] = updated
        sim[:, i] = updated
        sim[i, i] = -np.inf
        sim[j, :] = -np.inf
        sim[:, j] = -np.inf

        members[i].extend(members[j])
        members[j] = []
        sizes[i] += sizes[j]
        active[j] = False
        remaining -= 1

    clusters = [sorted(members[i]) for i in range(n) if active[i]]
    return HacResult(Clustering(clusters), merges)


def hac_points(
    points: Sequence,
    n_clusters: int,
    similarity: Callable[[object, object], float],
    linkage: Linkage = Linkage.AVERAGE,
) -> HacResult:
    """Convenience wrapper: build the matrix from ``points`` and run HAC."""
    return hac(similarity_matrix(points, similarity), n_clusters, linkage)


def hac_from_groups(
    matrix: np.ndarray,
    groups: List[List[int]],
    n_clusters: int,
    linkage: Linkage = Linkage.AVERAGE,
) -> HacResult:
    """HAC starting from pre-formed disjoint groups instead of singletons.

    This is the "CAFC-CH with HAC" variant of the paper's Table 2: hub
    clusters serve as the initial agglomeration state, and points not
    covered by any group start as singletons.  The group-level similarity
    matrix is derived from the point-level one according to ``linkage``
    (mean / max / min of cross-group point similarities).

    ``groups`` must be disjoint; a point in two groups raises ValueError.
    The returned clustering's member indices refer to the original points.
    """
    n = matrix.shape[0]
    seen: set = set()
    for group in groups:
        for point in group:
            if point in seen:
                raise ValueError(f"point {point} appears in multiple groups")
            seen.add(point)
    members = [list(group) for group in groups if group]
    members.extend([i] for i in range(n) if i not in seen)
    m = len(members)
    if not 1 <= n_clusters <= max(m, 1):
        raise ValueError(f"n_clusters must be in [1, {m}], got {n_clusters}")

    group_sim = np.zeros((m, m), dtype=np.float64)
    for a in range(m):
        group_sim[a, a] = 1.0
        for b in range(a + 1, m):
            block = matrix[np.ix_(members[a], members[b])]
            if linkage is Linkage.SINGLE:
                value = float(block.max())
            elif linkage is Linkage.COMPLETE:
                value = float(block.min())
            else:
                value = float(block.mean())
            group_sim[a, b] = value
            group_sim[b, a] = value

    sizes = np.array([len(group) for group in members], dtype=np.float64)
    return _agglomerate(group_sim, members, sizes, n_clusters, linkage)
