"""Persisting organized directories (CAFCResult) to JSON.

A hidden-web directory is only useful if it outlives the process that
built it.  The stored form keeps everything the explorer and the
classification path need: cluster membership, centroid vectors (sparse
term -> weight maps), descriptive terms, and bookkeeping.

Page HTML is *not* stored here — results reference pages by URL; the
raw pages live in the dataset store (:mod:`repro.datasets.store`).
"""

import json
from pathlib import Path
from typing import Union

from repro.core.form_page import FormPage, VectorPair
from repro.core.pipeline import CAFCResult, OrganizedCluster
from repro.datasets.store import DatasetFormatError, atomic_write_json
from repro.vsm.vector import SparseVector

_FORMAT_VERSION = 1


def _vector_to_json(vector: SparseVector) -> dict:
    return dict(vector.items())


def _page_to_json(page: FormPage) -> dict:
    return {
        "url": page.url,
        "label": page.label,
        "pc": _vector_to_json(page.pc),
        "fc": _vector_to_json(page.fc),
        "backlinks": sorted(page.backlinks),
        "form_term_count": page.form_term_count,
        "page_term_count": page.page_term_count,
        "attribute_count": page.attribute_count,
    }


def _page_from_json(data: dict) -> FormPage:
    return FormPage(
        url=data["url"],
        pc=SparseVector(data["pc"]),
        fc=SparseVector(data["fc"]),
        backlinks=frozenset(data.get("backlinks", ())),
        label=data.get("label"),
        form_term_count=data.get("form_term_count", 0),
        page_term_count=data.get("page_term_count", 0),
        attribute_count=data.get("attribute_count", 0),
    )


def save_result(result: CAFCResult, path: Union[str, Path]) -> None:
    """Write an organized directory to ``path`` (atomic tmp+replace)."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "algorithm": result.algorithm,
        "iterations": result.iterations,
        "used_hub_seeding": result.used_hub_seeding,
        "n_hub_clusters": result.n_hub_clusters,
        "seed_hub_urls": list(result.seed_hub_urls),
        "clusters": [
            {
                "top_terms": list(cluster.top_terms),
                "centroid_pc": _vector_to_json(cluster.centroid.pc),
                "centroid_fc": _vector_to_json(cluster.centroid.fc),
                "pages": [_page_to_json(page) for page in cluster.pages],
            }
            for cluster in result.clusters
        ],
    }
    atomic_write_json(payload, path)


def load_result(path: Union[str, Path]) -> CAFCResult:
    """Load a directory written by :func:`save_result`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise DatasetFormatError(path, version, _FORMAT_VERSION)
    clusters = []
    for entry in payload.get("clusters", []):
        clusters.append(
            OrganizedCluster(
                pages=[_page_from_json(p) for p in entry.get("pages", [])],
                centroid=VectorPair(
                    pc=SparseVector(entry.get("centroid_pc", {})),
                    fc=SparseVector(entry.get("centroid_fc", {})),
                ),
                top_terms=list(entry.get("top_terms", [])),
            )
        )
    return CAFCResult(
        clusters=clusters,
        algorithm=payload.get("algorithm", "?"),
        iterations=payload.get("iterations", 0),
        used_hub_seeding=payload.get("used_hub_seeding", False),
        n_hub_clusters=payload.get("n_hub_clusters", 0),
        seed_hub_urls=list(payload.get("seed_hub_urls", [])),
    )
