"""Dataset (de)serialization.

A dataset is the clustering input the paper assembled in Section 4.1: a
list of form pages, each with URL, HTML, harvested backlinks and (for
evaluation) a gold domain label.  The JSON format keeps datasets
regenerable, diffable and shareable without the generator.
"""

from repro.datasets.results import load_result, save_result
from repro.datasets.store import (
    DatasetFormatError,
    atomic_write_json,
    dataset_info,
    fsync_dir,
    load_dataset,
    read_json,
    save_dataset,
)

__all__ = [
    "DatasetFormatError",
    "atomic_write_json",
    "dataset_info",
    "fsync_dir",
    "load_dataset",
    "read_json",
    "save_dataset",
    "load_result",
    "save_result",
]
