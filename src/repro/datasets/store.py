"""JSON storage for form-page datasets.

Also home of the shared durable-write helper: every artifact this
library persists (datasets, organized directories, service snapshots)
goes through :func:`atomic_write_json` — write to a tmp file, flush,
``fsync``, then ``os.replace`` — so a crash or power loss mid-write
never leaves a truncated or missing artifact behind.
"""

import binascii
import gzip
import json
import os
import struct
from pathlib import Path
from typing import BinaryIO, Dict, Iterable, Iterator, List, Tuple, Union

from repro.core.form_page import RawFormPage

# Format marker so future layout changes can stay loadable.
_FORMAT_VERSION = 1


class DatasetFormatError(ValueError):
    """A stored artifact has an unknown or incompatible format version.

    ``found_version`` carries whatever version marker the file declared
    (possibly ``None``), so callers can tell "newer tool wrote this"
    from "this is not one of our files at all".
    """

    def __init__(self, path, found_version, expected_version) -> None:
        self.path = str(path)
        self.found_version = found_version
        self.expected_version = expected_version
        super().__init__(
            f"{path}: unsupported format_version {found_version!r} "
            f"(this build reads version {expected_version!r})"
        )


def fsync_dir(path: Union[str, Path]) -> None:
    """fsync a *directory*, making renames inside it durable.

    ``os.replace`` updates the parent directory's entries; until the
    directory inode itself is flushed, a crash can forget the rename
    even though the file's bytes were fsynced.  Best-effort on
    platforms that refuse directory fds (Windows raises; some network
    filesystems return EINVAL) — those offer no stronger primitive.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_json(
    payload: object, path: Union[str, Path], compress: bool = False
) -> None:
    """Durably write ``payload`` as JSON to ``path``.

    The bytes land in ``<path>.tmp`` first and are fsynced *before* the
    rename, and the parent directory is fsynced *after* it — so the
    replace is atomic on POSIX, the data is on disk when it happens,
    and the rename itself survives a crash.  A crashed run leaves
    either the old file or the new one, never a torn half-write.
    ``compress`` gzips the payload (the convention: pass it for paths
    ending in ``.gz``).
    """
    path = Path(path)
    tmp_path = path.with_suffix(path.suffix + ".tmp")
    data = json.dumps(payload).encode("utf-8")
    if compress:
        data = gzip.compress(data, mtime=0)
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    tmp_path.replace(path)
    fsync_dir(path.parent)


def read_json(path: Union[str, Path]) -> object:
    """Read a JSON artifact written by :func:`atomic_write_json`,
    transparently handling gzip (detected by magic bytes, not name)."""
    path = Path(path)
    with open(path, "rb") as handle:
        data = handle.read()
    if data[:2] == b"\x1f\x8b":
        data = gzip.decompress(data)
    return json.loads(data.decode("utf-8"))


# ----------------------------------------------------------------
# CRC-framed record files (spill segments and other sealed artifacts).
#
# Frame layout matches the write-ahead journal so one corruption story
# covers every on-disk record stream:
# ``[length: u32 BE] [crc32(payload): u32 BE] [payload: JSON bytes]``.
# Files written by :func:`write_framed_records` are immutable once
# sealed (tmp + fsync + rename, like :func:`atomic_write_json`), so
# readers may cache offsets and seek records on demand.
# ----------------------------------------------------------------

_FRAME_HEADER = struct.Struct(">II")


def _frame(payload: bytes) -> bytes:
    return _FRAME_HEADER.pack(len(payload), binascii.crc32(payload)) + payload


class FramedRecordError(ValueError):
    """A framed record file is truncated or fails its checksum."""

    def __init__(self, path, offset: int, reason: str) -> None:
        self.path = str(path)
        self.offset = offset
        super().__init__(f"{path}: bad framed record at offset {offset}: {reason}")


def write_framed_records(
    records: Iterable[object], path: Union[str, Path]
) -> List[int]:
    """Durably write ``records`` as a sealed crc-framed file.

    Returns the byte offset of each record (for callers that build their
    own directory over the file).  The write is atomic: a crash leaves
    either the previous file or the complete new one.
    """
    path = Path(path)
    tmp_path = path.with_suffix(path.suffix + ".tmp")
    offsets: List[int] = []
    position = 0
    with open(tmp_path, "wb") as handle:
        for record in records:
            framed = _frame(json.dumps(record).encode("utf-8"))
            offsets.append(position)
            handle.write(framed)
            position += len(framed)
        handle.flush()
        os.fsync(handle.fileno())
    tmp_path.replace(path)
    fsync_dir(path.parent)
    return offsets


def read_framed_record(handle: BinaryIO, offset: int, path="?") -> object:
    """Read and checksum-verify the single record at ``offset``."""
    handle.seek(offset)
    header = handle.read(_FRAME_HEADER.size)
    if len(header) < _FRAME_HEADER.size:
        raise FramedRecordError(path, offset, "truncated header")
    length, crc = _FRAME_HEADER.unpack(header)
    payload = handle.read(length)
    if len(payload) < length:
        raise FramedRecordError(path, offset, "truncated payload")
    if binascii.crc32(payload) != crc:
        raise FramedRecordError(path, offset, "crc mismatch")
    return json.loads(payload.decode("utf-8"))


def iter_framed_records(
    path: Union[str, Path]
) -> Iterator[Tuple[int, object]]:
    """Yield ``(offset, record)`` for every record, verifying checksums.

    A truncated or corrupt frame raises :class:`FramedRecordError` — a
    sealed segment is immutable, so unlike the journal's torn-tail
    tolerance, *any* damage here is a hard error.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        offset = 0
        while True:
            header = handle.read(_FRAME_HEADER.size)
            if not header:
                return
            if len(header) < _FRAME_HEADER.size:
                raise FramedRecordError(path, offset, "truncated header")
            length, crc = _FRAME_HEADER.unpack(header)
            payload = handle.read(length)
            if len(payload) < length:
                raise FramedRecordError(path, offset, "truncated payload")
            if binascii.crc32(payload) != crc:
                raise FramedRecordError(path, offset, "crc mismatch")
            yield offset, json.loads(payload.decode("utf-8"))
            offset += _FRAME_HEADER.size + length


def save_dataset(pages: List[RawFormPage], path: Union[str, Path]) -> None:
    """Write ``pages`` to ``path`` as JSON (atomic + fsynced; see
    :func:`atomic_write_json`)."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "n_pages": len(pages),
        "pages": [
            {
                "url": page.url,
                "html": page.html,
                "backlinks": list(page.backlinks),
                "label": page.label,
            }
            for page in pages
        ],
    }
    atomic_write_json(payload, path)


def load_dataset(path: Union[str, Path]) -> List[RawFormPage]:
    """Load a dataset written by :func:`save_dataset`.

    Raises :class:`DatasetFormatError` on an unknown ``format_version``
    and ValueError on structural problems, with a message naming what is
    wrong.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise DatasetFormatError(path, version, _FORMAT_VERSION)
    pages_field = payload.get("pages")
    if not isinstance(pages_field, list):
        raise ValueError(f"{path}: 'pages' must be a list")
    pages: List[RawFormPage] = []
    for index, entry in enumerate(pages_field):
        try:
            pages.append(
                RawFormPage(
                    url=entry["url"],
                    html=entry["html"],
                    backlinks=list(entry.get("backlinks", [])),
                    label=entry.get("label"),
                )
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"{path}: malformed page entry {index}: {exc}") from exc
    return pages


def dataset_info(path: Union[str, Path]) -> Dict[str, object]:
    """Summary of a stored dataset without materializing RawFormPage
    objects (cheap sanity check for CLIs and tests)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    pages = payload.get("pages", [])
    labels: Dict[str, int] = {}
    for entry in pages:
        label = entry.get("label") or "?"
        labels[label] = labels.get(label, 0) + 1
    return {
        "format_version": payload.get("format_version"),
        "n_pages": len(pages),
        "labels": labels,
    }
