"""JSON storage for form-page datasets."""

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.form_page import RawFormPage

# Format marker so future layout changes can stay loadable.
_FORMAT_VERSION = 1


def save_dataset(pages: List[RawFormPage], path: Union[str, Path]) -> None:
    """Write ``pages`` to ``path`` as JSON.

    The file is written atomically-ish (tmp file + replace) so a crashed
    run never leaves a truncated dataset behind.
    """
    payload = {
        "format_version": _FORMAT_VERSION,
        "n_pages": len(pages),
        "pages": [
            {
                "url": page.url,
                "html": page.html,
                "backlinks": list(page.backlinks),
                "label": page.label,
            }
            for page in pages
        ],
    }
    path = Path(path)
    tmp_path = path.with_suffix(path.suffix + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    tmp_path.replace(path)


def load_dataset(path: Union[str, Path]) -> List[RawFormPage]:
    """Load a dataset written by :func:`save_dataset`.

    Raises ValueError on format mismatch or structural problems, with a
    message naming what is wrong.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported format_version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    pages_field = payload.get("pages")
    if not isinstance(pages_field, list):
        raise ValueError(f"{path}: 'pages' must be a list")
    pages: List[RawFormPage] = []
    for index, entry in enumerate(pages_field):
        try:
            pages.append(
                RawFormPage(
                    url=entry["url"],
                    html=entry["html"],
                    backlinks=list(entry.get("backlinks", [])),
                    label=entry.get("label"),
                )
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"{path}: malformed page entry {index}: {exc}") from exc
    return pages


def dataset_info(path: Union[str, Path]) -> Dict[str, object]:
    """Summary of a stored dataset without materializing RawFormPage
    objects (cheap sanity check for CLIs and tests)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    pages = payload.get("pages", [])
    labels: Dict[str, int] = {}
    for entry in pages:
        label = entry.get("label") or "?"
        labels[label] = labels.get(label, 0) + 1
    return {
        "format_version": payload.get("format_version"),
        "n_pages": len(pages),
        "labels": labels,
    }
