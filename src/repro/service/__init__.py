"""repro.service — the form-directory server.

The paper's motivation is a hidden web "so vast and dynamic" that an
organization of its sources must be *maintained and served*, not just
computed once.  This package turns the offline CAFC pipeline into a
long-running directory service:

* :mod:`repro.service.snapshot` — persist/load a fully built index
  (vectorizer statistics, centroids, page assignments, config) so a
  server cold-starts in milliseconds without re-running the pipeline;
* :mod:`repro.service.directory` — a thread-safe façade over
  :class:`~repro.core.incremental.IncrementalOrganizer` with
  micro-batched classification, an LRU result cache, and
  drift-triggered background re-clustering;
* :mod:`repro.service.app` — the transport-neutral JSON application
  (classify / add / remove / search / clusters / healthz / metrics);
* :mod:`repro.service.http` — the threaded ``ThreadingHTTPServer``
  transport over that app;
* :mod:`repro.service.aio` — the ``asyncio`` event-loop transport:
  keep-alive + pipelining, admission control with structured
  ``429 + Retry-After`` load shedding, slowloris/idle reaping;
* :mod:`repro.service.metrics` — latency histograms, batch/cache
  counters and engine-stats rollups in Prometheus text format.

Everything is standard library only (the similarity engine's optional
NumPy fast path keeps working underneath).
"""

from repro.service.aio import (
    AdmissionConfig,
    AsyncHTTPServer,
    serve_directory_async,
)
from repro.service.app import ApiError, BaseApp, DirectoryApp, Response
from repro.service.directory import ClassifyOutcome, FormDirectory
from repro.service.http import DirectoryHTTPServer, serve_directory
from repro.service.metrics import MetricsRegistry
from repro.service.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    Snapshot,
    build_snapshot,
    load_snapshot,
    save_snapshot,
    snapshot_info,
)

__all__ = [
    "AdmissionConfig",
    "ApiError",
    "AsyncHTTPServer",
    "BaseApp",
    "ClassifyOutcome",
    "DirectoryApp",
    "FormDirectory",
    "DirectoryHTTPServer",
    "Response",
    "serve_directory",
    "serve_directory_async",
    "MetricsRegistry",
    "SNAPSHOT_FORMAT_VERSION",
    "Snapshot",
    "build_snapshot",
    "load_snapshot",
    "save_snapshot",
    "snapshot_info",
]
