"""repro.service — the form-directory server.

The paper's motivation is a hidden web "so vast and dynamic" that an
organization of its sources must be *maintained and served*, not just
computed once.  This package turns the offline CAFC pipeline into a
long-running directory service:

* :mod:`repro.service.snapshot` — persist/load a fully built index
  (vectorizer statistics, centroids, page assignments, config) so a
  server cold-starts in milliseconds without re-running the pipeline;
* :mod:`repro.service.directory` — a thread-safe façade over
  :class:`~repro.core.incremental.IncrementalOrganizer` with
  micro-batched classification, an LRU result cache, and
  drift-triggered background re-clustering;
* :mod:`repro.service.http` — a stdlib ``ThreadingHTTPServer`` JSON
  API (classify / add / remove / search / clusters / healthz / metrics);
* :mod:`repro.service.metrics` — latency histograms, batch/cache
  counters and engine-stats rollups in Prometheus text format.

Everything is standard library only (the similarity engine's optional
NumPy fast path keeps working underneath).
"""

from repro.service.directory import ClassifyOutcome, FormDirectory
from repro.service.http import DirectoryHTTPServer, serve_directory
from repro.service.metrics import MetricsRegistry
from repro.service.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    Snapshot,
    build_snapshot,
    load_snapshot,
    save_snapshot,
    snapshot_info,
)

__all__ = [
    "ClassifyOutcome",
    "FormDirectory",
    "DirectoryHTTPServer",
    "serve_directory",
    "MetricsRegistry",
    "SNAPSHOT_FORMAT_VERSION",
    "Snapshot",
    "build_snapshot",
    "load_snapshot",
    "save_snapshot",
    "snapshot_info",
]
