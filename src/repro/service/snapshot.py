"""Directory snapshots — cold-starting the server without the pipeline.

A snapshot is everything a serving process needs to answer classify /
add / search requests exactly as the process that built the clustering
would:

* the fitted vectorizer state (per-space document frequencies, the LOC
  policy, the backlink cap) — what ``transform_new`` consumes;
* every managed page's vectors and assignment, grouped by cluster (the
  centroids are recomputed from these on load, reproducing the exact
  float-addition order of the builder);
* the :class:`~repro.core.config.CAFCConfig` of the run;
* descriptive cluster labels for /clusters and /search responses.

Counts are integers and weights plain floats, and ``json`` round-trips
Python floats exactly (repr-based), so a load-from-snapshot organizer
classifies **bit-identically** to the organizer it was built from —
pinned by ``tests/test_service_snapshot.py`` over the full benchmark
corpus.

Artifacts are versioned JSON, gzipped when the path ends in ``.gz``,
written via the same fsynced atomic writer as every other stored
artifact (:func:`repro.datasets.store.atomic_write_json`).
"""

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.config import CAFCConfig
from repro.core.form_page import FormPage
from repro.core.incremental import IncrementalOrganizer
from repro.core.pipeline import CAFCResult, _label_terms
from repro.core.similarity import BackendSpec
from repro.core.vectorizer import FormPageVectorizer
from repro.datasets.store import DatasetFormatError, atomic_write_json, read_json
from repro.resilience.faults import inject
from repro.vsm.schemes import UnknownSchemeError, scheme_from_dict
from repro.vsm.vector import SparseVector

#: The newest format this build writes and reads.  Version 1 is the
#: pre-scheme-seam format, which is (and can only be) Equation-1 state;
#: Equation-1 snapshots are still written as version 1 so older tooling
#: keeps reading them.  Non-default weighting schemes bump the payload
#: to version 2, so a version-1-only reader refuses them with a
#: :class:`~repro.datasets.store.DatasetFormatError` instead of
#: silently re-weighting with Equation 1.
SNAPSHOT_FORMAT_VERSION = 2

_SUPPORTED_FORMAT_VERSIONS = (1, 2)

_KIND = "repro-directory-snapshot"


def _scheme_name(vectorizer_state: dict) -> str:
    scheme = vectorizer_state.get("scheme")
    if isinstance(scheme, dict):
        return str(scheme.get("name", "eq1"))
    return "eq1"


def _page_to_json(page: FormPage) -> dict:
    return {
        "url": page.url,
        "label": page.label,
        "pc": dict(page.pc.items()),
        "fc": dict(page.fc.items()),
        "backlinks": sorted(page.backlinks),
        "form_term_count": page.form_term_count,
        "page_term_count": page.page_term_count,
        "attribute_count": page.attribute_count,
    }


def _page_from_json(data: dict) -> FormPage:
    return FormPage(
        url=data["url"],
        pc=SparseVector(data.get("pc", {})),
        fc=SparseVector(data.get("fc", {})),
        backlinks=frozenset(data.get("backlinks", ())),
        label=data.get("label"),
        form_term_count=data.get("form_term_count", 0),
        page_term_count=data.get("page_term_count", 0),
        attribute_count=data.get("attribute_count", 0),
    )


@dataclass
class Snapshot:
    """A serialized-ready directory: clusters of vectorized pages plus
    the fitted vectorizer state and run config."""

    clusters: List[List[FormPage]]
    vectorizer_state: dict
    config: CAFCConfig
    top_terms: List[List[str]] = field(default_factory=list)
    algorithm: str = "?"
    created_unix: float = 0.0
    #: Free-form carrier for deployment context the core directory does
    #: not interpret — the distrib layer stores the shard's placement
    #: and the journal position the snapshot folds through, so a replica
    #: bootstrapping from ``/replication/snapshot`` knows where to start
    #: tailing (docs/SHARDING.md).
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def n_pages(self) -> int:
        return sum(len(members) for members in self.clusters)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    # ----------------------------------------------------------------
    # Materialization.
    # ----------------------------------------------------------------

    def vectorizer(self) -> FormPageVectorizer:
        """A fitted vectorizer reproducing the builder's ``transform_new``."""
        return FormPageVectorizer.from_state(self.vectorizer_state)

    def to_organizer(
        self,
        backend: BackendSpec = None,
        drift_threshold: float = 0.7,
        index: Optional[str] = None,
    ) -> IncrementalOrganizer:
        """An :class:`IncrementalOrganizer` serving this snapshot.

        Centroids are rebuilt from the stored page vectors in stored
        order — the same float-addition order the builder used — so
        every subsequent classification matches the builder's
        bit-for-bit.  ``index`` overrides the snapshot config's
        inverted-index mode (``"auto"``/``"on"``/``"off"``).
        """
        return IncrementalOrganizer(
            [list(members) for members in self.clusters],
            self.vectorizer(),
            config=self.config,
            drift_threshold=drift_threshold,
            backend=backend,
            index=index,
        )

    # ----------------------------------------------------------------
    # Checkpointing.
    # ----------------------------------------------------------------

    @classmethod
    def from_organizer(
        cls,
        organizer: IncrementalOrganizer,
        algorithm: str = "incremental",
        n_label_terms: int = 6,
        meta: Optional[Dict[str, object]] = None,
    ) -> "Snapshot":
        """Snapshot a *live* organizer — the checkpoint the directory
        writes before truncating its journal.

        Pages are stored in each cluster's live order, and organizer
        centroids are always full re-sums over that order
        (``rebuild_centroid``), so :meth:`to_organizer` reproduces them
        bit-identically.  The one exception is a cluster emptied by
        ``recluster`` (it keeps its final k-means centroid under the
        keep-previous convention, which a page-only snapshot cannot
        carry); such a centroid reverts to zero on load and the cluster
        re-earns pages from there.
        """
        return cls(
            clusters=[list(cluster.pages) for cluster in organizer.clusters],
            vectorizer_state=organizer.vectorizer.export_state(),
            config=organizer.config,
            top_terms=[
                _label_terms(cluster.centroid, n_label_terms)
                for cluster in organizer.clusters
            ],
            algorithm=algorithm,
            created_unix=time.time(),
            meta=dict(meta) if meta else {},
        )

    # ----------------------------------------------------------------
    # Persistence.
    # ----------------------------------------------------------------

    def to_payload(self) -> dict:
        """The versioned JSON payload :meth:`save` writes — also what
        the shard's ``/replication/snapshot`` endpoint ships over the
        wire, so replicas bootstrap from the exact bytes a file-based
        cold start would read."""
        # Equation-1 state keeps the pre-seam version so older readers
        # stay compatible; any other scheme gates on version 2.
        version = 1 if _scheme_name(self.vectorizer_state) == "eq1" else 2
        payload = {
            "format_version": version,
            "kind": _KIND,
            "created_unix": self.created_unix or time.time(),
            "algorithm": self.algorithm,
            "config": self.config.to_dict(),
            "vectorizer": self.vectorizer_state,
            "clusters": [
                {
                    "top_terms": list(terms),
                    "pages": [_page_to_json(page) for page in members],
                }
                for members, terms in zip(self.clusters, self._padded_terms())
            ],
        }
        if self.meta:
            payload["meta"] = dict(self.meta)
        return payload

    def save(self, path: Union[str, Path]) -> None:
        """Write the snapshot (gzipped when ``path`` ends in ``.gz``).

        The write is an injection seam (``"snapshot.save"``): an armed
        chaos plan may fail it *before* any bytes are written, and the
        atomic writer guarantees a failure mid-write leaves the previous
        snapshot intact either way.
        """
        inject("snapshot.save")
        path = Path(path)
        atomic_write_json(
            self.to_payload(), path, compress=path.name.endswith(".gz")
        )

    def _padded_terms(self) -> List[List[str]]:
        terms = list(self.top_terms)
        while len(terms) < len(self.clusters):
            terms.append([])
        return terms

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Snapshot":
        """Load a snapshot written by :meth:`save`.

        Raises :class:`~repro.datasets.store.DatasetFormatError` on an
        unknown format version and ValueError on structural problems.
        ``"snapshot.load"`` is an injection seam.
        """
        inject("snapshot.load")
        payload = read_json(path)
        return cls.from_payload(payload, source=path)

    @classmethod
    def from_payload(
        cls, payload: object, source: Union[str, Path] = "<payload>"
    ) -> "Snapshot":
        """Validate and materialize a snapshot payload (file contents or
        a ``/replication/snapshot`` response body).  ``source`` names the
        origin in error messages."""
        path = source
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: expected a JSON object at top level")
        if payload.get("kind") != _KIND:
            raise ValueError(
                f"{path}: not a directory snapshot "
                f"(kind={payload.get('kind')!r})"
            )
        version = payload.get("format_version")
        if version not in _SUPPORTED_FORMAT_VERSIONS:
            raise DatasetFormatError(path, version, SNAPSHOT_FORMAT_VERSION)
        vectorizer_state = dict(payload.get("vectorizer", {}))
        scheme_name = _scheme_name(vectorizer_state)
        if version == 1 and scheme_name != "eq1":
            # A version-1 reader would silently treat this state as
            # Equation 1; refuse the mislabelled payload outright.
            raise DatasetFormatError(
                path, f"1 (scheme={scheme_name})", SNAPSHOT_FORMAT_VERSION
            )
        try:
            scheme_from_dict(vectorizer_state.get("scheme", {"name": "eq1"}))
        except UnknownSchemeError as exc:
            raise DatasetFormatError(
                path, f"{version} (scheme={exc.name!r})",
                SNAPSHOT_FORMAT_VERSION,
            ) from exc
        clusters_field = payload.get("clusters")
        if not isinstance(clusters_field, list) or not clusters_field:
            raise ValueError(f"{path}: 'clusters' must be a non-empty list")
        clusters: List[List[FormPage]] = []
        top_terms: List[List[str]] = []
        for index, entry in enumerate(clusters_field):
            try:
                clusters.append(
                    [_page_from_json(p) for p in entry.get("pages", [])]
                )
                top_terms.append(list(entry.get("top_terms", [])))
            except (KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}: malformed cluster entry {index}: {exc}"
                ) from exc
        meta = payload.get("meta", {})
        return cls(
            clusters=clusters,
            vectorizer_state=vectorizer_state,
            config=CAFCConfig.from_dict(dict(payload.get("config", {}))),
            top_terms=top_terms,
            algorithm=str(payload.get("algorithm", "?")),
            created_unix=float(payload.get("created_unix", 0.0)),
            meta=dict(meta) if isinstance(meta, dict) else {},
        )


def build_snapshot(
    result: CAFCResult,
    vectorizer: FormPageVectorizer,
    config: Optional[CAFCConfig] = None,
) -> Snapshot:
    """Snapshot an organized directory (a pipeline result + its fitted
    vectorizer)."""
    return Snapshot(
        clusters=[list(cluster.pages) for cluster in result.clusters],
        vectorizer_state=vectorizer.export_state(),
        config=config or CAFCConfig(),
        top_terms=[list(cluster.top_terms) for cluster in result.clusters],
        algorithm=result.algorithm,
        created_unix=time.time(),
    )


def save_snapshot(snapshot: Snapshot, path: Union[str, Path]) -> None:
    """Module-level alias for :meth:`Snapshot.save`."""
    snapshot.save(path)


def load_snapshot(path: Union[str, Path]) -> Snapshot:
    """Module-level alias for :meth:`Snapshot.load`."""
    return Snapshot.load(path)


def snapshot_info(path: Union[str, Path]) -> Dict[str, object]:
    """Cheap summary of a stored snapshot (for ``repro snapshot inspect``)."""
    payload = read_json(path)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    clusters = payload.get("clusters", [])
    sizes = [len(entry.get("pages", [])) for entry in clusters]
    vectorizer = payload.get("vectorizer", {})
    config = payload.get("config", {})
    return {
        "kind": payload.get("kind"),
        "format_version": payload.get("format_version"),
        "created_unix": payload.get("created_unix"),
        "algorithm": payload.get("algorithm"),
        "index": config.get("index", "auto") if isinstance(config, dict)
        else "auto",
        "scheme": _scheme_name(vectorizer if isinstance(vectorizer, dict) else {}),
        "n_clusters": len(clusters),
        "n_pages": sum(sizes),
        "cluster_sizes": sizes,
        "top_terms": [
            list(entry.get("top_terms", []))[:4] for entry in clusters
        ],
        "pc_vocabulary": len(
            vectorizer.get("pc_corpus", {}).get("document_frequency", {})
        ),
        "fc_vocabulary": len(
            vectorizer.get("fc_corpus", {}).get("document_frequency", {})
        ),
    }
