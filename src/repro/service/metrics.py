"""Service observability — Prometheus text-format metrics, stdlib only.

A tiny metric model shaped after the Prometheus client conventions:

* :class:`Counter` — monotonically increasing totals (requests served,
  batches flushed, cache hits);
* :class:`Gauge` — point-in-time values, either set directly or read
  from a callback at render time (managed pages, cohesion);
* :class:`Histogram` — cumulative fixed-bucket distributions
  (per-endpoint request latency, batch sizes).

All metrics live in a :class:`MetricsRegistry` and render together via
:meth:`MetricsRegistry.render` in the Prometheus exposition text format
(version 0.0.4), which is what ``GET /metrics`` returns.  Every mutation
takes one shared registry lock — the operations are single dict/float
updates, far cheaper than the request work around them.
"""

import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds) — sub-millisecond cache hits up to
#: multi-second re-clustering pauses.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default batch-size buckets (requests coalesced per engine call).
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing total."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value; ``set_function`` reads live at render time."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._fn = None

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set_function(self, fn: Callable[[], float]) -> None:
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:
            return 0.0


class Histogram:
    """Cumulative fixed-bucket distribution (Prometheus semantics)."""

    def __init__(self, lock: threading.Lock, buckets: Sequence[float]) -> None:
        self._lock = lock
        self.uppers: List[float] = sorted(float(b) for b in buckets)
        self._counts = [0] * len(self.uppers)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            # Store per-bucket counts; the renderer accumulates them
            # into the cumulative form the exposition format wants.
            for index, upper in enumerate(self.uppers):
                if value <= upper:
                    self._counts[index] += 1
                    break

    def state(self) -> Tuple[List[int], float, int]:
        """(per-bucket counts, sum, count) — a consistent copy."""
        with self._lock:
            return list(self._counts), self._sum, self._count


class _Family:
    """One metric name: help text, type, and per-label-set children."""

    def __init__(self, name: str, help_text: str, kind: str) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.children: Dict[_LabelKey, object] = {}


class MetricsRegistry:
    """A set of metric families rendering to Prometheus text format."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # ----------------------------------------------------------------
    # Registration / lookup (idempotent — callers just ask every time).
    # ----------------------------------------------------------------

    def _family(self, name: str, help_text: str, kind: str) -> _Family:
        full = f"{self.namespace}_{name}" if self.namespace else name
        with self._lock:
            family = self._families.get(full)
            if family is None:
                family = _Family(full, help_text, kind)
                self._families[full] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {full!r} already registered as {family.kind}"
                )
            return family

    def _child(self, family: _Family, labels: Dict[str, str], factory):
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                child = factory()
                family.children[key] = child
            return child

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        family = self._family(name, help_text, "counter")
        return self._child(family, labels, lambda: Counter(self._lock))

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        family = self._family(name, help_text, "gauge")
        return self._child(family, labels, lambda: Gauge(self._lock))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        family = self._family(name, help_text, "histogram")
        return self._child(
            family, labels, lambda: Histogram(self._lock, buckets)
        )

    # ----------------------------------------------------------------
    # Rendering.
    # ----------------------------------------------------------------

    def render(self) -> str:
        """The whole registry in Prometheus exposition format 0.0.4."""
        lines: List[str] = []
        with self._lock:
            families = [
                (family, list(family.children.items()))
                for family in self._families.values()
            ]
        for family, children in families:
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in children:
                lines.extend(self._render_child(family, key, child))
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_child(
        family: _Family, key: _LabelKey, child: object
    ) -> Iterable[str]:
        if isinstance(child, Histogram):
            counts, total, count = child.state()
            cumulative = 0
            for upper, bucket_count in zip(child.uppers, counts):
                cumulative += bucket_count
                labels = _render_labels(key, [("le", _format_value(upper))])
                yield f"{family.name}_bucket{labels} {cumulative}"
            labels = _render_labels(key, [("le", "+Inf")])
            yield f"{family.name}_bucket{labels} {count}"
            yield f"{family.name}_sum{_render_labels(key)} {_format_value(total)}"
            yield f"{family.name}_count{_render_labels(key)} {count}"
        else:
            value = child.value  # type: ignore[attr-defined]
            yield f"{family.name}{_render_labels(key)} {_format_value(value)}"


__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
