"""The form-directory HTTP API — threaded transport.

Endpoints (all JSON unless noted):

========  ==============  ====================================================
method    path            purpose
========  ==============  ====================================================
POST      ``/classify``   assign a page ``{url, html, backlinks?}`` to its
                          cluster (read-only; micro-batched)
POST      ``/add``        insert (or replace) a source
POST      ``/remove``     drop a source ``{url}``
GET       ``/search``     ``?q=keyword+query&n=3&scope=clusters|pages`` —
                          rank clusters (or managed pages)
GET       ``/clusters``   cluster directory summary
GET       ``/healthz``    liveness + staleness stats
GET       ``/metrics``    Prometheus text format (not JSON)
========  ==============  ====================================================

Request handling lives in the transport-neutral
:class:`repro.service.app.DirectoryApp`; this module is the classic
``ThreadingHTTPServer`` adapter around it (one thread per connection).
The :mod:`repro.service.aio` event-loop transport drives the *same* app
object, so both transports produce byte-identical JSON — pick one with
``serve_directory(..., transport=...)`` or ``repro serve --transport``.

Every response is either ``{"ok": true, ...}`` or a structured error
``{"ok": false, "error": {"code", "message"}}`` with a matching HTTP
status.  Requests are bounded: bodies above ``max_request_bytes`` are
rejected with 413 before being read into memory, and each connection
gets a socket timeout so a stalled client cannot pin a handler thread.
Connections honor ``Connection: close`` request headers, and once
``shut_down()`` has begun every response carries ``Connection: close``
so keep-alive clients aren't left waiting on a half-closed socket.
"""

import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.service.app import (
    ApiError,
    BaseApp,
    ClientDisconnected,
    DEFAULT_MAX_REQUEST_BYTES,
    DEFAULT_REQUEST_TIMEOUT,
    DirectoryApp,
    RECOVERING_RETRY_AFTER,
    Response,
    _raw_page_from_body,  # noqa: F401  (re-export: distrib + old imports)
    check_content_length,
    error_response,
)
from repro.service.directory import FormDirectory


class DirectoryRequestHandler(BaseHTTPRequestHandler):
    """Thin adapter: parse one request, hand it to ``server.app``,
    write the :class:`Response` back with keep-alive bookkeeping."""

    protocol_version = "HTTP/1.1"
    # Small JSON responses with Nagle + delayed ACK cost ~40ms per
    # request on keep-alive sockets; asyncio transports set TCP_NODELAY
    # by default, so match it here.
    disable_nagle_algorithm = True

    # -- plumbing -----------------------------------------------------

    def setup(self) -> None:
        super().setup()
        self.connection.settimeout(self.server.request_timeout)

    def log_message(self, format: str, *args) -> None:
        # Access logging is the metrics registry's job; keep stderr for
        # real errors only.
        pass

    def version_string(self) -> str:
        return self.server.app.server_version

    @property
    def app(self) -> BaseApp:
        return self.server.app

    # -- request cycle ------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def _handle(self, method: str) -> None:
        # True while the announced request body has been fully consumed
        # off the socket; if a handler rejects the request before the
        # body was read (411/413), the unread bytes would be parsed as
        # the next request's head — the connection must close instead.
        self._body_consumed = True
        if getattr(self.server, "shutting_down", False):
            # A keep-alive client racing shutdown: answer 503 with
            # Connection: close instead of leaving it waiting on a
            # half-closed socket (the listener is already gone).
            self.close_connection = True
            try:
                self._respond(error_response(ApiError(
                    503, "shutting_down",
                    "server is shutting down; connection closing",
                    retry_after=1,
                )))
            except (BrokenPipeError, ConnectionResetError, socket.timeout,
                    TimeoutError):
                pass
            return
        read_body = self._make_body_reader() if method == "POST" else None
        try:
            response = self.app.handle(method, self.path, read_body)
        except ClientDisconnected:
            self.close_connection = True
            return
        try:
            self._respond(response)
        except (BrokenPipeError, ConnectionResetError, socket.timeout,
                TimeoutError):
            self.close_connection = True

    def _make_body_reader(self):
        length_header = self.headers.get("Content-Length")

        def read_body() -> bytes:
            # Unconsumed until proven otherwise: a 411/413 raised here
            # leaves announced body bytes on the socket, and reusing the
            # connection would parse them as the next request's head.
            self._body_consumed = False
            length = check_content_length(
                length_header, self.server.max_request_bytes
            )
            try:
                data = self.rfile.read(length)
            except (BrokenPipeError, ConnectionResetError, socket.timeout,
                    TimeoutError) as exc:
                raise ClientDisconnected(str(exc)) from exc
            if len(data) < length:
                raise ClientDisconnected("short body read")
            self._body_consumed = True
            return data

        return read_body

    def _respond(self, response: Response) -> None:
        # Close when the client asked for it (parse_request already set
        # close_connection from the request's Connection header), when
        # the server is draining toward shutdown, or when unread body
        # bytes would desynchronize keep-alive framing.
        must_close = (
            self.close_connection
            or getattr(self.server, "shutting_down", False)
            or not self._body_consumed
        )
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.extra_headers:
            self.send_header(name, value)
        if must_close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(response.body)


class DirectoryHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`FormDirectory`."""

    daemon_threads = True
    allow_reuse_address = True
    # socketserver's default accept backlog is 5; a burst of concurrent
    # clients (the whole point of micro-batching) would see kernel
    # connection resets before the server ever accepts them.
    request_queue_size = 128

    def __init__(
        self,
        directory: FormDirectory,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.directory = directory
        self.app = DirectoryApp(directory, request_timeout=request_timeout)
        self.max_request_bytes = max_request_bytes
        self.request_timeout = request_timeout
        self.shutting_down = False
        super().__init__(address, DirectoryRequestHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def base_url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def serve_in_thread(self) -> threading.Thread:
        """Start serving on a daemon thread (for tests and embedding)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-http", daemon=True
        )
        thread.start()
        return thread

    def shut_down(self) -> None:
        """Stop serving and release the socket and batch worker.

        Raising ``shutting_down`` first makes every in-flight response
        carry ``Connection: close``, so keep-alive clients learn the
        socket is going away instead of stalling on their next request.
        """
        self.shutting_down = True
        self.shutdown()
        self.server_close()
        self.directory.close()


def serve_directory(
    directory: FormDirectory,
    host: str = "127.0.0.1",
    port: int = 0,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    transport: str = "threaded",
    admission: Optional[object] = None,
):
    """Bind a server for ``directory`` (port 0 picks an ephemeral port).

    ``transport`` selects the connection layer: ``"threaded"`` (this
    module, one thread per connection) or ``"asyncio"`` (the
    :mod:`repro.service.aio` event-loop front end with admission
    control).  Both serve the same :class:`DirectoryApp`, so responses
    are byte-identical; ``admission`` (an
    :class:`repro.service.aio.AdmissionConfig`) only applies to the
    asyncio transport.
    """
    if transport == "asyncio":
        from repro.service.aio import serve_directory_async

        return serve_directory_async(
            directory,
            host=host,
            port=port,
            max_request_bytes=max_request_bytes,
            request_timeout=request_timeout,
            admission=admission,
        )
    if transport != "threaded":
        raise ValueError(
            f"unknown transport {transport!r}; pick 'threaded' or 'asyncio'"
        )
    return DirectoryHTTPServer(
        directory,
        (host, port),
        max_request_bytes=max_request_bytes,
        request_timeout=request_timeout,
    )


__all__ = [
    "ApiError",
    "DEFAULT_MAX_REQUEST_BYTES",
    "DEFAULT_REQUEST_TIMEOUT",
    "RECOVERING_RETRY_AFTER",
    "DirectoryHTTPServer",
    "DirectoryRequestHandler",
    "serve_directory",
]
