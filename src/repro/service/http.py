"""The form-directory HTTP API — stdlib ``ThreadingHTTPServer``.

Endpoints (all JSON unless noted):

========  ==============  ====================================================
method    path            purpose
========  ==============  ====================================================
POST      ``/classify``   assign a page ``{url, html, backlinks?}`` to its
                          cluster (read-only; micro-batched)
POST      ``/add``        insert (or replace) a source
POST      ``/remove``     drop a source ``{url}``
GET       ``/search``     ``?q=keyword+query&n=3&scope=clusters|pages`` —
                          rank clusters (or managed pages)
GET       ``/clusters``   cluster directory summary
GET       ``/healthz``    liveness + staleness stats
GET       ``/metrics``    Prometheus text format (not JSON)
========  ==============  ====================================================

Every response is either ``{"ok": true, ...}`` or a structured error
``{"ok": false, "error": {"code", "message"}}`` with a matching HTTP
status.  Requests are bounded: bodies above ``max_request_bytes`` are
rejected with 413 before being read into memory, and each connection
gets a socket timeout so a stalled client cannot pin a handler thread.
"""

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.form_page import RawFormPage
from repro.resilience.faults import FaultError
from repro.resilience.retry import RetryError
from repro.service.directory import FormDirectory

#: Default cap on request bodies (form pages are HTML documents; 2 MiB
#: holds anything reasonable and stops accidental uploads).
DEFAULT_MAX_REQUEST_BYTES = 2 * 1024 * 1024

#: Default per-connection socket timeout (seconds).
DEFAULT_REQUEST_TIMEOUT = 30.0

#: ``Retry-After`` hint (seconds) sent with 503 while the directory is
#: recovering (journal replay / drift repair in flight).
RECOVERING_RETRY_AFTER = 1


class ApiError(Exception):
    """An error with a wire representation.  ``retry_after`` (seconds)
    adds a ``Retry-After`` header — back-pressure errors (503) use it."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


def _raw_page_from_body(body: dict) -> RawFormPage:
    url = body.get("url")
    html = body.get("html")
    if not isinstance(url, str) or not url:
        raise ApiError(400, "bad_request", "'url' must be a non-empty string")
    if not isinstance(html, str) or not html:
        raise ApiError(400, "bad_request", "'html' must be a non-empty string")
    backlinks = body.get("backlinks", [])
    anchor_texts = body.get("anchor_texts", [])
    if not isinstance(backlinks, list) or not all(
        isinstance(item, str) for item in backlinks
    ):
        raise ApiError(400, "bad_request", "'backlinks' must be a string list")
    if not isinstance(anchor_texts, list) or not all(
        isinstance(item, str) for item in anchor_texts
    ):
        raise ApiError(
            400, "bad_request", "'anchor_texts' must be a string list"
        )
    return RawFormPage(
        url=url,
        html=html,
        backlinks=list(backlinks),
        label=None,
        anchor_texts=list(anchor_texts),
    )


class DirectoryRequestHandler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`FormDirectory`."""

    server_version = "repro-directory/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------

    def setup(self) -> None:
        super().setup()
        self.connection.settimeout(self.server.request_timeout)

    def log_message(self, format: str, *args) -> None:
        # Access logging is the metrics registry's job; keep stderr for
        # real errors only.
        pass

    @property
    def directory(self) -> FormDirectory:
        return self.server.directory

    @property
    def metrics_registry(self):
        """Where request metrics go — the directory's registry here;
        subclasses without a directory (the distrib router) override."""
        return self.directory.metrics

    def _observe(self, endpoint: str, status: int, started: float) -> None:
        metrics = self.metrics_registry
        elapsed = self._now() - started
        metrics.histogram(
            "http_request_seconds", "Request latency", endpoint=endpoint
        ).observe(elapsed)
        metrics.counter(
            "http_requests_total", "Requests served",
            endpoint=endpoint, status=str(status),
        ).inc()

    @staticmethod
    def _now() -> float:
        return time.perf_counter()

    def _send_json(
        self, status: int, payload: dict,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(self, error: ApiError) -> None:
        headers: Tuple[Tuple[str, str], ...] = ()
        if error.retry_after is not None:
            headers = (("Retry-After", str(error.retry_after)),)
        self._send_json(
            error.status,
            {"ok": False,
             "error": {"code": error.code, "message": error.message}},
            extra_headers=headers,
        )

    def _read_json_body(self) -> dict:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise ApiError(411, "length_required", "Content-Length required")
        try:
            length = int(length_header)
        except ValueError:
            raise ApiError(400, "bad_request", "malformed Content-Length")
        if length < 0:
            raise ApiError(400, "bad_request", "malformed Content-Length")
        if length > self.server.max_request_bytes:
            raise ApiError(
                413, "payload_too_large",
                f"request body {length} bytes exceeds limit "
                f"{self.server.max_request_bytes}",
            )
        data = self.rfile.read(length)
        try:
            body = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(400, "bad_request", f"invalid JSON body: {exc}")
        if not isinstance(body, dict):
            raise ApiError(400, "bad_request", "body must be a JSON object")
        return body

    # -- dispatch -----------------------------------------------------

    def get_routes(self) -> dict:
        """GET route table; subclasses extend (e.g. the distrib shard's
        ``/replication/*`` endpoints)."""
        return {
            "/healthz": self._get_healthz,
            "/metrics": self._get_metrics,
            "/clusters": self._get_clusters,
            "/search": self._get_search,
        }

    def post_routes(self) -> dict:
        """POST route table; subclasses extend."""
        return {
            "/classify": self._post_classify,
            "/add": self._post_add,
            "/remove": self._post_remove,
        }

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        split = urlsplit(self.path)
        endpoint = split.path.rstrip("/") or "/"
        self._dispatch(endpoint, self.get_routes(), query=parse_qs(split.query))

    def do_POST(self) -> None:  # noqa: N802
        endpoint = urlsplit(self.path).path.rstrip("/")
        self._dispatch(endpoint, self.post_routes())

    def _dispatch(self, endpoint: str, routes: dict, **kwargs) -> None:
        started = self._now()
        status = 500
        try:
            handler = routes.get(endpoint)
            if handler is None:
                raise ApiError(
                    404, "not_found", f"no such endpoint: {endpoint!r}"
                )
            status = handler(**kwargs)
        except ApiError as error:
            status = error.status
            try:
                self._send_error_json(error)
            except (BrokenPipeError, ConnectionResetError, socket.timeout):
                pass
        except (BrokenPipeError, ConnectionResetError, socket.timeout):
            status = 499  # client went away; nothing to send
        except TimeoutError as exc:
            status = 504
            self._send_error_json(ApiError(504, "timeout", str(exc)))
        except (RetryError, FaultError) as exc:
            # Resilience-layer failures (retries exhausted, permanent
            # upstream fault, open circuit breaker): the request failed
            # but the directory is intact — tell clients to back off.
            status = 503
            try:
                self._send_error_json(
                    ApiError(503, "upstream_unavailable",
                             f"{type(exc).__name__}: {exc}")
                )
            except (BrokenPipeError, ConnectionResetError, socket.timeout):
                pass
        except Exception as exc:  # structured 500, never a stack trace
            status = 500
            try:
                self._send_error_json(
                    ApiError(500, "internal", f"{type(exc).__name__}: {exc}")
                )
            except (BrokenPipeError, ConnectionResetError, socket.timeout):
                pass
        finally:
            self._observe(endpoint.lstrip("/") or "root", status, started)

    # -- GET handlers -------------------------------------------------

    def _get_healthz(self, query: dict) -> int:
        # Grade first, lock-free: during recovery (journal replay, a
        # drift repair holding the write lock) ``stats()`` would block
        # on the read lock — exactly when health probes must not hang.
        state = self.directory.health_state()
        if state == "recovering":
            data = json.dumps(
                {"ok": False, "status": state,
                 "retry_after_seconds": RECOVERING_RETRY_AFTER}
            ).encode("utf-8")
            self.send_response(503)
            self.send_header(
                "Content-Type", "application/json; charset=utf-8"
            )
            self.send_header("Retry-After", str(RECOVERING_RETRY_AFTER))
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
            return 503
        self._send_json(200, {"ok": True, "status": state,
                              **self.directory.stats()})
        return 200

    def _get_metrics(self, query: dict) -> int:
        data = self.directory.metrics.render().encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)
        return 200

    def _get_clusters(self, query: dict) -> int:
        max_urls = self._int_param(query, "max_urls", 5, low=0, high=100)
        self._send_json(
            200,
            {"ok": True,
             "clusters": self.directory.clusters_summary(max_urls=max_urls)},
        )
        return 200

    def _get_search(self, query: dict) -> int:
        terms = query.get("q", [""])[0]
        if not terms.strip():
            raise ApiError(400, "bad_request", "missing query parameter 'q'")
        n = self._int_param(query, "n", 3, low=1, high=100)
        scope = query.get("scope", ["clusters"])[0]
        if scope == "clusters":
            hits = self.directory.search(terms, n=n)
        elif scope == "pages":
            hits = self.directory.search_pages(terms, n=n)
        else:
            raise ApiError(
                400, "bad_request",
                "'scope' must be 'clusters' or 'pages'",
            )
        self._send_json(
            200, {"ok": True, "query": terms, "scope": scope, "hits": hits}
        )
        return 200

    @staticmethod
    def _int_param(query: dict, name: str, default: int,
                   low: int, high: int) -> int:
        values = query.get(name)
        if not values:
            return default
        try:
            value = int(values[0])
        except ValueError:
            raise ApiError(400, "bad_request", f"'{name}' must be an integer")
        if not low <= value <= high:
            raise ApiError(
                400, "bad_request", f"'{name}' must be in [{low}, {high}]"
            )
        return value

    # -- POST handlers ------------------------------------------------

    def _post_classify(self) -> int:
        body = self._read_json_body()
        raw = _raw_page_from_body(body)
        outcome = self.directory.classify(
            raw, timeout=self.server.request_timeout
        )
        self._send_json(
            200,
            {
                "ok": True,
                "url": outcome.url,
                "cluster": outcome.cluster,
                "similarity": outcome.similarity,
                "top_terms": outcome.top_terms,
                "cached": outcome.cached,
                "batch_size": outcome.batch_size,
            },
        )
        return 200

    def _post_add(self) -> int:
        body = self._read_json_body()
        raw = _raw_page_from_body(body)
        cluster, size = self.directory.add(raw)
        self._send_json(
            200,
            {"ok": True, "url": raw.url, "cluster": cluster,
             "cluster_size": size},
        )
        return 200

    def _post_remove(self) -> int:
        body = self._read_json_body()
        url = body.get("url")
        if not isinstance(url, str) or not url:
            raise ApiError(400, "bad_request",
                           "'url' must be a non-empty string")
        removed = self.directory.remove(url)
        self._send_json(200, {"ok": True, "url": url, "removed": removed})
        return 200


class DirectoryHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`FormDirectory`."""

    daemon_threads = True
    allow_reuse_address = True
    # socketserver's default accept backlog is 5; a burst of concurrent
    # clients (the whole point of micro-batching) would see kernel
    # connection resets before the server ever accepts them.
    request_queue_size = 128

    def __init__(
        self,
        directory: FormDirectory,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.directory = directory
        self.max_request_bytes = max_request_bytes
        self.request_timeout = request_timeout
        super().__init__(address, DirectoryRequestHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def base_url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def serve_in_thread(self) -> threading.Thread:
        """Start serving on a daemon thread (for tests and embedding)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-http", daemon=True
        )
        thread.start()
        return thread

    def shut_down(self) -> None:
        """Stop serving and release the socket and batch worker."""
        self.shutdown()
        self.server_close()
        self.directory.close()


def serve_directory(
    directory: FormDirectory,
    host: str = "127.0.0.1",
    port: int = 0,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
) -> DirectoryHTTPServer:
    """Bind a server for ``directory`` (port 0 picks an ephemeral port)."""
    return DirectoryHTTPServer(
        directory,
        (host, port),
        max_request_bytes=max_request_bytes,
        request_timeout=request_timeout,
    )


__all__ = [
    "ApiError",
    "DEFAULT_MAX_REQUEST_BYTES",
    "DEFAULT_REQUEST_TIMEOUT",
    "DirectoryHTTPServer",
    "DirectoryRequestHandler",
    "serve_directory",
]
