"""The transport-neutral JSON application layer.

Every HTTP face of the directory (single node, shard, replica, router)
is a table of routes over some serving object.  This module factors the
*application* out of the *transport*: a :class:`BaseApp` maps one parsed
request — ``(method, target, body)`` — to a :class:`Response`, with the
same structured-error mapping, request metrics, and JSON encoding no
matter which connection layer carried the bytes.

Two transports drive apps today:

* :mod:`repro.service.http` — the original ``ThreadingHTTPServer``
  (one thread per connection);
* :mod:`repro.service.aio` — the ``asyncio.Protocol`` front end with
  admission control and load shedding.

Because both call :meth:`BaseApp.handle` and both serialize through
:func:`json_bytes`, the JSON bodies they produce are byte-identical by
construction — ``tests/test_service_aio.py`` pins that across every
endpoint.

Handlers *return* :class:`Response` objects; they never touch a socket.
Transport concerns (reading the body off the wire, ``Connection``
header handling, write errors) stay in the transports, but the
Content-Length admission checks (411/400/413) live here so the two
transports reject malformed framing with the same structured bodies.
"""

import json
import time
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.form_page import RawFormPage
from repro.resilience.faults import FaultError
from repro.resilience.journal import StaleEpochError
from repro.resilience.retry import RetryError

#: Default cap on request bodies (form pages are HTML documents; 2 MiB
#: holds anything reasonable and stops accidental uploads).
DEFAULT_MAX_REQUEST_BYTES = 2 * 1024 * 1024

#: Default per-request timeout (seconds) — the classify wait bound and,
#: on the threaded transport, the per-connection socket timeout.
DEFAULT_REQUEST_TIMEOUT = 30.0

#: ``Retry-After`` hint (seconds) sent with 503 while the directory is
#: recovering (journal replay / drift repair in flight).
RECOVERING_RETRY_AFTER = 1

JSON_CONTENT_TYPE = "application/json; charset=utf-8"
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ClientDisconnected(Exception):
    """Raised by a transport's ``read_body`` callable when the client
    vanished mid-request (reset, broken pipe, read timeout).  The app
    observes the request as status 499 and re-raises so the transport
    can drop the connection without writing anything."""


class ApiError(Exception):
    """An error with a wire representation.  ``retry_after`` (seconds)
    adds a ``Retry-After`` header — back-pressure errors (429/503) use
    it.  ``extra`` merges additional machine-readable keys into the
    wire ``error`` object (e.g. the fencing 409 carries the rejecting
    node's current ``epoch`` so clients can re-resolve the leader)."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[int] = None,
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.extra = dict(extra) if extra else {}


class Response:
    """One finished response: status, body bytes, and headers the
    transport must write (it adds its own framing headers on top)."""

    __slots__ = ("status", "body", "content_type", "extra_headers")

    def __init__(
        self,
        status: int,
        body: bytes,
        content_type: str = JSON_CONTENT_TYPE,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.extra_headers = tuple(extra_headers)


def json_bytes(payload: dict) -> bytes:
    """The one JSON serializer every transport shares (byte parity)."""
    return json.dumps(payload).encode("utf-8")


def json_response(
    status: int,
    payload: dict,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> Response:
    return Response(status, json_bytes(payload), extra_headers=extra_headers)


def error_response(error: ApiError) -> Response:
    headers: Tuple[Tuple[str, str], ...] = ()
    if error.retry_after is not None:
        headers = (("Retry-After", str(error.retry_after)),)
    payload = {"code": error.code, "message": error.message}
    payload.update(error.extra)
    return json_response(
        error.status,
        {"ok": False, "error": payload},
        extra_headers=headers,
    )


def check_content_length(
    length_header: Optional[str], max_request_bytes: int
) -> int:
    """Validate a request's Content-Length before any body byte is
    read.  Shared by both transports so 411/400/413 carry identical
    structured bodies."""
    if length_header is None:
        raise ApiError(411, "length_required", "Content-Length required")
    try:
        length = int(length_header)
    except ValueError:
        raise ApiError(400, "bad_request", "malformed Content-Length")
    if length < 0:
        raise ApiError(400, "bad_request", "malformed Content-Length")
    if length > max_request_bytes:
        raise ApiError(
            413, "payload_too_large",
            f"request body {length} bytes exceeds limit "
            f"{max_request_bytes}",
        )
    return length


def parse_json_body(data: bytes) -> dict:
    try:
        body = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ApiError(400, "bad_request", f"invalid JSON body: {exc}")
    if not isinstance(body, dict):
        raise ApiError(400, "bad_request", "body must be a JSON object")
    return body


def _raw_page_from_body(body: dict) -> RawFormPage:
    url = body.get("url")
    html = body.get("html")
    if not isinstance(url, str) or not url:
        raise ApiError(400, "bad_request", "'url' must be a non-empty string")
    if not isinstance(html, str) or not html:
        raise ApiError(400, "bad_request", "'html' must be a non-empty string")
    backlinks = body.get("backlinks", [])
    anchor_texts = body.get("anchor_texts", [])
    if not isinstance(backlinks, list) or not all(
        isinstance(item, str) for item in backlinks
    ):
        raise ApiError(400, "bad_request", "'backlinks' must be a string list")
    if not isinstance(anchor_texts, list) or not all(
        isinstance(item, str) for item in anchor_texts
    ):
        raise ApiError(
            400, "bad_request", "'anchor_texts' must be a string list"
        )
    return RawFormPage(
        url=url,
        html=html,
        backlinks=list(backlinks),
        label=None,
        anchor_texts=list(anchor_texts),
    )


class BaseApp:
    """Route tables + dispatch + error mapping, transport-free.

    Subclasses provide ``get_routes()`` / ``post_routes()`` (endpoint →
    handler), a ``metrics_registry`` property, and a ``server_version``
    string for the transport's ``Server`` header.  GET handlers take the
    parsed query dict; POST handlers take the parsed JSON body dict.
    Both return a :class:`Response`.
    """

    server_version = "repro-app/1.0"

    #: Routes that must stay answerable while the heavy routes saturate
    #: — the asyncio transport gives them their own concurrency budget.
    CHEAP_ROUTES = frozenset({"/healthz", "/metrics"})

    def __init__(
        self, request_timeout: float = DEFAULT_REQUEST_TIMEOUT
    ) -> None:
        self.request_timeout = request_timeout

    # -- to be provided by subclasses ---------------------------------

    @property
    def metrics_registry(self):
        raise NotImplementedError

    def get_routes(self) -> Dict[str, Callable]:
        return {}

    def post_routes(self) -> Dict[str, Callable]:
        return {}

    # -- dispatch -----------------------------------------------------

    @staticmethod
    def split_target(target: str) -> Tuple[str, str]:
        """``target`` ("/search?q=x") → (normalized endpoint, query)."""
        split = urlsplit(target)
        return split.path.rstrip("/") or "/", split.query

    def route_class(self, endpoint: str) -> str:
        """``"cheap"`` (health/metrics) or ``"heavy"`` (everything
        else) — the admission-control budget this endpoint draws from."""
        return "cheap" if endpoint in self.CHEAP_ROUTES else "heavy"

    @staticmethod
    def _now() -> float:
        return time.perf_counter()

    def observe(self, endpoint: str, status: int, started: float) -> None:
        metrics = self.metrics_registry
        elapsed = self._now() - started
        metrics.histogram(
            "http_request_seconds", "Request latency", endpoint=endpoint
        ).observe(elapsed)
        metrics.counter(
            "http_requests_total", "Requests served",
            endpoint=endpoint, status=str(status),
        ).inc()

    def handle(
        self,
        method: str,
        target: str,
        read_body: Optional[Callable[[], bytes]] = None,
    ) -> Response:
        """One request → one :class:`Response`.  Never raises: every
        failure maps to the structured-error body the threaded server
        always produced (``{"ok": false, "error": {code, message}}``).

        ``read_body`` supplies the raw body bytes for POSTs; it may
        raise :class:`ApiError` (the threaded transport's Content-Length
        checks run inside it, so 411/413 observe like any other error).
        """
        started = self._now()
        endpoint, query_string = self.split_target(target)
        try:
            if method == "GET":
                handler = self.get_routes().get(endpoint)
                if handler is None:
                    raise ApiError(
                        404, "not_found", f"no such endpoint: {endpoint!r}"
                    )
                response = handler(parse_qs(query_string))
            elif method == "POST":
                handler = self.post_routes().get(endpoint)
                if handler is None:
                    raise ApiError(
                        404, "not_found", f"no such endpoint: {endpoint!r}"
                    )
                data = read_body() if read_body is not None else b""
                response = handler(parse_json_body(data))
            else:
                raise ApiError(
                    405, "method_not_allowed",
                    f"unsupported method {method!r}",
                )
        except ClientDisconnected:
            self.observe(endpoint.lstrip("/") or "root", 499, started)
            raise
        except ApiError as error:
            response = error_response(error)
        except StaleEpochError as exc:
            # The fencing rejection: this node's epoch is stale (it was
            # deposed, or a write raced a promotion).  409 rather than
            # 5xx — the node is healthy, the *request* went to the wrong
            # leader; the structured body carries the current epoch so
            # clients re-resolve instead of blind-retrying.
            response = error_response(
                ApiError(
                    409, "stale_epoch", str(exc),
                    extra={"epoch": exc.epoch, "offered": exc.offered},
                )
            )
        except TimeoutError as exc:
            response = error_response(ApiError(504, "timeout", str(exc)))
        except (RetryError, FaultError) as exc:
            # Resilience-layer failures (retries exhausted, permanent
            # upstream fault, open circuit breaker): the request failed
            # but the directory is intact — tell clients to back off.
            response = error_response(
                ApiError(503, "upstream_unavailable",
                         f"{type(exc).__name__}: {exc}")
            )
        except Exception as exc:  # structured 500, never a stack trace
            response = error_response(
                ApiError(500, "internal", f"{type(exc).__name__}: {exc}")
            )
        self.observe(endpoint.lstrip("/") or "root", response.status, started)
        return response

    # -- shared parameter helpers -------------------------------------

    @staticmethod
    def _int_param(query: dict, name: str, default: int,
                   low: int, high: int) -> int:
        values = query.get(name)
        if not values:
            return default
        try:
            value = int(values[0])
        except ValueError:
            raise ApiError(400, "bad_request", f"'{name}' must be an integer")
        if not low <= value <= high:
            raise ApiError(
                400, "bad_request", f"'{name}' must be in [{low}, {high}]"
            )
        return value


class DirectoryApp(BaseApp):
    """The single-node form-directory API over a
    :class:`~repro.service.directory.FormDirectory`."""

    server_version = "repro-directory/1.0"

    def __init__(
        self,
        directory,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        super().__init__(request_timeout)
        self._directory = directory

    @property
    def directory(self):
        return self._directory

    @property
    def metrics_registry(self):
        return self.directory.metrics

    def close(self) -> None:
        self.directory.close()

    def get_routes(self) -> Dict[str, Callable]:
        return {
            "/healthz": self._get_healthz,
            "/metrics": self._get_metrics,
            "/clusters": self._get_clusters,
            "/search": self._get_search,
        }

    def post_routes(self) -> Dict[str, Callable]:
        return {
            "/classify": self._post_classify,
            "/add": self._post_add,
            "/remove": self._post_remove,
        }

    # -- GET handlers -------------------------------------------------

    def _get_healthz(self, query: dict) -> Response:
        # Grade first, lock-free: during recovery (journal replay, a
        # drift repair holding the write lock) ``stats()`` would block
        # on the read lock — exactly when health probes must not hang.
        state = self.directory.health_state()
        if state == "recovering":
            return json_response(
                503,
                {"ok": False, "status": state,
                 "retry_after_seconds": RECOVERING_RETRY_AFTER},
                extra_headers=(
                    ("Retry-After", str(RECOVERING_RETRY_AFTER)),
                ),
            )
        return json_response(
            200, {"ok": True, "status": state, **self.directory.stats()}
        )

    def _get_metrics(self, query: dict) -> Response:
        return Response(
            200,
            self.metrics_registry.render().encode("utf-8"),
            content_type=METRICS_CONTENT_TYPE,
        )

    def _get_clusters(self, query: dict) -> Response:
        max_urls = self._int_param(query, "max_urls", 5, low=0, high=100)
        return json_response(
            200,
            {"ok": True,
             "clusters": self.directory.clusters_summary(max_urls=max_urls)},
        )

    def _search_params(self, query: dict) -> Tuple[str, int, str]:
        terms = query.get("q", [""])[0]
        if not terms.strip():
            raise ApiError(400, "bad_request", "missing query parameter 'q'")
        n = self._int_param(query, "n", 3, low=1, high=100)
        scope = query.get("scope", ["clusters"])[0]
        if scope not in ("clusters", "pages"):
            raise ApiError(
                400, "bad_request", "'scope' must be 'clusters' or 'pages'"
            )
        return terms, n, scope

    def _get_search(self, query: dict) -> Response:
        terms, n, scope = self._search_params(query)
        if scope == "clusters":
            hits = self.directory.search(terms, n=n)
        else:
            hits = self.directory.search_pages(terms, n=n)
        return json_response(
            200, {"ok": True, "query": terms, "scope": scope, "hits": hits}
        )

    # -- POST handlers ------------------------------------------------

    def _post_classify(self, body: dict) -> Response:
        raw = _raw_page_from_body(body)
        outcome = self.directory.classify(raw, timeout=self.request_timeout)
        return json_response(
            200,
            {
                "ok": True,
                "url": outcome.url,
                "cluster": outcome.cluster,
                "similarity": outcome.similarity,
                "top_terms": outcome.top_terms,
                "cached": outcome.cached,
                "batch_size": outcome.batch_size,
            },
        )

    def _post_add(self, body: dict) -> Response:
        raw = _raw_page_from_body(body)
        cluster, size = self.directory.add(raw)
        return json_response(
            200,
            {"ok": True, "url": raw.url, "cluster": cluster,
             "cluster_size": size},
        )

    def _post_remove(self, body: dict) -> Response:
        url = body.get("url")
        if not isinstance(url, str) or not url:
            raise ApiError(400, "bad_request",
                           "'url' must be a non-empty string")
        removed = self.directory.remove(url)
        return json_response(
            200, {"ok": True, "url": url, "removed": removed}
        )


__all__ = [
    "ApiError",
    "BaseApp",
    "DEFAULT_MAX_REQUEST_BYTES",
    "DEFAULT_REQUEST_TIMEOUT",
    "DirectoryApp",
    "JSON_CONTENT_TYPE",
    "METRICS_CONTENT_TYPE",
    "RECOVERING_RETRY_AFTER",
    "Response",
    "ClientDisconnected",
    "check_content_length",
    "error_response",
    "json_bytes",
    "json_response",
    "parse_json_body",
]
