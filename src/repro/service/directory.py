"""The thread-safe form directory — the serving façade.

:class:`FormDirectory` wraps an
:class:`~repro.core.incremental.IncrementalOrganizer` for concurrent
use:

* a **readers-writer lock** lets any number of classify/search requests
  score in parallel while add/remove/recluster take exclusive access;
* a **micro-batching queue** coalesces concurrent classify requests
  into a single batched ``page_centroid_matrix`` call — under load, one
  engine batch serves many requests (the ``/metrics`` counters
  ``classify_requests_total`` vs ``classify_batches_total`` make the
  coalescing observable);
* an **LRU result cache** keyed by content hash short-circuits repeat
  classifications of the same page; entries are validated against a
  directory *generation* that every mutation bumps, so a cache hit can
  never serve a pre-mutation assignment;
* **drift-triggered re-clustering**: when the organizer's running
  cohesion falls below its drift threshold, a background thread runs
  :meth:`~repro.core.incremental.IncrementalOrganizer.recluster` under
  the write lock (classification never blocks on the decision, only —
  briefly — on the repair itself).

Vectorization (HTML parsing + Equation 1) happens *outside* every lock:
it touches only the frozen corpus statistics, so requests pay the
parsing cost in parallel and the locks protect just the cluster state.

The resilience layer (docs/RESILIENCE.md) threads through here too:

* an optional **write-ahead journal** records every add/remove/recluster
  (fsynced, before the mutation) so ``snapshot + journal`` replays a
  killed directory back to bit-identical state; :meth:`checkpoint` folds
  the log into a fresh snapshot and truncates it;
* the batching and drift-repair threads run under a
  :class:`~repro.resilience.supervisor.SupervisedWorker` — a crash is
  logged, counted (``worker_restarts_total``) and restarted with
  backoff instead of silently killing the feature;
* request vectorization is an injection seam (``"directory.vectorize"``)
  guarded by the config's retry policy and a directory-owned circuit
  breaker;
* :meth:`health_state` grades the directory ``ok`` / ``degraded`` /
  ``recovering`` for ``/healthz`` without touching the read lock.
"""

import hashlib
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.form_page import FormPage, RawFormPage
from repro.core.incremental import IncrementalOrganizer
from repro.core.pipeline import _label_terms
from repro.core.similarity import BackendSpec
from repro.index.directory_index import DirectoryIndex
from repro.resilience.faults import inject
from repro.resilience.journal import (
    DirectoryJournal,
    JournalError,
    StaleEpochError,
    open_journal,
    record_epoch,
)
from repro.resilience.retry import CIRCUIT_OPEN
from repro.resilience.stats import STATS
from repro.resilience.supervisor import SupervisedWorker
from repro.service.metrics import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.service.snapshot import Snapshot, _page_from_json, _page_to_json
from repro.text.analyzer import TextAnalyzer
from repro.vsm.vector import SparseVector, cosine_similarity


class RWLock:
    """A writer-preferring readers-writer lock.

    Many readers may hold the lock at once; a writer waits for them to
    drain and blocks new readers while waiting, so a steady classify
    stream cannot starve adds.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


@dataclass
class ClassifyOutcome:
    """One served classification."""

    url: str
    cluster: int
    similarity: float
    top_terms: List[str]
    cached: bool = False
    batch_size: int = 1


class _PendingClassify:
    """One queued classify request awaiting the next batch flush."""

    __slots__ = ("page", "event", "result", "error", "generation")

    def __init__(self, page: FormPage) -> None:
        self.page = page
        self.event = threading.Event()
        self.result: Optional[Tuple[int, float, int]] = None
        self.error: Optional[BaseException] = None
        self.generation = -1


def content_hash(raw: RawFormPage) -> str:
    """A stable digest of everything classification depends on."""
    hasher = hashlib.sha256()
    for part in (
        raw.url,
        raw.html,
        "\x00".join(sorted(raw.backlinks)),
        "\x00".join(raw.anchor_texts),
    ):
        hasher.update(part.encode("utf-8", "replace"))
        hasher.update(b"\x1f")
    return hasher.hexdigest()


class FormDirectory:
    """A concurrent, observable form-directory over an organizer.

    Parameters
    ----------
    organizer:
        The maintained clustering (typically from
        :meth:`~repro.service.snapshot.Snapshot.to_organizer`).
    batch_window_ms:
        How long the batching worker waits after the first queued
        request before flushing, collecting concurrent requests into one
        engine call.  ``0`` flushes immediately but still coalesces
        whatever queued while the previous batch was scoring.  ``None``
        disables the queue entirely — every request scores on its own
        thread (the unbatched reference mode).
    cache_size:
        LRU capacity of the classify result cache (0 disables).
    auto_recluster:
        Repair drift in a background thread when the organizer reports
        ``needs_reclustering``.
    metrics:
        A :class:`~repro.service.metrics.MetricsRegistry` to instrument
        into (one is created when omitted).
    index:
        Inverted-index mode for /search and /search?scope=pages:
        ``"auto"`` (on at scale), ``"on"``, ``"off"``.  ``None`` (the
        default) follows ``organizer.config.index``.  Even ``"off"``
        keeps the per-generation combined-centroid cache, so no query
        re-materializes centroid sums inside the read lock.
    journal:
        Write-ahead journal for crash safety: a path, an open
        :class:`~repro.resilience.journal.DirectoryJournal`, or ``None``
        (no journaling).  Existing records are replayed *before* the
        directory serves — restarting from ``snapshot + journal``
        reproduces the killed directory bit-identically (assignments,
        generation, classify outputs).
    """

    def __init__(
        self,
        organizer: IncrementalOrganizer,
        batch_window_ms: Optional[float] = 5.0,
        cache_size: int = 1024,
        auto_recluster: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        index: Optional[str] = None,
        journal: Union[str, DirectoryJournal, None] = None,
    ) -> None:
        # Lifecycle state first, before anything that can raise:
        # ``close()`` must be safe on a partially constructed directory.
        self._closed = False
        self._stopped = False
        self._worker: Optional[SupervisedWorker] = None
        self._journal: Optional[DirectoryJournal] = None
        self._replaying = False
        self._queue: List[_PendingClassify] = []
        self._queue_cond = threading.Condition()
        self._recluster_lock = threading.Lock()
        self._recluster_running = False
        self.n_reclusters = 0
        self.n_replayed = 0

        if batch_window_ms is not None and batch_window_ms < 0:
            batch_window_ms = None
        self.organizer = organizer
        self.vectorizer = organizer.vectorizer
        # Weighting-scheme label for metrics/healthz: which formula the
        # served vectors (and every query-time transform) were built with.
        self.scheme_name = getattr(self.vectorizer.scheme, "name", "eq1")
        self.batch_window_ms = batch_window_ms
        self.cache_size = max(0, int(cache_size))
        self.auto_recluster = auto_recluster
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.started_unix = time.time()

        resilience = organizer.config.resilience
        self._retry_policy = resilience.policy()
        self._breaker = resilience.breaker()

        self._rw = RWLock()
        self._generation = 0
        self._analyzer = TextAnalyzer()
        self._index = DirectoryIndex(
            index if index is not None else organizer.config.index
        )
        self._index.rebuild(organizer, self._generation)

        self._cache: "OrderedDict[str, Tuple[int, int, float, List[str]]]" = (
            OrderedDict()
        )
        self._cache_lock = threading.Lock()

        # Fencing epoch for unjournaled directories (tailing replicas):
        # tracks the highest epoch seen in replicated records.  With a
        # journal attached the journal's own epoch is authoritative —
        # see the ``epoch`` property.
        self._epoch = 0
        self.n_stale_dropped = 0

        self._journal = open_journal(journal)
        if self._journal is not None:
            self._replay_journal()

        if self.batch_window_ms is not None:
            self._worker = SupervisedWorker(
                self._flush_loop, name="repro-classify-batcher",
                backoff_base=0.01,
            )
            self._worker.start()

        self._instrument()

    # ----------------------------------------------------------------
    # Construction helpers.
    # ----------------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls,
        snapshot: Union[Snapshot, str],
        backend: BackendSpec = None,
        drift_threshold: float = 0.7,
        index: Optional[str] = None,
        **kwargs,
    ) -> "FormDirectory":
        """Cold-start a directory from a snapshot (object or path).

        ``index`` overrides the snapshot config's inverted-index mode
        for both the organizer (classify candidates) and the directory
        (search).
        """
        if not isinstance(snapshot, Snapshot):
            snapshot = Snapshot.load(snapshot)
        organizer = snapshot.to_organizer(
            backend=backend, drift_threshold=drift_threshold, index=index
        )
        return cls(organizer, index=index, **kwargs)

    # ----------------------------------------------------------------
    # Write-ahead journal: append-before-apply, replay on start.
    # ----------------------------------------------------------------

    def _journal_append(self, record: Dict[str, object]) -> None:
        """Durably log a mutation *before* applying it.  Caller holds
        the write lock (which is what keeps log order = apply order).
        A failed append aborts the mutation — the client sees the error,
        the state stays consistent, and recovery drops any torn bytes.
        """
        if self._journal is not None and not self._replaying:
            self._journal.append(record)

    def _apply_journal_record(self, record: Dict[str, object]) -> None:
        """Re-apply one logged mutation through the live code paths.

        Replay journals nothing (``_replaying`` guards the appends) and
        schedules no drift repair: every repair that actually ran was
        itself journaled as a ``recluster`` record, so replay reproduces
        the original interleaving instead of re-deciding it.
        """
        op = record.get("op")
        if op == "add":
            page = _page_from_json(record["page"])
            with self._rw.write_locked():
                self.organizer.add_vectorized(page)
                self._generation += 1
                self._index.page_upsert(page)
                self._index.sync_clusters(self.organizer, self._generation)
        elif op == "remove":
            with self._rw.write_locked():
                if self.organizer.remove(str(record.get("url", ""))):
                    self._generation += 1
                    self._index.page_remove(str(record.get("url", "")))
                    self._index.sync_clusters(
                        self.organizer, self._generation
                    )
        elif op == "recluster":
            with self._rw.write_locked():
                self.organizer.recluster()
                self._generation += 1
                self._index.sync_clusters(self.organizer, self._generation)
            self.n_reclusters += 1
        elif op == "epoch":
            # A fencing marker (journal.bump_epoch): no directory state
            # changes, but the epoch floor rises — every later record
            # must carry at least this epoch.
            self._epoch = max(self._epoch, record_epoch(record))
        else:
            raise JournalError(f"unknown journal op {op!r}")

    def _replay_journal(self) -> None:
        """Roll the organizer forward through every intact record.

        Epoch fencing at replay: a running epoch floor rises with each
        ``epoch`` marker, and any record stamped *below* the floor is a
        zombie write — bytes a deposed leader appended after the
        promoted successor's marker — and is dropped, not applied.
        (``journal.replay()`` still returns those records so global
        positions stay stable; the filter lives here, at apply time.)
        """
        records = self._journal.replay()
        if not records:
            return
        self._replaying = True
        floor = 0
        try:
            for record in records:
                epoch = record_epoch(record)
                if record.get("op") == "epoch":
                    floor = max(floor, epoch)
                elif epoch < floor:
                    self.n_stale_dropped += 1
                    STATS.inc("stale_records_dropped")
                    continue
                self._apply_journal_record(record)
            self.n_replayed = len(records)
            STATS.inc("journal_replays")
        finally:
            self._replaying = False

    def apply_replicated(self, record: Dict[str, object]) -> None:
        """Apply one mutation record shipped from a leader's journal.

        The replication path (:mod:`repro.distrib.replica`): records go
        through the same live code paths as journal replay, and — like
        replay — are never re-journaled here (a tailing replica has no
        journal of its own; it adopts the leader's via
        :meth:`attach_journal` only at promotion, *after* draining).
        Raises :class:`~repro.resilience.journal.JournalError` on an
        unknown op and :class:`~repro.resilience.journal.
        StaleEpochError` when the record's epoch is below this
        directory's — a replica that has seen epoch *N* refuses every
        record a deposed epoch-``<N`` leader ships.
        """
        epoch = record_epoch(record)
        current = self.epoch
        if record.get("op") != "epoch" and epoch < current:
            STATS.inc("stale_records_dropped")
            raise StaleEpochError(
                current, epoch, f"replicated {record.get('op')!r} refused"
            )
        self._apply_journal_record(record)
        if epoch > self._epoch:
            self._epoch = epoch

    def attach_journal(
        self, journal: Union[str, DirectoryJournal]
    ) -> DirectoryJournal:
        """Adopt a journal for subsequent writes (replica promotion).

        The journal's existing records must already be applied — the
        promoting replica drains them with :meth:`apply_replicated`
        first; attaching does **not** replay (replaying here would
        double-apply what the tail already delivered).
        """
        with self._rw.write_locked():
            if self._journal is not None:
                raise RuntimeError(
                    "directory already has a write-ahead journal"
                )
            self._journal = open_journal(journal)
            # Reconcile the fencing epoch: neither side may regress.
            # (Promotion bumps the journal first, so normally the
            # journal's epoch is the higher one.)
            if self._journal.epoch < self._epoch:
                self._journal.epoch = self._epoch
            self._epoch = self._journal.epoch
        return self._journal

    @property
    def journal(self) -> Optional[DirectoryJournal]:
        """The attached write-ahead journal (``None`` when unjournaled
        — e.g. a tailing replica)."""
        return self._journal

    @property
    def epoch(self) -> int:
        """The fencing epoch this directory serves at.  Journaled
        directories read the journal's durable epoch; unjournaled ones
        (tailing replicas) track the highest epoch applied from the
        replication stream."""
        if self._journal is not None:
            return max(self._journal.epoch, self._epoch)
        return self._epoch

    def snapshot(
        self,
        algorithm: str = "incremental",
        meta: Optional[Dict[str, object]] = None,
    ) -> Snapshot:
        """Snapshot the live state in memory (no file, journal intact).

        The ``/replication/snapshot`` bootstrap payload: under the write
        lock so the captured state and the recorded ``journal_position``
        (the global record position the state includes) are consistent —
        a replica materializing this snapshot resumes tailing from
        exactly that position.
        """
        with self._rw.write_locked():
            snapshot_meta = dict(meta) if meta else {}
            if self._journal is not None:
                snapshot_meta.setdefault(
                    "journal_position", self._journal.next_record
                )
            snapshot_meta.setdefault("epoch", self.epoch)
            return Snapshot.from_organizer(
                self.organizer, algorithm=algorithm, meta=snapshot_meta
            )

    def checkpoint(
        self,
        path,
        algorithm: str = "incremental",
        scope: str = "all",
        meta: Optional[Dict[str, object]] = None,
    ) -> Snapshot:
        """Fold the journal into a durable snapshot.

        Under the write lock (so no mutation lands between the two
        steps): snapshot the live organizer, write it via the fsynced
        atomic writer, *then* shrink the journal.  A crash before the
        save keeps the old snapshot + full journal (the bit-identical
        recovery pair); a crash between save and shrink replays
        mutations the snapshot already contains, which re-inserts the
        same pages and no-ops the removes — a consistent directory over
        exactly the same page set.

        ``scope`` picks what gets folded away:

        * ``"all"`` (default) — truncate the whole journal, sealed
          segments and active tail alike (the single-node behavior).
        * ``"sealed"`` — drop only sealed segments; the active tail
          stays on disk and replays idempotently over the snapshot on
          restart.  This is the replication-friendly mode: the log
          never quiesces, and a leader can checkpoint while replicas
          keep tailing the active segment's eventual seal
          (docs/SHARDING.md).

        The snapshot's ``meta`` records ``journal_position`` — the
        global record position the snapshot state includes — so a
        replica bootstrapping from it knows where to resume tailing.
        """
        if scope not in ("all", "sealed"):
            raise ValueError(
                f"checkpoint scope must be 'all' or 'sealed', got {scope!r}"
            )
        with self._rw.write_locked():
            snapshot_meta = dict(meta) if meta else {}
            if self._journal is not None:
                snapshot_meta.setdefault(
                    "journal_position", self._journal.next_record
                )
            snapshot_meta.setdefault("epoch", self.epoch)
            snapshot = Snapshot.from_organizer(
                self.organizer, algorithm=algorithm, meta=snapshot_meta
            )
            snapshot.save(path)
            if self._journal is not None:
                if scope == "sealed":
                    self._journal.drop_sealed()
                else:
                    self._journal.truncate()
        return snapshot

    def _instrument(self) -> None:
        m = self.metrics
        self._m_requests = m.counter(
            "classify_requests_total", "Classify requests served"
        )
        self._m_cache_hits = m.counter(
            "classify_cache_hits_total", "Classify requests served from cache"
        )
        self._m_batches = m.counter(
            "classify_batches_total", "Engine batch calls made for classify"
        )
        self._m_batch_size = m.histogram(
            "classify_batch_size", "Requests coalesced per engine batch",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_adds = m.counter("directory_adds_total", "Pages added")
        self._m_removes = m.counter("directory_removes_total", "Pages removed")
        self._m_reclusters = m.counter(
            "directory_reclusters_total", "Drift-triggered re-clusterings"
        )
        m.gauge("directory_pages", "Managed pages").set_function(
            lambda: len(self.organizer)
        )
        m.gauge("directory_clusters", "Clusters").set_function(
            lambda: len(self.organizer.clusters)
        )
        m.gauge("directory_cohesion", "Running mean cohesion").set_function(
            lambda: self.organizer.cohesion
        )
        m.gauge(
            "directory_generation", "Mutations since start"
        ).set_function(lambda: self._generation)
        stats = self.organizer.backend.stats
        m.gauge(
            "engine_comparisons_total", "Similarity evaluations (engine rollup)"
        ).set_function(lambda: stats.comparisons)
        m.gauge(
            "engine_cache_hits_total", "Engine compilation reuses"
        ).set_function(lambda: stats.cache_hits)
        m.gauge(
            "engine_build_seconds_total", "Time compiling collections"
        ).set_function(lambda: stats.build_seconds)
        ingest = self.vectorizer.ingest_stats
        m.gauge(
            "ingest_pages_total", "Pages run through text analysis"
        ).set_function(lambda: ingest.pages_total)
        m.gauge(
            "ingest_pages_analyzed_total",
            "Pages actually parsed (analysis-cache misses)",
        ).set_function(lambda: ingest.pages_analyzed)
        m.gauge(
            "ingest_analysis_cache_hits_total",
            "Pages served from the content-hash analysis cache",
        ).set_function(lambda: ingest.cache_hits)
        m.gauge(
            "ingest_map_seconds_total", "Time in the analysis map phase"
        ).set_function(lambda: ingest.map_seconds)
        # One child per executor kind, resolved at scrape time: the live
        # executor reports its pool size, the others read 0.  (Binding
        # ingest.executor as the label here would freeze whatever the
        # executor was at registration.)
        for kind in ("serial", "thread", "process"):
            m.gauge(
                "ingest_workers",
                "Pool size of the most recent ingest run, labeled by executor",
                executor=kind,
            ).set_function(
                lambda kind=kind: (
                    ingest.workers if ingest.executor == kind else 0
                )
            )
        self._m_vectorize_seconds = m.histogram(
            "ingest_vectorize_seconds",
            "Per-request vectorization latency (parse + Equation 1)",
        )
        # Vocabulary observability: the process-wide interning table
        # every SparseVector points into.  Terms only ever grow on the
        # batch path, so a climbing gauge is the early signal that an
        # unbounded corpus needs the streaming path's vocabulary budget
        # (docs/INGESTION.md, "Streaming ingestion").
        from repro.vsm.interning import VOCABULARY

        m.gauge(
            "vocab_terms", "Interned terms in the process-wide term table"
        ).set_function(lambda: len(VOCABULARY))
        m.gauge(
            "vocab_bytes_estimate",
            "Approximate resident bytes of the interning table",
        ).set_function(lambda: VOCABULARY.stats()["bytes_estimate"])
        # Inverted-index observability: structure sizes plus the pruning
        # ratio (exactly-scored rows as a fraction of what full scans
        # would have scored — lower is better; 1.0 means no saving).
        index = self._index
        m.gauge(
            "index_postings", "Posting entries", space="clusters"
        ).set_function(lambda: index.n_cluster_postings)
        m.gauge(
            "index_postings", "Posting entries", space="pages"
        ).set_function(lambda: index.n_page_postings)
        m.gauge(
            "index_terms", "Indexed terms", space="clusters"
        ).set_function(lambda: index.n_cluster_terms)
        m.gauge(
            "index_terms", "Indexed terms", space="pages"
        ).set_function(lambda: index.n_page_terms)
        m.gauge(
            "index_rows_considered_total",
            "Rows an unindexed scan would have scored (indexed queries)",
        ).set_function(lambda: self._retrieval_stats().rows_total)
        m.gauge(
            "index_rows_scored_total",
            "Rows actually scored exactly after posting-list pruning",
        ).set_function(lambda: self._retrieval_stats().rows_scored)
        m.gauge(
            "index_pruning_ratio",
            "Fraction of scan work avoided by the index (1 - scored/total)",
        ).set_function(self._pruning_ratio)
        # Resilience observability (docs/RESILIENCE.md).  The counters
        # live in the process-wide resilience STATS bag (core code must
        # not import the service metrics registry), surfaced here as
        # function gauges — registration is idempotent and scraping
        # never takes a directory lock.
        for name, help_text in (
            ("retry_attempts", "Retries performed by resilience policies"),
            ("retry_giveups", "Calls that exhausted their retry budget"),
            ("degraded_fallbacks", "CAFC-CH runs degraded to CAFC-C"),
            ("worker_restarts", "Supervised worker restarts"),
            ("faults_injected", "Faults fired by the armed chaos plan"),
            ("circuit_opens", "Circuit-breaker trips to OPEN"),
            ("journal_replays", "Journal recoveries performed"),
        ):
            m.gauge(f"{name}_total", help_text).set_function(
                lambda name=name: STATS.get(name)
            )
        m.gauge(
            "circuit_state",
            "Vectorize-seam breaker: 0 closed / 1 half-open / 2 open",
        ).set_function(lambda: self._breaker.state_code)
        m.gauge(
            "journal_records", "Intact records in the write-ahead journal"
        ).set_function(
            lambda: self._journal.n_records if self._journal else 0
        )
        m.gauge(
            "journal_bytes", "Valid bytes in the write-ahead journal"
        ).set_function(
            lambda: self._journal.n_bytes if self._journal else 0
        )
        m.gauge(
            "journal_segments", "Sealed (shippable) journal segments"
        ).set_function(
            lambda: self._journal.n_segments if self._journal else 0
        )
        m.gauge(
            "degraded_mode",
            "Directory health: 0 ok / 1 degraded / 2 recovering",
        ).set_function(self.health_code)

    def _retrieval_stats(self):
        """Roll up retrieval stats across the directory index and (when
        active) the organizer's classify centroid index."""
        from repro.index.retrieval import RetrievalStats

        total = RetrievalStats()
        total.merge(self._index.stats)
        centroid_index = getattr(self.organizer, "centroid_index", None)
        if centroid_index is not None:
            total.merge(centroid_index.stats)
        return total

    def _pruning_ratio(self) -> float:
        stats = self._retrieval_stats()
        if stats.rows_total == 0:
            return 0.0
        return 1.0 - stats.rows_scored / stats.rows_total

    # ----------------------------------------------------------------
    # Classify — the hot path.
    # ----------------------------------------------------------------

    def classify(
        self, raw: RawFormPage, timeout: Optional[float] = 30.0
    ) -> ClassifyOutcome:
        """Assign ``raw`` to its most similar cluster (read-only).

        Cache hit -> answer without scoring.  Batched mode -> the
        request joins the coalescing queue and waits for its flush.
        Unbatched mode -> scores inline under the read lock.
        """
        self._m_requests.inc()
        key = content_hash(raw)
        cached = self._cache_get(key)
        if cached is not None:
            cluster, similarity, terms = cached
            self._m_cache_hits.inc()
            return ClassifyOutcome(
                url=raw.url, cluster=cluster, similarity=similarity,
                top_terms=terms, cached=True,
            )
        page = self._vectorize_timed(raw)

        if self.batch_window_ms is None:
            with self._rw.read_locked():
                generation = self._generation
                cluster, similarity = self.organizer.classify_vectorized(page)
                terms = self._cluster_terms(cluster)
            batch_size = 1
            self._m_batches.inc()
            self._m_batch_size.observe(1)
        else:
            pending = _PendingClassify(page)
            with self._queue_cond:
                if self._stopped:
                    raise RuntimeError("directory is closed")
                self._queue.append(pending)
                self._queue_cond.notify()
            if not pending.event.wait(timeout):
                raise TimeoutError(
                    f"classify of {raw.url!r} timed out after {timeout}s"
                )
            if pending.error is not None:
                raise pending.error
            cluster, similarity, batch_size = pending.result
            generation = pending.generation
            with self._rw.read_locked():
                terms = self._cluster_terms(cluster)

        self._cache_put(key, generation, cluster, similarity, terms)
        return ClassifyOutcome(
            url=raw.url, cluster=cluster, similarity=similarity,
            top_terms=terms, cached=False, batch_size=batch_size,
        )

    def _vectorize_once(self, raw: RawFormPage) -> FormPage:
        """One vectorization attempt, crossing the injection seam."""
        inject("directory.vectorize")
        return self.vectorizer.transform_new(raw)

    def _vectorize_timed(self, raw: RawFormPage) -> FormPage:
        """``transform_new`` with latency observed into ``/metrics``.

        Vectorization happens outside every lock; repeat content (the
        retry path) hits the vectorizer's analysis cache and shows up in
        the sub-millisecond buckets.  The call runs through the
        directory's circuit breaker and the config's retry policy:
        transient faults at the ``"directory.vectorize"`` seam are
        retried with backoff, exhaustion counts a breaker failure, and
        an open breaker fails the request fast
        (:class:`~repro.resilience.retry.CircuitOpenError` — surfaced
        as HTTP 503).
        """
        started = time.perf_counter()
        try:
            page = self._breaker.call(
                self._retry_policy.call, self._vectorize_once, raw
            )
        finally:
            self._m_vectorize_seconds.observe(time.perf_counter() - started)
        return page

    def _flush_loop(self) -> None:
        """The batching worker: wait for work, linger for the window,
        then serve everything queued with ONE engine batch call."""
        window = (self.batch_window_ms or 0.0) / 1000.0
        while True:
            with self._queue_cond:
                while not self._queue and not self._stopped:
                    self._queue_cond.wait()
                if self._stopped and not self._queue:
                    return
            if window > 0.0:
                time.sleep(window)
            with self._queue_cond:
                batch = self._queue
                self._queue = []
            if not batch:
                continue
            try:
                with self._rw.read_locked():
                    generation = self._generation
                    scored = self.organizer.classify_batch(
                        [pending.page for pending in batch]
                    )
                self._m_batches.inc()
                self._m_batch_size.observe(len(batch))
                for pending, (cluster, similarity) in zip(batch, scored):
                    pending.result = (cluster, similarity, len(batch))
                    pending.generation = generation
                    pending.event.set()
            except BaseException as exc:  # propagate to every waiter
                for pending in batch:
                    pending.error = exc
                    pending.event.set()

    # ----------------------------------------------------------------
    # Cache.
    # ----------------------------------------------------------------

    def _cache_get(self, key: str) -> Optional[Tuple[int, float, List[str]]]:
        if not self.cache_size:
            return None
        with self._cache_lock:
            entry = self._cache.get(key)
            if entry is None:
                return None
            generation, cluster, similarity, terms = entry
            if generation != self._generation:
                # Stale: the directory mutated since this was computed.
                del self._cache[key]
                return None
            self._cache.move_to_end(key)
            return cluster, similarity, terms

    def _cache_put(
        self,
        key: str,
        generation: int,
        cluster: int,
        similarity: float,
        terms: List[str],
    ) -> None:
        if not self.cache_size:
            return
        with self._cache_lock:
            if generation != self._generation:
                return  # computed against an already-replaced state
            self._cache[key] = (generation, cluster, similarity, terms)
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    @property
    def generation(self) -> int:
        return self._generation

    # ----------------------------------------------------------------
    # Mutations.
    # ----------------------------------------------------------------

    def add(self, raw: RawFormPage) -> Tuple[int, int]:
        """Insert (or replace) a source.  Returns (cluster index, its
        new size)."""
        page = self._vectorize_timed(raw)
        with self._rw.write_locked():
            self._journal_append({"op": "add", "page": _page_to_json(page)})
            index = self.organizer.add_vectorized(page)
            size = self.organizer.clusters[index].size
            self._generation += 1
            self._index.page_upsert(page)
            self._index.sync_clusters(self.organizer, self._generation)
        self._m_adds.inc()
        self._maybe_schedule_recluster()
        return index, size

    def remove(self, url: str) -> bool:
        """Drop a source.  Returns False when the URL is not managed."""
        with self._rw.write_locked():
            # Journaled even when the URL turns out unmanaged: replay of
            # a no-op remove is itself a no-op, and append-before-apply
            # stays unconditional.
            self._journal_append({"op": "remove", "url": url})
            removed = self.organizer.remove(url)
            if removed:
                self._generation += 1
                self._index.page_remove(url)
                self._index.sync_clusters(self.organizer, self._generation)
        if removed:
            self._m_removes.inc()
        return removed

    # ----------------------------------------------------------------
    # Drift repair.
    # ----------------------------------------------------------------

    def _maybe_schedule_recluster(self) -> None:
        if not self.auto_recluster or not self.organizer.needs_reclustering:
            return
        with self._recluster_lock:
            if self._recluster_running:
                return
            self._recluster_running = True
        # Supervised: a crash in the repair is logged, counted and
        # retried with backoff rather than leaving drift unrepaired and
        # nobody the wiser.  on_exit clears the in-flight flag on every
        # way out (done, gave up, stopped).
        SupervisedWorker(
            self._recluster_once, name="repro-recluster",
            backoff_base=0.05, max_restarts=3,
            on_exit=self._recluster_done,
        ).start()

    def _recluster_once(self) -> None:
        if self.organizer.needs_reclustering:
            self.recluster()

    def _recluster_done(self) -> None:
        with self._recluster_lock:
            self._recluster_running = False

    def recluster(self) -> int:
        """Run drift repair now (blocking).  Returns pages moved."""
        with self._rw.write_locked():
            # recluster() is deterministic given the organizer state, so
            # an op marker is all replay needs to reproduce it exactly.
            self._journal_append({"op": "recluster"})
            moved = self.organizer.recluster()
            self._generation += 1
            # Page vectors survive re-clustering (only membership moved,
            # and that is looked up live); centroid rows are re-derived.
            self._index.sync_clusters(self.organizer, self._generation)
        self.n_reclusters += 1
        self._m_reclusters.inc()
        return moved

    # ----------------------------------------------------------------
    # Read-only views.
    # ----------------------------------------------------------------

    def _cluster_terms(self, index: int, n_terms: int = 6) -> List[str]:
        """Descriptive terms for a cluster, from its live centroid.
        Caller must hold at least the read lock."""
        return _label_terms(
            self.organizer.clusters[index].centroid, n_terms
        )

    def _query_vector(self, query: str) -> SparseVector:
        """Analyze a keyword query with the page-text pipeline."""
        weights: Dict[str, float] = {}
        for term in self._analyzer.analyze(query):
            weights[term] = weights.get(term, 0.0) + 1.0
        return SparseVector(weights)

    def _observe_search(self, scope: str, path: str, started: float) -> None:
        self.metrics.histogram(
            "search_seconds", "Search latency",
            scope=scope, scheme=self.scheme_name,
        ).observe(time.perf_counter() - started)
        self.metrics.counter(
            "search_requests_total", "Search requests served",
            scope=scope, path=path, scheme=self.scheme_name,
        ).inc()

    def _cluster_hit(
        self, index: int, score: float, combined: SparseVector,
        query_vector: SparseVector,
    ) -> Dict[str, object]:
        """One /search hit record.  Caller holds the read lock."""
        return {
            "cluster": index,
            "score": score,
            "matched_terms": sorted(
                term for term in query_vector.terms() if term in combined
            ),
            "top_terms": self._cluster_terms(index),
            "size": self.organizer.clusters[index].size,
        }

    def search(self, query: str, n: int = 3) -> List[Dict[str, object]]:
        """Rank clusters against a keyword query (Section 6 exploration).

        The query is analyzed with the page-text pipeline and scored by
        cosine against each cluster's combined (PC + FC) centroid,
        mirroring :class:`repro.explore.ClusterExplorer.search`.  The
        combined centroids come from the per-generation cache; with the
        index in play, posting-list pruning replaces the scan — same
        hits, same floats, same order (docs/SERVING.md).
        """
        query_vector = self._query_vector(query)
        if not query_vector:
            return []
        started = time.perf_counter()
        with self._rw.read_locked():
            fresh = self._index.generation == self._generation
            if fresh and self._index.use_for_clusters():
                path = "indexed"
                ranked = self._index.top_clusters(
                    query_vector, n,
                    lambda i: cosine_similarity(
                        query_vector, self._index.cluster_combined(i)
                    ),
                )
                hits = [
                    self._cluster_hit(
                        index, score,
                        self._index.cluster_combined(index), query_vector,
                    )
                    for index, score in ranked
                ]
            else:
                path = "scan"
                hits = []
                for index, cluster in enumerate(self.organizer.clusters):
                    if fresh:
                        combined = self._index.cluster_combined(index)
                    else:  # a mutation path forgot to sync; stay correct
                        combined = cluster.centroid.pc.add(cluster.centroid.fc)
                    score = cosine_similarity(query_vector, combined)
                    if score <= 0.0:
                        continue
                    hits.append(
                        self._cluster_hit(index, score, combined, query_vector)
                    )
                hits.sort(key=lambda hit: (-hit["score"], hit["cluster"]))
                hits = hits[:n]
        self._observe_search("clusters", path, started)
        return hits

    def search_pages(self, query: str, n: int = 3) -> List[Dict[str, object]]:
        """Rank managed *pages* against a keyword query
        (``/search?scope=pages``).

        Each page is scored by cosine between the query and its combined
        (PC + FC) vector; ties break by URL.  Indexed and scan paths are
        parity-pinned exactly like cluster search.
        """
        query_vector = self._query_vector(query)
        if not query_vector:
            return []
        started = time.perf_counter()
        with self._rw.read_locked():
            fresh = self._index.generation == self._generation
            if fresh and self._index.use_for_pages():
                path = "indexed"
                ranked = self._index.top_pages(
                    query_vector, n,
                    lambda row: cosine_similarity(
                        query_vector, self._index.page_vector(row)
                    ),
                )
                scored = [
                    (self._index.page_url(row), score,
                     self._index.page_vector(row))
                    for row, score in ranked
                ]
            else:
                path = "scan"
                if fresh:
                    pairs = self._index.page_combined_items()
                else:  # defensive: derive from the live organizer state
                    pairs = (
                        (page.url, page.pc.add(page.fc))
                        for cluster in self.organizer.clusters
                        for page in cluster.pages
                    )
                scored = []
                for url, combined in pairs:
                    score = cosine_similarity(query_vector, combined)
                    if score > 0.0:
                        scored.append((url, score, combined))
                scored.sort(key=lambda hit: (-hit[1], hit[0]))
                scored = scored[:n]
            hits = [
                {
                    "url": url,
                    "cluster": self.organizer.cluster_of(url),
                    "score": score,
                    "matched_terms": sorted(
                        term for term in query_vector.terms()
                        if term in combined
                    ),
                }
                for url, score, combined in scored
            ]
        self._observe_search("pages", path, started)
        return hits

    def clusters_summary(self, max_urls: int = 5) -> List[Dict[str, object]]:
        """One JSON-safe record per cluster."""
        with self._rw.read_locked():
            return [
                {
                    "cluster": index,
                    "size": cluster.size,
                    "top_terms": self._cluster_terms(index),
                    "urls": [page.url for page in cluster.pages[:max_urls]],
                }
                for index, cluster in enumerate(self.organizer.clusters)
            ]

    #: health_state() -> degraded_mode gauge encoding.
    _HEALTH_CODES = {"ok": 0, "degraded": 1, "recovering": 2}

    def health_state(self) -> str:
        """``"ok"`` / ``"degraded"`` / ``"recovering"`` — lock-free.

        ``recovering``: journal replay or a drift repair is in flight
        (the repair holds the write lock, which is exactly why this must
        not take the read lock — /healthz keeps answering during it;
        the HTTP layer turns it into 503 + Retry-After).  ``degraded``:
        still serving, but impaired — the vectorize breaker is open,
        the batching worker gave up, or drift passed the threshold with
        no repair running.  Plain attribute reads only.
        """
        if self._replaying or self._recluster_running:
            return "recovering"
        worker = self._worker
        if (
            (worker is not None and worker.gave_up)
            or self._breaker.state_code == CIRCUIT_OPEN
            or self.organizer.needs_reclustering
        ):
            return "degraded"
        return "ok"

    def health_code(self) -> int:
        """Numeric :meth:`health_state` (the ``degraded_mode`` gauge)."""
        return self._HEALTH_CODES[self.health_state()]

    def stats(self) -> Dict[str, object]:
        """Health/staleness summary (the /healthz body)."""
        organizer = self.organizer
        with self._rw.read_locked():
            return {
                "state": self.health_state(),
                "pages": len(organizer),
                "clusters": len(organizer.clusters),
                "cohesion": organizer.cohesion,
                "needs_reclustering": organizer.needs_reclustering,
                "n_added": organizer.n_added,
                "n_removed": organizer.n_removed,
                "n_reclusters": self.n_reclusters,
                "generation": self._generation,
                "scheme": self.scheme_name,
                "batch_window_ms": self.batch_window_ms,
                "cache_size": self.cache_size,
                "uptime_seconds": time.time() - self.started_unix,
                "engine": organizer.backend.stats.as_dict(),
                "index": {
                    "mode": self._index.mode,
                    "generation": self._index.generation,
                    "active_clusters": self._index.use_for_clusters(),
                    "active_pages": self._index.use_for_pages(),
                    "classify_candidates": organizer.centroid_index
                    is not None,
                    "cluster_postings": self._index.n_cluster_postings,
                    "page_postings": self._index.n_page_postings,
                },
                "resilience": {
                    "circuit": self._breaker.state,
                    "epoch": self.epoch,
                    "stale_dropped": self.n_stale_dropped,
                    "journaled": self._journal is not None,
                    "journal_records": (
                        self._journal.n_records if self._journal else 0
                    ),
                    "journal_bytes": (
                        self._journal.n_bytes if self._journal else 0
                    ),
                    "journal_segments": (
                        self._journal.n_segments if self._journal else 0
                    ),
                    "journal_next_record": (
                        self._journal.next_record if self._journal else 0
                    ),
                    "replayed_records": self.n_replayed,
                    **STATS.as_dict(),
                },
            }

    # ----------------------------------------------------------------
    # Lifecycle.
    # ----------------------------------------------------------------

    def close(self) -> None:
        """Stop the batching worker and the journal.  Idempotent, and
        safe on a directory whose ``__init__`` failed partway (the
        lifecycle attributes are initialized before anything that can
        raise); pending classify requests are still served."""
        if getattr(self, "_closed", True):
            return
        self._closed = True
        cond = getattr(self, "_queue_cond", None)
        if cond is not None:
            with cond:
                self._stopped = True
                cond.notify_all()
        worker = getattr(self, "_worker", None)
        if worker is not None:
            worker.stop(timeout=5.0)
        journal = getattr(self, "_journal", None)
        if journal is not None:
            journal.close()

    def __enter__(self) -> "FormDirectory":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
