"""Event-loop HTTP transport with admission control and load shedding.

The directory stays a *threaded* object — classify coalesces in the
micro-batch queue, writers take the RWLock — but the connection layer
here is a single ``asyncio`` event loop speaking HTTP/1.1 over an
``asyncio.Protocol``.  One loop owns every socket: keep-alive and
pipelined parsing cost a buffer scan instead of a thread, so tens of
thousands of idle connections are cheap.  Parsed requests hop to a
small worker pool (``run_in_executor``) that calls the same
transport-neutral :class:`repro.service.app.BaseApp` the threaded
server uses, which is what makes the two transports byte-identical.

What the event loop adds on top of the threaded server:

* **Admission control** — per-route-class in-flight budgets.  Heavy
  routes (classify/search/add/...) and cheap routes (healthz/metrics)
  draw from separate budgets *and* separate worker pools, so a
  saturating classify storm can never starve health probes.
* **Load shedding** — when a budget is full the request is answered
  *immediately* with a structured ``429 + Retry-After`` body instead of
  queueing without bound; when the connection cap is hit, the newcomer
  gets the same 429 and a clean close instead of a kernel reset.
* **Slowloris defense** — a client that dribbles header bytes is timed
  from the *first* byte of the request frame (the deadline does not
  reset per byte) and reaped with 408; idle keep-alive connections are
  closed after ``idle_timeout``.
* **Gauges** — open connections, per-class in-flight depth, shed
  counts, all on the app's existing ``/metrics`` registry.

``AsyncHTTPServer`` mirrors the threaded server's surface (``port``,
``base_url``, ``serve_in_thread()``, ``serve_forever()``,
``shut_down()``) so the CLI, tests, and benchmarks can swap transports
with one flag.
"""

import asyncio
import socket
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

from repro.service.app import (
    ApiError,
    BaseApp,
    DEFAULT_MAX_REQUEST_BYTES,
    DEFAULT_REQUEST_TIMEOUT,
    DirectoryApp,
    Response,
    check_content_length,
    error_response,
)

#: Hard cap on a request head (request line + headers); more is a 431.
MAX_HEADER_BYTES = 32 * 1024

#: Above this many parsed-but-unanswered pipelined requests on one
#: connection, stop reading from its socket until the queue drains.
PIPELINE_HIGH_WATER = 64


@dataclass
class AdmissionConfig:
    """Knobs for the admission controller.

    ``max_inflight`` bounds concurrently-executing *heavy* requests
    (classify/search/add/remove/clusters + replication); overflow is
    shed with ``429 + Retry-After``.  ``cheap_inflight`` is the separate
    budget for ``/healthz`` and ``/metrics``.  ``heavy_workers`` /
    ``cheap_workers`` size the two executor pools — keeping them
    distinct means a wedged classify pool cannot starve liveness
    probes.  ``max_connections`` bounds open sockets (newcomers beyond
    it get a 429 and a clean close, never a silent reset) and
    ``backlog`` is the kernel accept queue.  ``header_timeout`` reaps
    slowloris clients (measured from the first byte of a request
    frame); ``idle_timeout`` closes idle keep-alive connections.
    """

    max_inflight: int = 64
    cheap_inflight: int = 16
    heavy_workers: int = 8
    cheap_workers: int = 2
    max_connections: int = 4096
    backlog: int = 512
    retry_after: int = 1
    header_timeout: float = 5.0
    idle_timeout: float = 60.0


class AdmissionController:
    """In-flight budgets + shed/connection gauges.

    Counters are touched only from the event-loop thread, so plain ints
    suffice; the metric gauges read them from scrape threads, which is
    safe because int reads are atomic in CPython.
    """

    def __init__(self, config: AdmissionConfig, metrics) -> None:
        self.config = config
        self.inflight = {"heavy": 0, "cheap": 0}
        self.shed = {"heavy": 0, "cheap": 0}
        self.connections_open = 0
        self.connections_total = 0
        self.connections_shed = 0
        self._budget = {
            "heavy": config.max_inflight,
            "cheap": config.cheap_inflight,
        }
        metrics.gauge(
            "server_connections_open",
            "Open sockets on the asyncio transport",
            transport="asyncio",
        ).set_function(lambda: float(self.connections_open))
        metrics.gauge(
            "server_connections_total",
            "Connections accepted since start",
            transport="asyncio",
        ).set_function(lambda: float(self.connections_total))
        for route_class in ("heavy", "cheap"):
            metrics.gauge(
                "server_inflight_requests",
                "Requests currently executing",
                route=route_class,
            ).set_function(
                lambda rc=route_class: float(self.inflight[rc])
            )
            metrics.gauge(
                "server_requests_shed_total",
                "Requests shed with 429 by admission control",
                route=route_class,
            ).set_function(
                lambda rc=route_class: float(self.shed[rc])
            )

    def try_admit(self, route_class: str) -> bool:
        if self.inflight[route_class] >= self._budget[route_class]:
            self.shed[route_class] += 1
            return False
        self.inflight[route_class] += 1
        return True

    def release(self, route_class: str) -> None:
        self.inflight[route_class] -= 1

    def overloaded_error(self) -> ApiError:
        return ApiError(
            429, "overloaded",
            "server is at capacity; retry after backoff",
            retry_after=self.config.retry_after,
        )


class _ParsedRequest:
    """One request off the wire, or a framing error to answer in order."""

    __slots__ = ("method", "target", "body", "error", "close_after")

    def __init__(
        self,
        method: str = "",
        target: str = "",
        body: bytes = b"",
        error: Optional[ApiError] = None,
        close_after: bool = False,
    ) -> None:
        self.method = method
        self.target = target
        self.body = body
        self.error = error
        self.close_after = close_after


class _Connection(asyncio.Protocol):
    """One keep-alive HTTP/1.1 connection on the event loop.

    Bytes accumulate in ``_buffer``; ``_parse_available`` peels complete
    requests into ``_queue`` (pipelining), and a single ``_drain`` task
    answers them strictly in order.  All state is loop-thread-only.
    """

    def __init__(self, server: "AsyncHTTPServer") -> None:
        self.server = server
        self.transport = None
        self._buffer = bytearray()
        self._queue: Deque[_ParsedRequest] = deque()
        self._drain_task: Optional[asyncio.Task] = None
        self._paused = False
        self._closing = False
        # Timestamp (loop clock) when the current partial frame started;
        # None while no bytes are pending.  The slowloris deadline is
        # measured from here and deliberately NOT reset per byte.
        self._frame_started: Optional[float] = None
        self._timeout_handle: Optional[asyncio.TimerHandle] = None
        # Expected body length once headers are parsed; None = still in
        # the header phase.
        self._pending_head: Optional[Tuple[str, str, dict, bool]] = None
        self._pending_body_len = 0
        self._idle_since: Optional[float] = None

    # -- protocol callbacks -------------------------------------------

    def connection_made(self, transport) -> None:
        self.transport = transport
        server = self.server
        admission = server.admission
        admission.connections_total += 1
        if admission.connections_open >= admission.config.max_connections:
            # Over the connection cap: answer with a structured 429 and
            # close cleanly — never a silent kernel reset.
            admission.connections_shed += 1
            response = error_response(admission.overloaded_error())
            transport.write(
                _render(response, server.app.server_version, close=True)
            )
            transport.close()
            self._closing = True
            return
        admission.connections_open += 1
        server._connections.add(self)
        self._idle_since = server.loop.time()
        self._arm_timeout()

    def connection_lost(self, exc) -> None:
        self.transport = None
        self._closing = True
        if self in self.server._connections:
            self.server._connections.discard(self)
            self.server.admission.connections_open -= 1
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
            self._timeout_handle = None
        if self._drain_task is not None:
            self._drain_task.cancel()
            self._drain_task = None

    def data_received(self, data: bytes) -> None:
        if self._closing:
            return
        self._buffer += data
        if self._frame_started is None and self._buffer:
            self._frame_started = self.server.loop.time()
        self._parse_available()
        self._maybe_pause()
        if self._queue and self._drain_task is None:
            self._drain_task = self.server.loop.create_task(self._drain())

    def eof_received(self) -> bool:
        return False  # close when the peer half-closes

    # -- parsing ------------------------------------------------------

    def _parse_available(self) -> None:
        while not self._closing:
            if self._pending_head is not None:
                if len(self._buffer) < self._pending_body_len:
                    return
                method, target, _headers, close_after = self._pending_head
                body = bytes(self._buffer[: self._pending_body_len])
                del self._buffer[: self._pending_body_len]
                self._pending_head = None
                self._queue.append(
                    _ParsedRequest(method, target, body,
                                   close_after=close_after)
                )
                self._frame_started = (
                    self.server.loop.time() if self._buffer else None
                )
                continue
            head_end = self._buffer.find(b"\r\n\r\n")
            if head_end < 0:
                if len(self._buffer) > MAX_HEADER_BYTES:
                    self._enqueue_error(ApiError(
                        431, "headers_too_large",
                        f"request head exceeds {MAX_HEADER_BYTES} bytes",
                    ))
                return
            head = bytes(self._buffer[:head_end])
            del self._buffer[: head_end + 4]
            try:
                method, target, headers, close_after = self._parse_head(head)
            except ApiError as error:
                self._enqueue_error(error)
                return
            if method == "POST":
                try:
                    length = check_content_length(
                        headers.get("content-length"),
                        self.server.max_request_bytes,
                    )
                except ApiError as error:
                    # 411/413: the body (if any) was never framed, so
                    # keep-alive can't continue past this request.
                    self._enqueue_error(error)
                    return
                self._pending_head = (method, target, headers, close_after)
                self._pending_body_len = length
                continue
            # Non-POST requests with a body: consume it to keep framing.
            length_header = headers.get("content-length")
            if length_header is not None:
                try:
                    length = check_content_length(
                        length_header, self.server.max_request_bytes
                    )
                except ApiError as error:
                    self._enqueue_error(error)
                    return
                self._pending_head = (method, target, headers, close_after)
                self._pending_body_len = length
                continue
            self._queue.append(
                _ParsedRequest(method, target, close_after=close_after)
            )
            self._frame_started = (
                self.server.loop.time() if self._buffer else None
            )

    def _parse_head(
        self, head: bytes
    ) -> Tuple[str, str, dict, bool]:
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError:
            raise ApiError(400, "bad_request", "undecodable request head")
        lines = text.split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise ApiError(400, "bad_request", "malformed request line")
        method, target, version = parts
        if not version.startswith("HTTP/1."):
            raise ApiError(
                505, "http_version_not_supported",
                f"unsupported protocol version {version!r}",
            )
        headers: dict = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise ApiError(400, "bad_request",
                               f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise ApiError(
                501, "not_implemented",
                "chunked transfer encoding is not supported",
            )
        connection = headers.get("connection", "").lower()
        close_after = (
            "close" in connection
            or (version == "HTTP/1.0" and "keep-alive" not in connection)
        )
        return method, target, headers, close_after

    def _enqueue_error(self, error: ApiError) -> None:
        # Framing errors still answer in pipeline order, then close:
        # the byte stream past a framing fault is unparseable.
        self._queue.append(_ParsedRequest(error=error, close_after=True))
        self._closing = True
        self._buffer.clear()
        self._frame_started = None
        if self._queue and self._drain_task is None:
            self._drain_task = self.server.loop.create_task(self._drain())

    # -- backpressure + timeouts --------------------------------------

    def _maybe_pause(self) -> None:
        if self.transport is None:
            return
        if not self._paused and len(self._queue) > PIPELINE_HIGH_WATER:
            self.transport.pause_reading()
            self._paused = True
        elif self._paused and len(self._queue) <= PIPELINE_HIGH_WATER // 2:
            self.transport.resume_reading()
            self._paused = False

    def _arm_timeout(self) -> None:
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
        config = self.server.admission.config
        interval = min(
            config.header_timeout, config.idle_timeout, 1.0
        )
        self._timeout_handle = self.server.loop.call_later(
            max(interval / 2, 0.05), self._check_timeout
        )

    def _check_timeout(self) -> None:
        self._timeout_handle = None
        if self.transport is None or self._closing:
            return
        config = self.server.admission.config
        now = self.server.loop.time()
        if self._frame_started is not None:
            # Mid-frame: a partial request head/body has been pending
            # since _frame_started.  Slowloris clients live here.
            if now - self._frame_started >= config.header_timeout:
                if self._queue or self._drain_task is not None:
                    # In-order responses still flowing; just stop
                    # reading more and close after the queue drains.
                    self._enqueue_error(ApiError(
                        408, "request_timeout",
                        "timed out waiting for a complete request",
                    ))
                else:
                    response = error_response(ApiError(
                        408, "request_timeout",
                        "timed out waiting for a complete request",
                    ))
                    self.transport.write(_render(
                        response, self.server.app.server_version, close=True
                    ))
                    self._closing = True
                    self.transport.close()
                return
        elif not self._queue and self._drain_task is None:
            if self._idle_since is None:
                self._idle_since = now
            if now - self._idle_since >= config.idle_timeout:
                self._closing = True
                self.transport.close()
                return
        self._arm_timeout()

    # -- response path ------------------------------------------------

    async def _drain(self) -> None:
        try:
            while self._queue:
                request = self._queue.popleft()
                self._idle_since = None
                self._maybe_pause()
                close = request.close_after or self.server.draining
                if request.error is not None:
                    response = error_response(request.error)
                    self.server.app.observe(
                        "framing", response.status, self.server.app._now()
                    )
                else:
                    response = await self.server.dispatch(
                        request.method, request.target, request.body
                    )
                if self.transport is None:
                    return
                self.transport.write(_render(
                    response, self.server.app.server_version, close=close
                ))
                if close:
                    self._closing = True
                    self.transport.close()
                    return
            self._idle_since = self.server.loop.time()
        finally:
            self._drain_task = None
            if self._queue and not self._closing and self.transport is not None:
                # Requests parsed while we were finishing: keep going.
                self._drain_task = self.server.loop.create_task(self._drain())


def _render(response: Response, server_version: str, close: bool) -> bytes:
    head = [
        f"HTTP/1.1 {response.status} {_REASONS.get(response.status, 'OK')}",
        f"Server: {server_version}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
    ]
    for name, value in response.extra_headers:
        head.append(f"{name}: {value}")
    head.append("Connection: close" if close else "Connection: keep-alive")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + response.body


_REASONS = {
    200: "OK", 400: "Bad Request", 403: "Forbidden", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    411: "Length Required", 413: "Payload Too Large",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 501: "Not Implemented",
    503: "Service Unavailable", 504: "Gateway Timeout",
    505: "HTTP Version Not Supported",
}


class AsyncHTTPServer:
    """The asyncio front end: one event loop, two worker pools, one app.

    Mirrors the threaded :class:`DirectoryHTTPServer` surface so the
    two are drop-in interchangeable: the socket is bound eagerly in
    ``__init__`` (``port``/``base_url`` valid immediately),
    ``serve_in_thread()`` runs the loop on a daemon thread, and
    ``shut_down()`` drains connections then closes the served object
    via ``on_close``.
    """

    def __init__(
        self,
        app: BaseApp,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        admission: Optional[AdmissionConfig] = None,
        on_close: Optional[Callable[[], None]] = None,
    ) -> None:
        self.app = app
        self.max_request_bytes = max_request_bytes
        self.admission = AdmissionController(
            admission or AdmissionConfig(), app.metrics_registry
        )
        self._on_close = on_close
        config = self.admission.config
        # Bind eagerly so .port / .base_url work before the loop runs —
        # the threaded server behaves this way and tests rely on it.
        self._socket = socket.create_server(
            address, backlog=config.backlog, reuse_port=False
        )
        self._socket.setblocking(False)
        self.loop = asyncio.new_event_loop()
        self._pools = {
            "heavy": ThreadPoolExecutor(
                max_workers=config.heavy_workers,
                thread_name_prefix="repro-aio-heavy",
            ),
            "cheap": ThreadPoolExecutor(
                max_workers=config.cheap_workers,
                thread_name_prefix="repro-aio-cheap",
            ),
        }
        self._connections: set = set()
        self._started = threading.Event()
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._shut = False
        self.draining = False

    # -- address surface ----------------------------------------------

    @property
    def port(self) -> int:
        return self._socket.getsockname()[1]

    @property
    def base_url(self) -> str:
        host = self._socket.getsockname()[0]
        return f"http://{host}:{self.port}"

    # -- lifecycle ----------------------------------------------------

    def serve_in_thread(self) -> threading.Thread:
        thread = threading.Thread(
            target=self._run_loop, name="repro-aio", daemon=True
        )
        self._thread = thread
        thread.start()
        if not self._started.wait(timeout=15):
            raise RuntimeError("asyncio server failed to start")
        return thread

    def serve_forever(self) -> None:
        """Run the loop on the calling thread (the CLI foreground path).
        Ctrl-C triggers a graceful drain."""
        try:
            self._run_loop()
        except KeyboardInterrupt:
            self.shut_down()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self._main())
        finally:
            try:
                self.loop.run_until_complete(
                    self.loop.shutdown_asyncgens()
                )
            finally:
                self.loop.close()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        server = await self.loop.create_server(
            lambda: _Connection(self), sock=self._socket
        )
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            self.draining = True
            server.close()
            await server.wait_closed()
            # Give in-flight responses a moment, then abort stragglers.
            for _ in range(50):
                if not any(
                    conn._drain_task is not None or conn._queue
                    for conn in self._connections
                ):
                    break
                await asyncio.sleep(0.1)
            for conn in list(self._connections):
                if conn.transport is not None:
                    conn.transport.abort()

    def shut_down(self) -> None:
        """Stop accepting, drain in-flight requests, close the app's
        underlying object.  Idempotent and callable from any thread."""
        if self._shut:
            return
        self._shut = True
        self.draining = True
        if self._started.is_set() and not self.loop.is_closed():
            try:
                self.loop.call_soon_threadsafe(
                    lambda: self._stop_event.set()
                    if self._stop_event is not None else None
                )
            except RuntimeError:
                pass
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=15)
        elif not self._started.is_set():
            # Loop never ran (shut down before serve): just release.
            self._socket.close()
            if not self.loop.is_closed():
                self.loop.close()
        for pool in self._pools.values():
            pool.shutdown(wait=False)
        if self._on_close is not None:
            self._on_close()

    # -- request execution --------------------------------------------

    async def dispatch(self, method: str, target: str,
                       body: bytes) -> Response:
        """Admission-check one parsed request, then run the app handler
        on the right worker pool.  Runs on the event loop."""
        app = self.app
        endpoint, _query = app.split_target(target)
        route_class = app.route_class(endpoint)
        admission = self.admission
        if not admission.try_admit(route_class):
            response = error_response(admission.overloaded_error())
            app.observe(
                endpoint.lstrip("/") or "root", response.status, app._now()
            )
            return response
        try:
            return await self.loop.run_in_executor(
                self._pools[route_class],
                app.handle, method, target, (lambda: body),
            )
        finally:
            admission.release(route_class)


def serve_directory_async(
    directory,
    host: str = "127.0.0.1",
    port: int = 0,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    admission: Optional[AdmissionConfig] = None,
) -> AsyncHTTPServer:
    """Bind the asyncio transport over a :class:`FormDirectory` (port 0
    picks an ephemeral port) — the event-loop twin of
    :func:`repro.service.http.serve_directory`."""
    app = DirectoryApp(directory, request_timeout=request_timeout)
    return AsyncHTTPServer(
        app,
        (host, port),
        max_request_bytes=max_request_bytes,
        admission=admission,
        on_close=directory.close,
    )


__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AsyncHTTPServer",
    "MAX_HEADER_BYTES",
    "PIPELINE_HIGH_WATER",
    "serve_directory_async",
]
