"""Building a unified query interface from attribute correspondences.

Given the concept groups discovered over one cluster's forms, the
unified interface keeps every concept that appears in at least a
``min_coverage`` fraction of the forms, names it by its most common
label, and merges the option lists — the WISE-Integrator-style output
the paper cites as CAFC's downstream consumer.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.form_page import RawFormPage
from repro.integration.matching import (
    ConceptGroup,
    collect_attributes,
    match_attributes,
)


@dataclass
class UnifiedField:
    """One field of the unified interface."""

    label: str
    coverage: float            # fraction of source forms with this concept
    n_sources: int
    options: List[str]         # merged option values ([] = free text)
    example_labels: List[str]  # the label variants seen across sources

    @property
    def is_select(self) -> bool:
        return bool(self.options)


@dataclass
class UnifiedInterface:
    """A merged query interface over one cluster of forms."""

    fields: List[UnifiedField]
    n_source_forms: int
    n_concepts_discovered: int

    def to_html(self) -> str:
        """Render the unified interface as a plain HTML form."""
        rows = []
        for index, unified_field in enumerate(self.fields):
            name = f"field{index}"
            if unified_field.is_select:
                options = "".join(
                    f"<option>{value}</option>" for value in unified_field.options
                )
                control = f"<select name=\"{name}\">{options}</select>"
            else:
                control = f"<input type=\"text\" name=\"{name}\">"
            rows.append(
                f"<tr><td>{unified_field.label}</td><td>{control}</td></tr>"
            )
        body = "".join(rows)
        return (
            "<form action=\"/unified-search\" method=\"get\"><table>"
            + body
            + "<tr><td></td><td><input type=\"submit\" value=\"Search\"></td></tr>"
            "</table></form>"
        )


def build_unified_interface(
    raw_pages: Sequence[RawFormPage],
    min_coverage: float = 0.3,
    match_threshold: float = 0.35,
    groups: Optional[List[ConceptGroup]] = None,
) -> UnifiedInterface:
    """Match attributes across ``raw_pages`` and merge into one interface.

    ``raw_pages`` should be the members of one CAFC cluster; matching
    across unrelated domains produces meaningless correspondences.
    Precomputed ``groups`` may be passed to skip the matching step.
    """
    if not 0.0 <= min_coverage <= 1.0:
        raise ValueError("min_coverage must be in [0, 1]")
    n_forms = len(raw_pages)
    if groups is None:
        instances = collect_attributes(raw_pages)
        groups = match_attributes(instances, threshold=match_threshold)

    fields: List[UnifiedField] = []
    for group in groups:
        coverage = group.coverage(n_forms)
        if coverage < min_coverage:
            continue
        label_variants = sorted(
            {member.label for member in group.members if member.label}
        )
        fields.append(
            UnifiedField(
                label=group.canonical_label(),
                coverage=coverage,
                n_sources=len(group.form_indices),
                options=group.merged_options(),
                example_labels=label_variants[:6],
            )
        )
    fields.sort(key=lambda f: (-f.coverage, f.label))
    return UnifiedInterface(
        fields=fields,
        n_source_forms=n_forms,
        n_concepts_discovered=len(groups),
    )
