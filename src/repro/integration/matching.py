"""Attribute-correspondence discovery across a cluster's forms.

Different sites express the same concept with different labels ("Job
Category" vs "Industry") and partially overlapping option lists.  Within
a domain cluster, two evidence sources identify correspondences:

* **label similarity** — Jaccard overlap of the stemmed label tokens
  (``category`` matches ``job category``);
* **option-value overlap** — Jaccard overlap of select options (two
  attributes listing the same states match even when their labels
  share nothing, and vice versa).

Matching is greedy agglomerative: attribute instances start as
singleton groups; the most similar group pair merges while similarity
exceeds a threshold, with the constraint that a group never holds two
attributes *from the same form* (a form does not repeat a concept).
"""

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set

from repro.baselines.label_extraction import extract_attribute_labels
from repro.core.form_page import RawFormPage
from repro.html.forms import extract_forms
from repro.text.analyzer import TextAnalyzer


@dataclass
class AttributeInstance:
    """One attribute of one form, with its match evidence."""

    form_index: int            # which form page the attribute came from
    field_name: str
    label: str
    label_terms: FrozenSet[str]
    options: FrozenSet[str]    # normalized option strings

    def describe(self) -> str:
        return self.label or self.field_name


@dataclass
class ConceptGroup:
    """A set of corresponding attributes across forms."""

    members: List[AttributeInstance] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def form_indices(self) -> Set[int]:
        return {member.form_index for member in self.members}

    def coverage(self, n_forms: int) -> float:
        """Fraction of the cluster's forms containing this concept."""
        if n_forms == 0:
            return 0.0
        return len(self.form_indices) / n_forms

    def canonical_label(self) -> str:
        """The most frequent non-empty label (ties: shortest, then
        alphabetical)."""
        labels = [m.label for m in self.members if m.label]
        if not labels:
            return self.members[0].field_name if self.members else ""
        counts = {}
        for label in labels:
            counts[label] = counts.get(label, 0) + 1
        return min(counts, key=lambda l: (-counts[l], len(l), l))

    def merged_options(self) -> List[str]:
        merged: Set[str] = set()
        for member in self.members:
            merged.update(member.options)
        return sorted(merged)


def _jaccard(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


def attribute_similarity(a: AttributeInstance, b: AttributeInstance) -> float:
    """Combined match evidence in [0, 1].

    Labels and options each contribute; when both kinds of evidence are
    available the mean is used, otherwise whichever exists.  Identical
    field names (common across sites built from the same toolkits) add a
    small bonus, capped at 1.
    """
    label_score = _jaccard(a.label_terms, b.label_terms)
    option_score = _jaccard(a.options, b.options)
    have_labels = bool(a.label_terms and b.label_terms)
    have_options = bool(a.options and b.options)
    if have_labels and have_options:
        score = (label_score + option_score) / 2.0
    elif have_labels:
        score = label_score
    elif have_options:
        score = option_score
    else:
        score = 0.0
    if a.field_name and a.field_name == b.field_name:
        score = min(1.0, score + 0.3)
    return score


def _group_similarity(a: ConceptGroup, b: ConceptGroup) -> float:
    """Average-linkage similarity between two groups."""
    total = 0.0
    count = 0
    for member_a in a.members:
        for member_b in b.members:
            total += attribute_similarity(member_a, member_b)
            count += 1
    return total / count if count else 0.0


def collect_attributes(
    raw_pages: Sequence[RawFormPage],
    analyzer: Optional[TextAnalyzer] = None,
) -> List[AttributeInstance]:
    """Extract every form attribute (with labels and options) from a
    cluster's pages."""
    analyzer = analyzer or TextAnalyzer()
    instances: List[AttributeInstance] = []
    for form_index, raw in enumerate(raw_pages):
        label_lists = extract_attribute_labels(raw.html)
        forms = extract_forms(raw.html)
        if not forms:
            continue
        # Pair the label-richest form with its structural extraction.
        best = max(
            range(len(label_lists)),
            key=lambda i: sum(1 for l in label_lists[i] if l.has_label),
        )
        labels = label_lists[best]
        form = forms[best]
        options_by_name = {}
        for form_field in form.visible_fields:
            if form_field.options:
                options_by_name[form_field.name] = frozenset(
                    option.text.strip().lower()
                    for option in form_field.options
                    if option.text.strip()
                )
        for extracted in labels:
            instances.append(
                AttributeInstance(
                    form_index=form_index,
                    field_name=extracted.field_name,
                    label=extracted.label,
                    label_terms=frozenset(analyzer.analyze(extracted.label)),
                    options=options_by_name.get(extracted.field_name, frozenset()),
                )
            )
    return instances


def match_attributes(
    instances: Sequence[AttributeInstance],
    threshold: float = 0.35,
) -> List[ConceptGroup]:
    """Greedy agglomerative matching into concept groups.

    Merges the most similar admissible group pair until no pair exceeds
    ``threshold``.  A merge is inadmissible when the merged group would
    contain two attributes from the same form.

    ``attribute_similarity`` over the instance pairs is computed exactly
    once, up front; every average-linkage group score across all merge
    rounds is then a sum over that matrix (the instances in a group
    never change, only their grouping does).
    """
    n = len(instances)
    pair_sims = [[0.0] * n for _ in range(n)]
    for a in range(n):
        for b in range(a + 1, n):
            value = attribute_similarity(instances[a], instances[b])
            pair_sims[a][b] = value
            pair_sims[b][a] = value

    groups = [ConceptGroup(members=[instance]) for instance in instances]
    # Parallel structure: the instance indices behind each group, in the
    # same member order, so group scores sum pair_sims in exactly the
    # order the per-pair recomputation used to.
    indices: List[List[int]] = [[i] for i in range(n)]

    def group_score(index_a: int, index_b: int) -> float:
        total = 0.0
        count = 0
        for a in indices[index_a]:
            row = pair_sims[a]
            for b in indices[index_b]:
                total += row[b]
                count += 1
        return total / count if count else 0.0

    while len(groups) > 1:
        best_pair = None
        best_score = threshold
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                if groups[i].form_indices & groups[j].form_indices:
                    continue
                score = group_score(i, j)
                if score > best_score:
                    best_score = score
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        groups[i].members.extend(groups[j].members)
        indices[i].extend(indices[j])
        del groups[j]
        del indices[j]

    groups.sort(key=lambda g: (-g.size, g.canonical_label()))
    return groups
