"""Query-interface integration over CAFC clusters (Section 5).

The paper positions CAFC as the missing first stage of deep-web
integration: interface matching and merging systems "require as inputs
groups of similar forms such as the ones derived by our approach."
This package supplies that second stage:

* :mod:`repro.integration.matching` — attribute-correspondence discovery
  across the forms of one cluster (label-token and option-value
  evidence, greedy agglomeration into concept groups);
* :mod:`repro.integration.unified` — building a unified query interface
  from the correspondences (canonical labels, merged option lists,
  coverage statistics).
"""

from repro.integration.matching import (
    AttributeInstance,
    ConceptGroup,
    collect_attributes,
    match_attributes,
)
from repro.integration.unified import UnifiedField, UnifiedInterface, build_unified_interface

__all__ = [
    "AttributeInstance",
    "ConceptGroup",
    "collect_attributes",
    "match_attributes",
    "UnifiedField",
    "UnifiedInterface",
    "build_unified_interface",
]
