"""URL helpers: hosts, site roots, intra-site tests.

CAFC-CH needs exactly two URL-level notions (Section 3.1 / 3.3):

* the *site* a page belongs to, so intra-site hubs can be discarded
  ("for some form pages, all backlinks belong to the same site as the page
  they point to ... they are eliminated");
* the *root page* of a site, used as a backlink fallback when a form page
  itself has no backlinks.
"""

from urllib.parse import urlparse


def host_of(url: str) -> str:
    """The lowercase host of ``url`` ('' when unparseable).

    >>> host_of("http://www.jobs-r-us.com/search?go=1")
    'www.jobs-r-us.com'
    """
    return urlparse(url).netloc.lower()


def site_of(url: str) -> str:
    """A site key for ``url``: the host without a leading ``www.``.

    Good enough for intra-site detection on the corpora this library
    handles; a production system would use the public-suffix list.

    >>> site_of("http://www.jobs-r-us.com/a") == site_of("http://jobs-r-us.com/b")
    True
    """
    host = host_of(url)
    if host.startswith("www."):
        host = host[4:]
    return host


def same_site(url_a: str, url_b: str) -> bool:
    """True when the two URLs live on the same site."""
    site_a = site_of(url_a)
    return bool(site_a) and site_a == site_of(url_b)


def root_url_of(url: str) -> str:
    """The site root page URL ('http://host/').

    >>> root_url_of("http://www.jobs-r-us.com/search/advanced?x=1")
    'http://www.jobs-r-us.com/'
    """
    parsed = urlparse(url)
    scheme = parsed.scheme or "http"
    return f"{scheme}://{parsed.netloc}/"
