"""The simulated search-engine ``link:`` API (Section 3.1's data source).

The paper retrieves backlinks "through the link: API provided by search
engines such as AltaVista, Google and Yahoo!" and observes two properties
this simulator reproduces:

* **result caps** — at most ``max_results`` backlinks per query (the
  paper extracted a maximum of 100 per page);
* **incompleteness** — "AltaVista returned no backlinks for over 15% of
  forms"; the simulator indexes only a deterministic pseudo-random subset
  of the graph's linking pages, so a configurable fraction of queries
  come back empty.

Determinism: the indexed subset is a pure function of (page URL, seed),
so experiments are exactly reproducible.
"""

import hashlib
import threading
from typing import List

from repro.webgraph.graph import WebGraph


def _stable_fraction(key: str, seed: int) -> float:
    """Map (key, seed) to a uniform-ish float in [0, 1), stably across
    processes (Python's ``hash`` is salted; hashlib is not)."""
    digest = hashlib.sha256(f"{seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class SimulatedSearchEngine:
    """A ``link:`` query facility over a :class:`WebGraph`.

    Parameters
    ----------
    graph:
        The underlying web snapshot.
    coverage:
        Fraction of linking pages the engine has indexed.  Backlinks from
        unindexed pages are invisible, which makes some queries return
        nothing at all — the paper's >15% empty-result phenomenon.
    max_results:
        Cap on returned backlinks per query (AltaVista-style).
    seed:
        Index-sampling seed.
    """

    def __init__(
        self,
        graph: WebGraph,
        coverage: float = 0.8,
        max_results: int = 100,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")
        if max_results < 1:
            raise ValueError("max_results must be positive")
        self.graph = graph
        self.coverage = coverage
        self.max_results = max_results
        self.seed = seed
        self.query_count = 0
        # Parallel backlink harvesting queries from several threads; the
        # counter is the only mutable state, so guard just it.
        self._count_lock = threading.Lock()

    def _indexed(self, url: str) -> bool:
        """Whether the engine crawled (and thus indexed links from) ``url``."""
        return _stable_fraction(url, self.seed) < self.coverage

    def link_query(self, url: str) -> List[str]:
        """``link:url`` — backlinks the engine knows about, capped.

        Results are URL-sorted then truncated, which matches how engines
        return a stable prefix of a larger result set.
        """
        with self._count_lock:
            self.query_count += 1
        indexed = [
            source for source in self.graph.backlinks(url) if self._indexed(source)
        ]
        return indexed[: self.max_results]

    def harvest_backlinks(
        self, url: str, root_url: str = "", fallback_to_root: bool = True
    ) -> List[str]:
        """The paper's harvesting procedure for one form page.

        Query ``link:url``; if nothing comes back and a root URL is given,
        also query ``link:root`` ("we also retrieved backlinks to the root
        page of the site where the form is located", Section 3.1).
        """
        backlinks = self.link_query(url)
        if not backlinks and fallback_to_root and root_url and root_url != url:
            backlinks = self.link_query(root_url)
        return backlinks
