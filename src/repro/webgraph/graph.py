"""The web graph: pages and hyperlinks.

A :class:`WebGraph` holds every page of a (synthetic or real) web snapshot
together with its outgoing links, and maintains the reverse index that a
search engine's ``link:`` facility would expose.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.webgraph.urls import host_of


@dataclass
class WebPage:
    """One page: its URL, HTML, and outgoing link URLs.

    ``kind`` is generator metadata ("form", "hub", "content", "root",
    "directory"); algorithms never read it, but tests and corpus audits do.
    """

    url: str
    html: str
    outlinks: List[str] = field(default_factory=list)
    kind: str = "content"


class WebGraph:
    """A hyperlinked page collection with forward and backward indexes."""

    def __init__(self) -> None:
        self._pages: Dict[str, WebPage] = {}
        self._backlinks: Dict[str, Set[str]] = {}

    # ----------------------------------------------------------------
    # Construction.
    # ----------------------------------------------------------------

    def add_page(self, page: WebPage) -> None:
        """Add (or replace) a page and index its outlinks."""
        existing = self._pages.get(page.url)
        if existing is not None:
            # Re-adding: retract the old outlink contributions first.
            for target in existing.outlinks:
                backlinks = self._backlinks.get(target)
                if backlinks is not None:
                    backlinks.discard(page.url)
        self._pages[page.url] = page
        for target in page.outlinks:
            self._backlinks.setdefault(target, set()).add(page.url)

    # ----------------------------------------------------------------
    # Queries.
    # ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, url: str) -> bool:
        return url in self._pages

    def get(self, url: str) -> Optional[WebPage]:
        return self._pages.get(url)

    def pages(self) -> Iterator[WebPage]:
        """All pages in deterministic (URL-sorted) order."""
        for url in sorted(self._pages):
            yield self._pages[url]

    def urls(self) -> List[str]:
        return sorted(self._pages)

    def outlinks(self, url: str) -> List[str]:
        page = self._pages.get(url)
        return list(page.outlinks) if page else []

    def backlinks(self, url: str) -> List[str]:
        """URLs of pages in the graph that link to ``url`` (sorted)."""
        return sorted(self._backlinks.get(url, ()))

    def hosts(self) -> Set[str]:
        return {host_of(url) for url in self._pages}

    def pages_of_kind(self, kind: str) -> List[WebPage]:
        return [page for page in self.pages() if page.kind == kind]
