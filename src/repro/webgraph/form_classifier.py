"""Generic searchable-form classification.

The paper assumes its input "consists of only searchable forms.
Non-searchable forms can be filtered out using techniques such as the
generic form classifier proposed in [3]" (Barbosa & Freire, WebDB'05).
That classifier is decision-tree-based over structural form features; we
implement the same feature set with a transparent scoring rule so the full
crawl -> filter -> cluster pipeline is runnable.

Signals (all visible in the form structure alone — domain-independent):

* password fields, many hidden fields, and login/registration vocabulary
  indicate *non-searchable* forms (login, signup, quote request, mailing
  list);
* search vocabulary, select boxes with many options, several visible
  fields, and GET methods indicate *searchable* forms.
"""

from dataclasses import dataclass
from typing import List

from repro.html.forms import Form
from repro.text.tokenize import tokenize

# Vocabulary markers.  These are generic web-interaction words, not
# database-domain words — using them does not leak domain knowledge into
# the clustering input.
_NON_SEARCH_TERMS = frozenset(
    """
    login log sign signin signup register registration password passwd
    username subscribe unsubscribe newsletter email contact feedback
    comment comments quote checkout cart billing shipping payment
    """.split()
)
_SEARCH_TERMS = frozenset(
    """
    search find browse lookup query keyword keywords advanced results
    within show display sort
    """.split()
)


@dataclass
class FormFeatures:
    """The structural feature vector of one form."""

    n_visible_fields: int
    n_text_inputs: int
    n_selects: int
    n_hidden: int
    n_options: int
    has_password: bool
    method_get: bool
    search_term_hits: int
    non_search_term_hits: int


def extract_features(form: Form) -> FormFeatures:
    """Compute the classifier's features for ``form``."""
    tokens = tokenize(form.visible_text)
    field_name_tokens: List[str] = []
    for form_field in form.fields:
        field_name_tokens.extend(tokenize(form_field.name.replace("_", " ")))
    all_tokens = tokens + field_name_tokens
    return FormFeatures(
        n_visible_fields=len(form.visible_fields),
        n_text_inputs=len(form.text_inputs),
        n_selects=len(form.selects),
        n_hidden=sum(1 for f in form.fields if f.is_hidden),
        n_options=sum(len(f.options) for f in form.fields),
        has_password=form.has_password_field,
        method_get=form.method == "get",
        search_term_hits=sum(1 for t in all_tokens if t in _SEARCH_TERMS),
        non_search_term_hits=sum(1 for t in all_tokens if t in _NON_SEARCH_TERMS),
    )


def searchable_score(features: FormFeatures) -> float:
    """A transparent linear score; positive means searchable.

    The weights encode the decision-tree splits of the original
    classifier: a password field is near-conclusive evidence of a
    non-searchable form; search vocabulary and option-rich selects are
    strong searchable evidence.
    """
    score = 0.0
    if features.has_password:
        score -= 10.0
    score += 1.5 * features.search_term_hits
    score -= 1.5 * features.non_search_term_hits
    score += 0.8 * features.n_selects
    score += 0.05 * min(features.n_options, 40)
    if features.method_get:
        score += 0.5
    if features.n_visible_fields == 0:
        score -= 5.0  # nothing for a user to fill in
    if features.n_text_inputs >= 4:
        # Many free-text boxes pattern-match registration / contact forms
        # (name, email, address, phone ...).  Three is still common for
        # search (title / author / keyword).
        score -= 0.7 * (features.n_text_inputs - 3)
    return score


def classify_form(form: Form) -> bool:
    """True when ``form`` looks searchable (a database entry point)."""
    return searchable_score(extract_features(form)) > 0.0


def is_searchable(html: str) -> bool:
    """Page-level test: does ``html`` contain at least one searchable form?"""
    from repro.html.forms import extract_forms

    return any(classify_form(form) for form in extract_forms(html))
