"""Web-graph substrate: URLs, the simulated `link:` API, crawling,
searchable-form classification.

The paper obtains its link structure from a commercial search engine's
``link:`` query facility (Section 3.1) and its input form pages from a
focused crawler whose output is filtered by a generic searchable-form
classifier [3].  This package provides those substrates over a synthetic
web graph:

* :mod:`repro.webgraph.urls` — host / site parsing helpers.
* :class:`repro.webgraph.graph.WebGraph` — pages + hyperlinks.
* :class:`repro.webgraph.search_api.SimulatedSearchEngine` — the `link:`
  backlink API with result caps and deliberate incompleteness.
* :class:`repro.webgraph.crawler.Crawler` — BFS crawler that locates form
  pages in the graph.
* :mod:`repro.webgraph.form_classifier` — searchable vs non-searchable.
"""

from repro.webgraph.crawler import CrawlResult, Crawler
from repro.webgraph.form_classifier import classify_form, is_searchable
from repro.webgraph.graph import WebGraph, WebPage
from repro.webgraph.search_api import SimulatedSearchEngine
from repro.webgraph.urls import host_of, root_url_of, same_site

__all__ = [
    "CrawlResult",
    "Crawler",
    "classify_form",
    "is_searchable",
    "WebGraph",
    "WebPage",
    "SimulatedSearchEngine",
    "host_of",
    "root_url_of",
    "same_site",
]
