"""A breadth-first crawler that locates form pages in a web graph.

Stands in for the paper's form-focused crawler [3]: starting from seed
URLs, it traverses the (synthetic) web, reports every page containing a
form, and optionally filters to searchable forms using
:mod:`repro.webgraph.form_classifier` — producing exactly the input CAFC
expects (Section 1, footnote 1).
"""

from collections import deque
from dataclasses import dataclass, field
from typing import List, Sequence, Set

from repro.html.forms import extract_forms
from repro.webgraph.form_classifier import classify_form
from repro.webgraph.graph import WebGraph, WebPage


@dataclass
class CrawlResult:
    """What a crawl found."""

    visited: List[str] = field(default_factory=list)
    form_pages: List[WebPage] = field(default_factory=list)
    rejected_form_pages: List[WebPage] = field(default_factory=list)

    @property
    def n_visited(self) -> int:
        return len(self.visited)


class Crawler:
    """BFS crawler over a :class:`WebGraph`.

    Parameters
    ----------
    graph:
        The web snapshot to crawl.
    max_pages:
        Stop after visiting this many pages (0 = unlimited).
    filter_searchable:
        When True (default), pages whose forms are all classified
        non-searchable land in ``rejected_form_pages`` instead of
        ``form_pages``.
    """

    def __init__(
        self,
        graph: WebGraph,
        max_pages: int = 0,
        filter_searchable: bool = True,
    ) -> None:
        self.graph = graph
        self.max_pages = max_pages
        self.filter_searchable = filter_searchable

    def crawl(self, seeds: Sequence[str]) -> CrawlResult:
        """Breadth-first traversal from ``seeds``.

        Unknown URLs (dangling links) are skipped silently, like a real
        crawler skipping 404s.
        """
        result = CrawlResult()
        queue = deque(seeds)
        seen: Set[str] = set(seeds)
        while queue:
            if self.max_pages and len(result.visited) >= self.max_pages:
                break
            url = queue.popleft()
            page = self.graph.get(url)
            if page is None:
                continue
            result.visited.append(url)
            self._inspect(page, result)
            for target in page.outlinks:
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return result

    def _inspect(self, page: WebPage, result: CrawlResult) -> None:
        forms = extract_forms(page.html)
        if not forms:
            return
        if not self.filter_searchable or any(classify_form(f) for f in forms):
            result.form_pages.append(page)
        else:
            result.rejected_form_pages.append(page)
