"""A minimal DOM for parsed HTML.

Only what the form-page model needs: an element tree with tag names,
attributes, text nodes, and simple traversal/search helpers.
"""

from typing import Dict, Iterator, List, Optional


class Node:
    """Base class for DOM nodes."""

    parent: Optional["Element"]

    def __init__(self) -> None:
        self.parent = None

    def text_content(self) -> str:
        """All descendant text, concatenated with spaces."""
        raise NotImplementedError


class Text(Node):
    """A text node."""

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    def text_content(self) -> str:
        return self.data

    def __repr__(self) -> str:
        preview = self.data.strip()[:30]
        return f"Text({preview!r})"


class Element(Node):
    """An element node with a tag, attributes and children."""

    def __init__(self, tag: str, attrs: Optional[Dict[str, str]] = None) -> None:
        super().__init__()
        self.tag = tag.lower()
        self.attrs: Dict[str, str] = dict(attrs or {})
        self.children: List[Node] = []

    # ----------------------------------------------------------------
    # Construction.
    # ----------------------------------------------------------------

    def append(self, node: Node) -> None:
        """Append ``node`` as the last child."""
        node.parent = self
        self.children.append(node)

    # ----------------------------------------------------------------
    # Attributes.
    # ----------------------------------------------------------------

    def get(self, name: str, default: str = "") -> str:
        """Return attribute ``name`` (case-insensitive), or ``default``."""
        return self.attrs.get(name.lower(), default)

    def has_attr(self, name: str) -> bool:
        return name.lower() in self.attrs

    # ----------------------------------------------------------------
    # Traversal.
    # ----------------------------------------------------------------

    def iter(self) -> Iterator["Element"]:
        """Yield this element and every descendant element, pre-order."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def iter_text_nodes(self) -> Iterator[Text]:
        """Yield every descendant text node, document order."""
        for child in self.children:
            if isinstance(child, Text):
                yield child
            elif isinstance(child, Element):
                yield from child.iter_text_nodes()

    def find_all(self, tag: str) -> List["Element"]:
        """All descendant elements (including self) with tag ``tag``."""
        tag = tag.lower()
        return [el for el in self.iter() if el.tag == tag]

    def find(self, tag: str) -> Optional["Element"]:
        """First descendant element (including self) with tag ``tag``."""
        tag = tag.lower()
        for el in self.iter():
            if el.tag == tag:
                return el
        return None

    def ancestors(self) -> Iterator["Element"]:
        """Yield ancestor elements, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def has_ancestor(self, tag: str) -> bool:
        """True if any ancestor has tag ``tag``."""
        tag = tag.lower()
        return any(anc.tag == tag for anc in self.ancestors())

    # ----------------------------------------------------------------
    # Text.
    # ----------------------------------------------------------------

    def text_content(self) -> str:
        parts = [child.text_content() for child in self.children]
        return " ".join(part for part in parts if part)

    def __repr__(self) -> str:
        return f"Element(<{self.tag}> children={len(self.children)})"


# Tags whose content is never visible text.
NON_VISIBLE_TAGS = frozenset({"script", "style", "noscript", "template", "head"})

# Void (self-closing) HTML tags; the parser never pushes these on the stack.
VOID_TAGS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)

# Elements that implicitly close an open element of the same tag.  Real web
# pages (especially 2000s-era ones the paper crawled) rarely close these.
SELF_NESTING_CLOSERS = frozenset({"p", "li", "option", "tr", "td", "th", "dt", "dd"})
