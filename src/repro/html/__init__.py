"""HTML substrate: tolerant parsing, form extraction, located text.

The paper's form-page model needs four things from an HTML page:

* the text inside the ``<form>`` element(s) — the FC feature space;
* the full page text — the PC feature space;
* term *locations* (``<title>``, ``<option>``, body) for the LOC weight
  factor in Equation 1;
* the structure of each form (fields, types, options, labels) so that
  searchable forms can be told apart from login/quote-request forms and
  hidden fields can be ignored (Section 4.1, footnote 3).

No third-party HTML library is available in this environment, so this
package implements a small, tolerant DOM on top of the standard library's
``html.parser``.
"""

from repro.html.dom import Element, Node, Text
from repro.html.forms import Form, FormField, SelectOption, extract_forms
from repro.html.parser import parse_html
from repro.html.text_extract import LocatedText, TextLocation, extract_located_text

__all__ = [
    "Element",
    "Node",
    "Text",
    "Form",
    "FormField",
    "SelectOption",
    "extract_forms",
    "parse_html",
    "LocatedText",
    "TextLocation",
    "extract_located_text",
]
