"""Located text extraction: every visible term, tagged with where it sits.

Equation 1 multiplies term frequency by a location factor ``LOC_i``: terms
in the page ``<title>`` get a boost, terms inside form ``<option>`` tags
get a discount (they reflect database *contents*, which vary per site,
rather than the schema).  This module walks the DOM once and emits each
visible text fragment together with its :class:`TextLocation`, and whether
it is inside a ``<form>`` — the split that defines the FC vs PC feature
spaces.
"""

import enum
from dataclasses import dataclass
from typing import List

from repro.html.dom import Element, NON_VISIBLE_TAGS, Text
from repro.html.parser import parse_html


class TextLocation(enum.Enum):
    """Where a text fragment appears, for LOC weighting (Equation 1)."""

    TITLE = "title"       # inside <title>: boosted in PC
    OPTION = "option"     # inside <option>: discounted in FC
    ANCHOR = "anchor"     # inside <a>: informative link text
    BODY = "body"         # everything else


@dataclass
class LocatedText:
    """A visible text fragment with its location metadata."""

    text: str
    location: TextLocation
    inside_form: bool


def _location_of(element: Element) -> TextLocation:
    """Classify an element by its own tag and ancestry."""
    if element.tag == "title" or element.has_ancestor("title"):
        return TextLocation.TITLE
    if element.tag == "option" or element.has_ancestor("option"):
        return TextLocation.OPTION
    if element.tag == "a" or element.has_ancestor("a"):
        return TextLocation.ANCHOR
    return TextLocation.BODY


def _walk(element: Element, inside_form: bool, out: List[LocatedText]) -> None:
    if element.tag in NON_VISIBLE_TAGS and element.tag != "head":
        return
    if element.tag == "head":
        # The title inside <head> is visible (browser chrome + search
        # snippets); everything else in head is not.
        title = element.find("title")
        if title is not None:
            text = title.text_content().strip()
            if text:
                out.append(LocatedText(text, TextLocation.TITLE, inside_form))
        return
    if element.tag == "input":
        input_type = element.get("type").lower()
        if input_type in ("submit", "button", "image", "reset"):
            value = element.get("value") or element.get("alt")
            if value:
                out.append(LocatedText(value, TextLocation.BODY, inside_form))
        elif input_type != "hidden":
            placeholder = element.get("placeholder")
            if placeholder:
                out.append(LocatedText(placeholder, TextLocation.BODY, inside_form))
        return
    if element.tag == "img":
        alt = element.get("alt")
        if alt:
            out.append(LocatedText(alt, _location_of(element), inside_form))
        return

    now_inside_form = inside_form or element.tag == "form"
    for child in element.children:
        if isinstance(child, Text):
            fragment = child.data.strip()
            if fragment:
                out.append(
                    LocatedText(fragment, _location_of(element), now_inside_form)
                )
        elif isinstance(child, Element):
            _walk(child, now_inside_form, out)


def extract_located_text(root_or_html) -> List[LocatedText]:
    """Extract all visible text fragments with location + form membership.

    Accepts either a parsed DOM root or a raw HTML string.

    >>> frags = extract_located_text(
    ...     "<title>Jobs</title><form><option>Engineer</option></form>")
    >>> [(f.text, f.location.value, f.inside_form) for f in frags]
    [('Jobs', 'title', False), ('Engineer', 'option', True)]
    """
    root = parse_html(root_or_html) if isinstance(root_or_html, str) else root_or_html
    fragments: List[LocatedText] = []
    _walk(root, inside_form=False, out=fragments)
    return fragments


def page_text(root_or_html) -> str:
    """All visible page text (the PC source), markup removed."""
    return " ".join(frag.text for frag in extract_located_text(root_or_html))


def form_text(root_or_html) -> str:
    """All visible text inside forms (the FC source)."""
    return " ".join(
        frag.text for frag in extract_located_text(root_or_html) if frag.inside_form
    )
