"""Form extraction: structure of ``<form>`` elements.

The form-page model needs each form's visible text (FC), the text inside
``<option>`` tags (down-weighted by LOC in Equation 1), and enough field
structure to (a) ignore hidden fields (paper Section 4.1, footnote 3) and
(b) drive the generic searchable-form classifier.
"""

from dataclasses import dataclass, field
from typing import List

from repro.html.dom import Element, NON_VISIBLE_TAGS, Text
from repro.html.parser import parse_html

# Input types that never contribute user-visible schema information.
_NON_VISIBLE_INPUT_TYPES = frozenset({"hidden"})

# Input types that accept free text.
TEXT_INPUT_TYPES = frozenset({"text", "search", "email", "tel", "", "number"})


@dataclass
class SelectOption:
    """One ``<option>`` inside a ``<select>``."""

    value: str
    text: str


@dataclass
class FormField:
    """One form control (input / select / textarea / button)."""

    tag: str                       # input | select | textarea | button
    type: str                      # input @type (lowercase), '' otherwise
    name: str                      # @name or @id
    label: str = ""                # associated <label> text, if any
    options: List[SelectOption] = field(default_factory=list)

    @property
    def is_hidden(self) -> bool:
        """True for fields invisible to users (excluded from the model)."""
        return self.tag == "input" and self.type in _NON_VISIBLE_INPUT_TYPES

    @property
    def is_text_input(self) -> bool:
        """True for free-text entry fields."""
        if self.tag == "textarea":
            return True
        return self.tag == "input" and self.type in TEXT_INPUT_TYPES

    @property
    def is_password(self) -> bool:
        return self.tag == "input" and self.type == "password"

    @property
    def is_submit(self) -> bool:
        if self.tag == "button":
            return self.type in ("", "submit")
        return self.tag == "input" and self.type in ("submit", "image")


@dataclass
class Form:
    """A parsed ``<form>`` element.

    ``visible_text`` is the text between the FORM tags with markup removed
    and hidden-field content excluded — exactly the paper's FC source.
    ``option_text`` is the subset of that text that sits inside ``<option>``
    tags, so the vectorizer can apply the lower LOC weight.
    """

    action: str
    method: str
    fields: List[FormField]
    visible_text: str
    option_text: str

    # ----------------------------------------------------------------
    # Field-profile helpers (used by the searchable-form classifier).
    # ----------------------------------------------------------------

    @property
    def visible_fields(self) -> List[FormField]:
        return [f for f in self.fields if not f.is_hidden]

    @property
    def text_inputs(self) -> List[FormField]:
        return [f for f in self.visible_fields if f.is_text_input]

    @property
    def selects(self) -> List[FormField]:
        return [f for f in self.visible_fields if f.tag == "select"]

    @property
    def has_password_field(self) -> bool:
        return any(f.is_password for f in self.fields)

    @property
    def attribute_count(self) -> int:
        """Number of visible, non-submit controls (the paper's form 'size'
        notion for single- vs multi-attribute forms)."""
        return sum(
            1 for f in self.visible_fields if not f.is_submit
        )

    @property
    def is_single_attribute(self) -> bool:
        return self.attribute_count == 1


def _element_visible_text(element: Element) -> str:
    """Visible text under ``element``: skips scripts/styles and hidden inputs.

    Attribute-borne text that users see (submit button values, alt text,
    placeholders) is included, since it is rendered on the page.
    """
    parts: List[str] = []
    _collect_visible_text(element, parts)
    return " ".join(parts)


def _collect_visible_text(element: Element, parts: List[str]) -> None:
    # Rendered attribute values on the element itself.
    if element.tag == "input":
        input_type = element.get("type").lower()
        if input_type not in _NON_VISIBLE_INPUT_TYPES:
            # Button captions render as text; a text input's default value
            # also renders.  Placeholder and alt text render in all cases.
            if input_type in ("submit", "button", "image", "reset"):
                value = element.get("value")
                if value:
                    parts.append(value)
            for attr in ("placeholder", "alt"):
                value = element.get(attr)
                if value:
                    parts.append(value)
        return  # void element, no children
    if element.tag == "img":
        alt = element.get("alt")
        if alt:
            parts.append(alt)
        return
    if element.tag in NON_VISIBLE_TAGS:
        return
    for child in element.children:
        if isinstance(child, Text):
            parts.append(child.data)
        elif isinstance(child, Element):
            _collect_visible_text(child, parts)


def _field_label_map(root: Element) -> dict:
    """Map control id -> <label for=...> text for the whole document."""
    labels = {}
    for label_el in root.find_all("label"):
        target = label_el.get("for")
        if target:
            labels[target] = label_el.text_content().strip()
    return labels


def _extract_field(element: Element, labels: dict) -> FormField:
    tag = element.tag
    field_type = element.get("type").lower() if tag == "input" else ""
    name = element.get("name") or element.get("id")
    label = labels.get(element.get("id"), "")
    if not label:
        # <label>Text <input ...></label> pattern: use the wrapping label.
        for anc in element.ancestors():
            if anc.tag == "label":
                label = anc.text_content().strip()
                break
    options = []
    if tag == "select":
        options = [
            SelectOption(value=opt.get("value"), text=opt.text_content().strip())
            for opt in element.find_all("option")
        ]
    return FormField(tag=tag, type=field_type, name=name, label=label, options=options)


def extract_forms(root_or_html) -> List[Form]:
    """Extract every form from a DOM root or a raw HTML string.

    >>> forms = extract_forms('<form action="/s"><input name="q"></form>')
    >>> forms[0].text_inputs[0].name
    'q'
    """
    root = parse_html(root_or_html) if isinstance(root_or_html, str) else root_or_html
    labels = _field_label_map(root)
    forms = []
    for form_el in root.find_all("form"):
        fields = [
            _extract_field(el, labels)
            for el in form_el.iter()
            if el.tag in ("input", "select", "textarea", "button")
        ]
        option_parts = [
            opt.text_content() for opt in form_el.find_all("option")
        ]
        forms.append(
            Form(
                action=form_el.get("action"),
                method=form_el.get("method", "get").lower(),
                fields=fields,
                visible_text=_element_visible_text(form_el),
                option_text=" ".join(option_parts),
            )
        )
    return forms
