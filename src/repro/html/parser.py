"""Tolerant HTML -> DOM parsing on top of ``html.parser``.

Real form pages (the paper's corpus was crawled in 2005-2006) are full of
unclosed tags, stray end tags and implicit nesting.  The parser below keeps
an open-element stack, auto-closes void tags, handles implicit closers
(``<option>`` after ``<option>``, ``<li>`` after ``<li>``, ...) and ignores
end tags that match nothing — it never raises on malformed input.
"""

from html.parser import HTMLParser
from typing import List, Tuple

from repro.html.dom import Element, SELF_NESTING_CLOSERS, Text, VOID_TAGS


class _DomBuilder(HTMLParser):
    """Incremental DOM builder driven by html.parser events."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = Element("html")
        self._stack: List[Element] = [self.root]

    # ----------------------------------------------------------------
    # Stack helpers.
    # ----------------------------------------------------------------

    @property
    def _top(self) -> Element:
        return self._stack[-1]

    def _open(self, element: Element) -> None:
        self._top.append(element)
        self._stack.append(element)

    def _close_through(self, tag: str) -> bool:
        """Pop the stack through the nearest open ``tag``.

        Returns False (and pops nothing) when ``tag`` is not open — stray
        end tags are simply ignored.
        """
        for depth in range(len(self._stack) - 1, 0, -1):
            if self._stack[depth].tag == tag:
                del self._stack[depth:]
                return True
        return False

    # ----------------------------------------------------------------
    # html.parser callbacks.
    # ----------------------------------------------------------------

    def handle_starttag(self, tag: str, attrs: List[Tuple[str, str]]) -> None:
        tag = tag.lower()
        attr_dict = {name.lower(): (value or "") for name, value in attrs}
        if tag == "html":
            # Merge attributes into the synthetic root instead of nesting.
            self.root.attrs.update(attr_dict)
            return
        if tag in SELF_NESTING_CLOSERS and self._top.tag == tag:
            # <option>a<option>b  ==  <option>a</option><option>b</option>
            self._stack.pop()
        element = Element(tag, attr_dict)
        if tag in VOID_TAGS:
            self._top.append(element)
        else:
            self._open(element)

    def handle_startendtag(self, tag: str, attrs: List[Tuple[str, str]]) -> None:
        tag = tag.lower()
        attr_dict = {name.lower(): (value or "") for name, value in attrs}
        if tag == "html":
            self.root.attrs.update(attr_dict)
            return
        self._top.append(Element(tag, attr_dict))

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        if tag == "html" or tag in VOID_TAGS:
            return
        self._close_through(tag)

    def handle_data(self, data: str) -> None:
        if data and not data.isspace():
            self._top.append(Text(data))

    def error(self, message: str) -> None:  # pragma: no cover - py<3.10 shim
        # html.parser in non-strict mode never calls this, but older
        # interpreters require the method to exist.
        pass


def parse_html(html: str) -> Element:
    """Parse ``html`` into a DOM tree rooted at a synthetic ``<html>`` node.

    The parser is tolerant: malformed markup produces a best-effort tree and
    never raises.

    >>> root = parse_html("<title>Jobs</title><form><input name=q></form>")
    >>> root.find("form").find("input").get("name")
    'q'
    """
    builder = _DomBuilder()
    builder.feed(html)
    builder.close()
    return builder.root
