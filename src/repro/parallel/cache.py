"""Content-hash keyed caches for per-page analyses.

A page analysis (parse + tokenize + stem) is a pure function of the
page's URL, HTML, anchor texts, and the analyzer configuration — so it
can be memoized by a stable digest of exactly those inputs.  Two layers:

* :class:`AnalysisCache` — a bounded in-memory LRU, owned by the
  vectorizer.  Makes ``transform_new`` reuse the analysis computed
  during ``fit_transform`` (the service ``/classify`` retry path), and
  lets repeated ``fit_transform`` calls in one process skip the map
  phase entirely.
* :class:`DiskAnalysisCache` — an optional on-disk store (one JSON file
  per digest, sharded by prefix, written through the same fsynced
  atomic writer as every other stored artifact).  Re-runs and
  experiment batteries across processes skip re-parsing unchanged
  pages.

Determinism: the cached form stores term lists in original document
order with exact integer counts, so a cache hit reproduces the same
``PageAnalysis`` — and therefore the same vectors — bit-for-bit.
"""

import hashlib
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

from repro.core.form_page import RawFormPage
from repro.html.text_extract import TextLocation

#: Bump when the stored analysis layout changes.
_CACHE_FORMAT_VERSION = 1


def analyzer_fingerprint(analyzer) -> str:
    """A stable digest of the analyzer configuration.

    Analyses are only interchangeable between runs that tokenize, filter
    and stem identically; ablations (custom stopword sets, disabled
    stemming) must never share cache entries with default runs.
    """
    hasher = hashlib.sha256()
    hasher.update(type(analyzer).__name__.encode("utf-8"))
    hasher.update(b"\x1f")
    hasher.update(",".join(sorted(analyzer.stopwords)).encode("utf-8"))
    hasher.update(b"\x1f")
    stemmer = getattr(analyzer, "stemmer", None)
    hasher.update((type(stemmer).__name__ if stemmer else "none").encode("utf-8"))
    return hasher.hexdigest()[:16]


def page_analysis_key(raw: RawFormPage, analyzer_print: str) -> str:
    """Digest of everything a page analysis depends on.

    Backlinks are deliberately excluded — they never enter the text
    analysis (only the vector-building step consumes them).
    """
    hasher = hashlib.sha256()
    for part in (analyzer_print, raw.url, raw.html, "\x00".join(raw.anchor_texts)):
        # Malformed pages (e.g. html=None from a failed fetch) still get a
        # key; the analysis itself then fails with a typed IngestError.
        hasher.update(str(part).encode("utf-8", "replace"))
        hasher.update(b"\x1f")
    return hasher.hexdigest()


class AnalysisCache:
    """A bounded in-memory LRU of :class:`~repro.parallel.ingest.PageAnalysis`.

    Thread-safe: every operation holds an internal lock, because the
    service's ``ThreadingHTTPServer`` runs ``transform_new`` outside the
    directory locks and concurrent ``/classify`` / ``/add`` requests hit
    this cache simultaneously.  The lock is a dict move plus a counter
    bump — negligible next to the parse it saves.  ``max_size=0``
    disables storage (every ``get`` misses), which keeps call sites
    branch-free.
    """

    def __init__(self, max_size: int = 4096) -> None:
        self.max_size = max(0, int(max_size))
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, analysis) -> None:
        if self.max_size == 0:
            return
        with self._lock:
            self._entries[key] = analysis
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class DiskAnalysisCache:
    """On-disk page-analysis store: ``<dir>/<k[:2]>/<key>.json``.

    Reads tolerate missing or corrupt entries (they count as misses and
    get rewritten); writes go through
    :func:`repro.datasets.store.atomic_write_json`, so a crashed run
    never leaves a torn entry behind.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str):
        # Imported here, not at module top: repro.datasets pulls the
        # pipeline back in, and this module sits below core in the
        # import graph.
        from repro.datasets.store import read_json

        path = self._path(key)
        try:
            payload = read_json(path)
        except (OSError, ValueError):
            self.misses += 1
            return None
        analysis = analysis_from_json(payload)
        if analysis is None:
            self.misses += 1
            return None
        self.hits += 1
        return analysis

    def put(self, key: str, analysis) -> None:
        from repro.datasets.store import atomic_write_json

        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(analysis_to_json(analysis), path)


# ----------------------------------------------------------------------
# JSON round trip for PageAnalysis (imported lazily by the ingest module
# to avoid a cycle; the payload is exact — strings and ints only).
# ----------------------------------------------------------------------


def analysis_to_json(analysis) -> dict:
    return {
        "v": _CACHE_FORMAT_VERSION,
        "pc": [[term, loc.value] for term, loc in analysis.pc_terms],
        "fc": [[term, loc.value] for term, loc in analysis.fc_terms],
        "attrs": analysis.attribute_count,
        "on_page": analysis.on_page_terms,
    }


def analysis_from_json(payload):
    from repro.parallel.ingest import PageAnalysis

    if not isinstance(payload, dict) or payload.get("v") != _CACHE_FORMAT_VERSION:
        return None
    try:
        return PageAnalysis(
            pc_terms=[
                (str(term), TextLocation(loc)) for term, loc in payload["pc"]
            ],
            fc_terms=[
                (str(term), TextLocation(loc)) for term, loc in payload["fc"]
            ],
            attribute_count=int(payload["attrs"]),
            on_page_terms=int(payload["on_page"]),
        )
    except (KeyError, TypeError, ValueError):
        return None
