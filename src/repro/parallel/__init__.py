"""Parallel ingestion & vectorization — the map/reduce corpus pipeline.

The paper's vectorization (Section 2.1) is embarrassingly parallel at
the page level: each ``FP = (PC, FC)`` is parsed, tokenized and stemmed
independently, and only the IDF pass needs global state.  This package
turns that observation into a two-phase engine:

1. **map** — workers turn raw HTML into located-term analyses (the
   CPU-heavy ~80%: parse + tokenize + Porter-stem);
2. **reduce** — the parent merges per-space document frequencies in
   deterministic page order and emits the Equation-1 TF-IDF vectors.

The non-negotiable invariant: parallel output is **bit-identical** to
serial output — same vocabulary order, same DF counts, same float
weights (pinned by ``tests/test_parallel_ingest.py`` over the full
benchmark corpus).  See docs/INGESTION.md for the determinism contract
and executor-selection guidance.
"""

from repro.parallel.cache import (
    AnalysisCache,
    DiskAnalysisCache,
    page_analysis_key,
)
from repro.parallel.config import ParallelConfig, ResolvedPlan
from repro.parallel.ingest import (
    IngestError,
    IngestStats,
    PageAnalysis,
    analyze_form_page,
    analyze_pages,
    parallel_map,
)

__all__ = [
    "AnalysisCache",
    "DiskAnalysisCache",
    "IngestError",
    "IngestStats",
    "PageAnalysis",
    "ParallelConfig",
    "ResolvedPlan",
    "analyze_form_page",
    "analyze_pages",
    "page_analysis_key",
    "parallel_map",
]
