"""The map phase of parallel ingestion: raw HTML -> located-term analyses.

:func:`analyze_form_page` is the single source of truth for per-page
text analysis — the vectorizer's serial path, the thread and process
workers, and the disk cache all produce or replay exactly this
function's output, which is what makes the parallel path bit-identical
to the serial one:

* term lists keep original document order (so LOC-weighted TF counters
  accumulate in the same order);
* the parent merges document frequencies itself, in page order, through
  the same ``CorpusStats.add_document`` call the serial path uses (so
  vocabulary insertion order and DF counts match exactly);
* stemming and tokenization are pure functions, so *where* they run
  (worker process, thread, parent) cannot change their output.

Failures inside a worker surface as a typed :class:`IngestError` naming
the page URL; ``KeyboardInterrupt`` shuts the pool down and propagates.
"""

import concurrent.futures
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.form_page import LocatedTerm, RawFormPage
from repro.html.forms import extract_forms
from repro.html.parser import parse_html
from repro.html.text_extract import TextLocation, extract_located_text
from repro.parallel.cache import (
    AnalysisCache,
    DiskAnalysisCache,
    analyzer_fingerprint,
    page_analysis_key,
)
from repro.parallel.config import ParallelConfig, ResolvedPlan
from repro.text.analyzer import TextAnalyzer

T = TypeVar("T")
R = TypeVar("R")


class IngestError(RuntimeError):
    """A page failed to analyze; ``url`` names the culprit."""

    def __init__(self, url: str, cause: str) -> None:
        self.url = url
        self.cause = cause
        super().__init__(f"failed to analyze page {url!r}: {cause}")


@dataclass
class PageAnalysis:
    """The map-phase output for one page — everything downstream of
    parsing that vector building needs.  Picklable and JSON-exact."""

    pc_terms: List[LocatedTerm]
    fc_terms: List[LocatedTerm]
    attribute_count: int
    on_page_terms: int


@dataclass
class IngestStats:
    """Cumulative ingestion instrumentation (per vectorizer)."""

    pages_total: int = 0        # pages requested through analyze_pages
    pages_analyzed: int = 0     # actually parsed (cache misses)
    memory_cache_hits: int = 0
    disk_cache_hits: int = 0
    map_seconds: float = 0.0    # wall time of the map phase
    runs: int = 0
    executor: str = "serial"    # plan of the most recent run
    workers: int = 1
    chunk_size: int = 0

    @property
    def cache_hits(self) -> int:
        return self.memory_cache_hits + self.disk_cache_hits

    def describe(self) -> str:
        return (
            f"{self.executor} x{self.workers}: {self.pages_total} pages, "
            f"{self.pages_analyzed} analyzed, {self.cache_hits} cached, "
            f"{self.map_seconds:.2f}s map"
        )

    def as_dict(self) -> dict:
        return {
            "pages_total": self.pages_total,
            "pages_analyzed": self.pages_analyzed,
            "memory_cache_hits": self.memory_cache_hits,
            "disk_cache_hits": self.disk_cache_hits,
            "map_seconds": self.map_seconds,
            "runs": self.runs,
            "executor": self.executor,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
        }


def analyze_form_page(raw: RawFormPage, analyzer: TextAnalyzer) -> PageAnalysis:
    """Analyze one raw page: parse, locate text, tokenize, stem.

    This is the Section 2.1 construction up to (but excluding) the
    corpus-relative IDF weighting.  ``on_page_terms`` counts only the
    page's own visible terms — harvested anchor text (appended at the
    end of ``pc_terms``) is excluded, since Table 1 reasons about
    on-page text.
    """
    root = parse_html(raw.html)
    pc_terms: List[LocatedTerm] = []
    fc_terms: List[LocatedTerm] = []
    for fragment in extract_located_text(root):
        terms = analyzer.analyze(fragment.text)
        located = [(term, fragment.location) for term in terms]
        pc_terms.extend(located)
        if fragment.inside_form:
            fc_terms.extend(located)
    # Incoming anchor text (when harvested) joins the page context with
    # the ANCHOR location weight — it describes the page the way the
    # linking site sees it.
    on_page_terms = len(pc_terms)
    for anchor in raw.anchor_texts:
        pc_terms.extend(
            (term, TextLocation.ANCHOR) for term in analyzer.analyze(anchor)
        )
    attribute_count = 0
    forms = extract_forms(root)
    if forms:
        # A page can embed several forms (nav search + the database
        # form); the database form is normally the largest.
        attribute_count = max(form.attribute_count for form in forms)
    return PageAnalysis(pc_terms, fc_terms, attribute_count, on_page_terms)


# ----------------------------------------------------------------------
# Worker protocol.  Process workers get the analyzer once via the pool
# initializer (one pickle per worker, not per chunk); each worker keeps
# its own stem cache warm across chunks.  Per-page exceptions become
# ('err', ...) markers so the parent can raise a typed IngestError;
# KeyboardInterrupt is deliberately not caught.
# ----------------------------------------------------------------------

_WORKER_ANALYZER: Optional[TextAnalyzer] = None

_ChunkItem = Tuple[int, RawFormPage]
_ChunkResult = Tuple[str, int, object, object]  # ('ok'|'err', index, payload, url)


def _init_worker(analyzer: TextAnalyzer) -> None:
    global _WORKER_ANALYZER
    _WORKER_ANALYZER = analyzer


def _analyze_chunk_with(
    analyzer: TextAnalyzer, chunk: Sequence[_ChunkItem]
) -> List[_ChunkResult]:
    out: List[_ChunkResult] = []
    for index, raw in chunk:
        try:
            out.append(("ok", index, analyze_form_page(raw, analyzer), raw.url))
        except Exception as exc:
            out.append(("err", index, f"{type(exc).__name__}: {exc}", raw.url))
    return out


def _analyze_chunk(chunk: Sequence[_ChunkItem]) -> List[_ChunkResult]:
    assert _WORKER_ANALYZER is not None, "worker initializer did not run"
    return _analyze_chunk_with(_WORKER_ANALYZER, chunk)


def _chunked(items: Sequence[T], size: int) -> List[Sequence[T]]:
    return [items[start:start + size] for start in range(0, len(items), size)]


def _run_pool(
    plan: ResolvedPlan,
    analyzer: TextAnalyzer,
    pending: List[_ChunkItem],
) -> List[_ChunkResult]:
    """Run the map phase on a thread or process pool.

    The pool is always shut down — including on ``KeyboardInterrupt``,
    where queued chunks are cancelled before the interrupt propagates.
    """
    chunks = _chunked(pending, plan.chunk_size)
    if plan.kind == "process":
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=plan.workers,
            initializer=_init_worker,
            initargs=(analyzer,),
        )
        run_chunk: Callable = _analyze_chunk
    else:
        executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=plan.workers, thread_name_prefix="repro-ingest"
        )
        run_chunk = lambda chunk: _analyze_chunk_with(analyzer, chunk)  # noqa: E731
    results: List[_ChunkResult] = []
    try:
        for chunk_out in executor.map(run_chunk, chunks):
            results.extend(chunk_out)
    except KeyboardInterrupt:
        executor.shutdown(wait=False, cancel_futures=True)
        raise
    executor.shutdown()
    return results


def analyze_pages(
    raw_pages: Sequence[RawFormPage],
    analyzer: TextAnalyzer,
    config: Optional[ParallelConfig] = None,
    memory_cache: Optional[AnalysisCache] = None,
    disk_cache: Optional[DiskAnalysisCache] = None,
    stats: Optional[IngestStats] = None,
) -> List[PageAnalysis]:
    """The map phase over a collection, in input order.

    Cached analyses (memory first, then disk) are reused when
    ``config.use_cache`` allows; only the misses go to the executor the
    resolved plan picked.  The returned list is index-aligned with
    ``raw_pages`` regardless of executor or completion order.
    """
    config = config or ParallelConfig()
    stats = stats if stats is not None else IngestStats()
    started = time.perf_counter()
    n = len(raw_pages)
    results: List[Optional[PageAnalysis]] = [None] * n
    keys: List[Optional[str]] = [None] * n

    pending: List[_ChunkItem] = []
    caching = config.use_cache and (
        memory_cache is not None or disk_cache is not None
    )
    if caching:
        fingerprint = analyzer_fingerprint(analyzer)
        for index, raw in enumerate(raw_pages):
            key = page_analysis_key(raw, fingerprint)
            keys[index] = key
            hit = memory_cache.get(key) if memory_cache is not None else None
            if hit is not None:
                results[index] = hit
                stats.memory_cache_hits += 1
                continue
            if disk_cache is not None:
                hit = disk_cache.get(key)
                if hit is not None:
                    results[index] = hit
                    stats.disk_cache_hits += 1
                    if memory_cache is not None:
                        memory_cache.put(key, hit)
                    continue
            pending.append((index, raw))
    else:
        pending = list(enumerate(raw_pages))

    plan = config.resolve(len(pending))
    if plan.is_serial:
        mapped: List[_ChunkResult] = _analyze_chunk_with(analyzer, pending)
    else:
        mapped = _run_pool(plan, analyzer, pending)

    for status, index, payload, url in mapped:
        if status == "err":
            raise IngestError(str(url), str(payload))
        analysis = payload
        results[index] = analysis
        stats.pages_analyzed += 1
        if caching and keys[index] is not None:
            if memory_cache is not None:
                memory_cache.put(keys[index], analysis)
            if disk_cache is not None:
                disk_cache.put(keys[index], analysis)

    stats.pages_total += n
    stats.map_seconds += time.perf_counter() - started
    stats.runs += 1
    stats.executor = plan.kind
    stats.workers = plan.workers
    stats.chunk_size = plan.chunk_size
    return results  # type: ignore[return-value]  # every slot is filled


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    config: Optional[ParallelConfig] = None,
) -> List[R]:
    """Order-preserving map under a :class:`ParallelConfig` plan.

    A generic helper for call sites outside the vectorizer (e.g. webgen
    backlink harvesting).  Only the thread executor is offered for
    arbitrary callables — closures over graphs and engines rarely
    pickle — so a ``process`` plan degrades to threads here.  Serial
    plans call ``fn`` inline.
    """
    config = config or ParallelConfig()
    plan = config.resolve(len(items))
    if plan.is_serial:
        return [fn(item) for item in items]
    executor = concurrent.futures.ThreadPoolExecutor(
        max_workers=plan.workers, thread_name_prefix="repro-pmap"
    )
    try:
        return list(executor.map(fn, items))
    except KeyboardInterrupt:
        executor.shutdown(wait=False, cancel_futures=True)
        raise
    finally:
        executor.shutdown()
