"""Execution planning for parallel ingestion.

:class:`ParallelConfig` is the user-facing knob set (threaded through
:class:`~repro.core.config.CAFCConfig`, the CLI ``--workers`` flags, and
the service); :meth:`ParallelConfig.resolve` turns it into a concrete
:class:`ResolvedPlan` for one corpus — which executor actually runs,
with how many workers and what chunk size.

The ``auto`` policy is deliberately conservative: parallelism only pays
when there are enough pages to amortize pool startup and pickling, and a
process pool on a single-core host is pure overhead, so ``auto``
degrades to serial whenever either condition fails.  Forcing
``executor="process"`` (or ``"thread"``) always honors the request —
that is what the parity tests rely on.
"""

import os
from dataclasses import dataclass
from typing import Optional

#: Below this corpus size ``auto`` stays serial: pool startup plus
#: per-page pickling costs more than the analysis itself.
MIN_AUTO_PARALLEL_PAGES = 64

_EXECUTORS = ("auto", "serial", "thread", "process")


@dataclass(frozen=True)
class ResolvedPlan:
    """The concrete execution decision for one ingestion run."""

    kind: str          # "serial" | "thread" | "process"
    workers: int       # pool size (1 for serial)
    chunk_size: int    # pages per worker task

    @property
    def is_serial(self) -> bool:
        return self.kind == "serial"

    def describe(self) -> str:
        """Human-readable plan, e.g. ``process x4 (chunk 16)``."""
        if self.is_serial:
            return "serial"
        return f"{self.kind} x{self.workers} (chunk {self.chunk_size})"


@dataclass
class ParallelConfig:
    """Tunables for the parallel ingestion engine.

    Attributes
    ----------
    workers:
        Pool size; ``0`` means "one per CPU" (``os.cpu_count()``).
        ``1`` always runs serially — no pool is ever spawned.
    chunk_size:
        Pages per worker task; ``0`` picks a size that gives each worker
        several chunks (for load balancing) without drowning in pickling
        overhead.
    executor:
        ``"auto"`` (serial for small corpora or single-core hosts,
        process pool otherwise), ``"serial"``, ``"thread"`` or
        ``"process"``.  Threads share the parent's stem cache but stay
        GIL-bound on this pure-Python workload; processes scale with
        cores but pay fork + pickle costs.  See docs/INGESTION.md.
    use_cache:
        Reuse cached per-page analyses (in-memory, keyed by content
        hash).  Disable to force re-analysis of every page.
    cache_dir:
        Optional directory for the on-disk analysis cache; re-runs and
        experiment batteries skip re-parsing unchanged pages.  ``None``
        disables disk caching.
    """

    workers: int = 0
    chunk_size: int = 0
    executor: str = "auto"
    use_cache: bool = True
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of "
                f"{_EXECUTORS}"
            )
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per CPU)")
        if self.chunk_size < 0:
            raise ValueError("chunk_size must be >= 0 (0 = auto)")

    # ----------------------------------------------------------------
    # Planning.
    # ----------------------------------------------------------------

    def effective_workers(self) -> int:
        return self.workers if self.workers > 0 else (os.cpu_count() or 1)

    def resolve(self, n_items: int) -> ResolvedPlan:
        """Decide how ``n_items`` pages actually get analyzed."""
        workers = self.effective_workers()
        kind = self.executor
        if workers <= 1:
            # The satellite contract: workers=1 never spawns a pool,
            # whatever the requested executor.
            kind = "serial"
        elif kind == "auto":
            kind = "process" if n_items >= MIN_AUTO_PARALLEL_PAGES else "serial"
        if kind == "serial" or n_items == 0:
            return ResolvedPlan(kind="serial", workers=1, chunk_size=n_items or 1)
        chunk = self.chunk_size
        if chunk <= 0:
            # ~4 chunks per worker, capped so pickled payloads stay small.
            chunk = max(1, min(32, -(-n_items // (workers * 4))))
        return ResolvedPlan(kind=kind, workers=workers, chunk_size=chunk)

    # ----------------------------------------------------------------
    # Serialization (snapshot / CAFCConfig support).
    # ----------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "executor": self.executor,
            "use_cache": self.use_cache,
            "cache_dir": self.cache_dir,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "ParallelConfig":
        defaults = cls()
        cache_dir = state.get("cache_dir", defaults.cache_dir)
        return cls(
            workers=int(state.get("workers", defaults.workers)),
            chunk_size=int(state.get("chunk_size", defaults.chunk_size)),
            executor=str(state.get("executor", defaults.executor)),
            use_cache=bool(state.get("use_cache", defaults.use_cache)),
            cache_dir=str(cache_dir) if cache_dir is not None else None,
        )
