"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments``
    Run the full paper-experiment battery and print paper-vs-measured
    tables (takes a couple of minutes).
``corpus``
    Generate the benchmark corpus and print its profile; ``--save PATH``
    writes it as a JSON dataset.
``organize``
    Load a JSON dataset (or generate the benchmark) and run the CAFC
    pipeline, printing the resulting database-domain clusters.
``explore``
    Organize a dataset and answer a keyword query against the clusters
    (Section 6's query-based cluster exploration).
``unify``
    Organize a dataset, then match attributes across one cluster's forms
    and print the unified query interface (Section 5's downstream use).
``snapshot build`` / ``snapshot inspect``
    Persist a fully built directory index to a versioned JSON(+gzip)
    snapshot, or summarize one without loading it.
``serve``
    Run the form-directory HTTP server (see docs/SERVING.md) from a
    snapshot — or build one on the fly from a dataset / the benchmark.
"""

import argparse
import sys
from typing import List, Optional


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.run_all import experiment_names, run_all

    if args.list:
        for name in experiment_names():
            print(name)
        return 0
    try:
        print(run_all(
            seed=args.seed, n_runs=args.runs, only=args.only,
            workers=args.workers, use_cache=not args.no_cache,
            report_header=True,
        ))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    return 0


def _parallel_config(args: argparse.Namespace):
    """A ParallelConfig from the shared --workers / --no-cache flags."""
    from repro.parallel import ParallelConfig

    return ParallelConfig(
        workers=args.workers, use_cache=not args.no_cache
    )


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.webgen import generate_benchmark

    web = generate_benchmark(seed=args.seed)
    for key, value in web.profile().items():
        print(f"{key}: {value}")
    if args.save:
        from repro.datasets import save_dataset

        save_dataset(web.raw_pages(), args.save)
        print(f"saved dataset to {args.save}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Streamed ingestion over generated pages (docs/INGESTION.md)."""
    import json
    import resource
    import time

    from repro.stream import StreamConfig, run_stream
    from repro.webgen import stream_pages

    if not args.stream:
        raise SystemExit(
            "batch ingestion lives under `repro organize`; "
            "pass --stream for the streaming path"
        )
    n_pages = 20_000 if args.smoke else args.pages
    config = StreamConfig(
        batch_size=args.batch_size,
        drift_threshold=args.drift_threshold,
        reservoir_size=args.reservoir_size,
        vocab_budget=args.vocab_budget,
        min_df=args.min_df,
        spill_dir=args.spill_dir,
    )
    started = time.monotonic()
    run = run_stream(
        stream_pages(n_pages, seed=args.seed),
        n_clusters=args.k,
        config=config,
    )
    elapsed = time.monotonic() - started
    stats = run.stats
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    report = {
        "pages": stats.pages,
        "batches": stats.batches,
        "reweights": stats.reweights,
        "pc_vocab": stats.pc_vocab,
        "fc_vocab": stats.fc_vocab,
        "terms_pruned": stats.pc_pruned + stats.fc_pruned,
        "pages_per_s": round(stats.pages / elapsed, 1) if elapsed else None,
        "elapsed_s": round(elapsed, 1),
        "peak_rss_mb": round(peak_rss_mb, 1),
        "clusters": len(run.organizer.centroid_pairs()),
    }
    if run.spill_index is not None:
        report["spilled_rows"] = run.spill_index.n_spilled
        report["segments"] = len(run.spill_index.segments)
    print(json.dumps(report, indent=2))

    if args.smoke:
        # CI gates: flat memory (the whole point of streaming) and
        # clustering quality within tolerance of the batch organizer on
        # the reference corpus (benchmarks/test_bench_stream.py pins the
        # same bounds before timing).
        from repro.stream import reference_parity

        rss_cap_mb = args.rss_cap_mb
        if peak_rss_mb > rss_cap_mb:
            raise SystemExit(
                f"stream smoke FAILED: peak RSS {peak_rss_mb:.0f} MB "
                f"exceeds the {rss_cap_mb} MB cap"
            )
        parity = reference_parity(seed=args.seed)
        if parity["delta_entropy"] > 0.25 or parity["delta_f"] > 0.10:
            raise SystemExit(
                "stream smoke FAILED: parity gap vs batch too wide "
                f"(delta_entropy={parity['delta_entropy']:.3f}, "
                f"delta_f={parity['delta_f']:.3f})"
            )
        print(
            "stream smoke ok: "
            f"{stats.pages} pages at {report['pages_per_s']} pages/s, "
            f"peak RSS {peak_rss_mb:.0f} MB (cap {rss_cap_mb}), "
            f"entropy {parity['stream']['entropy']:.3f} vs batch "
            f"{parity['batch']['entropy']:.3f}"
        )
    return 0


def _cmd_organize(args: argparse.Namespace) -> int:
    from repro.core import CAFCConfig, CAFCPipeline

    if args.dataset:
        from repro.datasets import load_dataset

        raw_pages = load_dataset(args.dataset)
    else:
        from repro.webgen import generate_benchmark

        raw_pages = generate_benchmark(seed=args.seed).raw_pages()

    pipeline = CAFCPipeline(CAFCConfig(
        k=args.k, backend=args.backend, scheme=args.scheme,
        parallel=_parallel_config(args)
    ))
    result = pipeline.organize(raw_pages, algorithm=args.algorithm)
    print(f"ingest: {pipeline.vectorizer.ingest_stats.describe()}")
    if args.save_result:
        from repro.datasets import save_result

        save_result(result, args.save_result)
        print(f"saved organized directory to {args.save_result}")
    print(f"algorithm: {result.algorithm}; iterations: {result.iterations}")
    if args.profile and result.engine_stats is not None:
        print(f"profile: {result.engine_stats.summary()}")
    for index, cluster in enumerate(result.clusters):
        print(f"\ncluster {index} ({cluster.size} databases)")
        print(f"  terms: {', '.join(cluster.top_terms)}")
        for url in cluster.urls[:5]:
            print(f"  {url}")
        if cluster.size > 5:
            print(f"  ... and {cluster.size - 5} more")
    return 0


def _load_or_generate(args: argparse.Namespace):
    if getattr(args, "dataset", None):
        from repro.datasets import load_dataset

        return load_dataset(args.dataset)
    from repro.webgen import generate_benchmark

    return generate_benchmark(seed=args.seed).raw_pages()


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.core import CAFCConfig, CAFCPipeline
    from repro.explore import ClusterExplorer

    raw_pages = _load_or_generate(args)
    pipeline = CAFCPipeline(CAFCConfig(k=args.k))
    result = pipeline.organize(raw_pages)
    explorer = ClusterExplorer(result)
    print(explorer.summary())
    if args.query:
        print(f"\nquery: {args.query!r}")
        hits = explorer.search(args.query, n=args.n)
        if not hits:
            print("no matching clusters")
        for hit in hits:
            print(f"\nscore {hit.score:.3f} "
                  f"(matched: {', '.join(hit.matched_terms)})")
            print(explorer.describe(hit.cluster_index, max_urls=5))
    return 0


def _cmd_unify(args: argparse.Namespace) -> int:
    from repro.core import CAFCConfig, CAFCPipeline
    from repro.integration import build_unified_interface

    raw_pages = _load_or_generate(args)
    raw_by_url = {page.url: page for page in raw_pages}
    pipeline = CAFCPipeline(CAFCConfig(k=args.k))
    result = pipeline.organize(raw_pages)
    if not 0 <= args.cluster < result.n_clusters:
        print(f"cluster must be in [0, {result.n_clusters})", file=sys.stderr)
        return 1
    cluster = result.clusters[args.cluster]
    members = [raw_by_url[url] for url in cluster.urls]
    unified = build_unified_interface(members, min_coverage=args.min_coverage)
    print(f"cluster {args.cluster}: {cluster.size} forms — "
          f"{', '.join(cluster.top_terms[:4])}")
    print(f"concepts discovered: {unified.n_concepts_discovered}; "
          f"unified fields (coverage >= {args.min_coverage:.0%}):\n")
    for unified_field in unified.fields:
        kind = (
            f"select, {len(unified_field.options)} options"
            if unified_field.is_select else "text"
        )
        print(f"  {unified_field.label:<24} [{kind}] "
              f"coverage {unified_field.coverage:.0%} "
              f"as {', '.join(unified_field.example_labels[:4])}")
    if args.html:
        print("\n" + unified.to_html())
    return 0


def _cmd_snapshot_build(args: argparse.Namespace) -> int:
    from repro.core import CAFCConfig, CAFCPipeline
    from repro.service import build_snapshot

    raw_pages = _load_or_generate(args)
    pipeline = CAFCPipeline(CAFCConfig(
        k=args.k, backend=args.backend, scheme=args.scheme,
        parallel=_parallel_config(args)
    ))
    result = pipeline.organize(raw_pages, algorithm=args.algorithm)
    snapshot = build_snapshot(result, pipeline.vectorizer, pipeline.config)
    snapshot.save(args.out)
    print(f"ingest: {pipeline.vectorizer.ingest_stats.describe()}")
    print(
        f"saved snapshot to {args.out}: {snapshot.n_pages} pages in "
        f"{snapshot.n_clusters} clusters ({result.algorithm})"
    )
    return 0


def _cmd_snapshot_inspect(args: argparse.Namespace) -> int:
    from repro.service import snapshot_info

    info = snapshot_info(args.path)
    for key, value in info.items():
        print(f"{key}: {value}")
    return 0


def _build_serve_directory(args: argparse.Namespace):
    """A FormDirectory from --snapshot, or built on the fly."""
    from repro.service import FormDirectory

    window = args.batch_window_ms if args.batch_window_ms >= 0 else None
    knobs = dict(
        backend=args.backend,
        batch_window_ms=window,
        cache_size=args.cache_size,
        auto_recluster=not args.no_auto_recluster,
        index=args.index,
        journal=getattr(args, "journal", None),
    )
    if args.snapshot:
        directory = FormDirectory.from_snapshot(args.snapshot, **knobs)
        requested = getattr(args, "scheme", "auto")
        if requested != "auto" and requested != directory.scheme_name:
            directory.close()
            raise SystemExit(
                f"--scheme {requested} conflicts with the snapshot's "
                f"fitted scheme {directory.scheme_name!r}; re-weighting "
                "needs a re-fit (repro snapshot build --scheme "
                f"{requested})"
            )
        return directory

    from repro.core import CAFCConfig, CAFCPipeline
    from repro.service import build_snapshot

    if getattr(args, "smoke", False) and not args.dataset:
        # The smoke corpus: a scaled-down benchmark so the whole
        # boot-probe-shutdown cycle stays in seconds.
        from repro.webgen.config import GeneratorConfig
        from repro.webgen.corpus import generate_benchmark

        config = GeneratorConfig(
            pages_per_domain={
                "airfare": 9, "auto": 8, "book": 8, "hotel": 9,
                "job": 8, "movie": 8, "music": 8, "rental": 6,
            },
            single_attribute_per_domain=2,
            mixed_entertainment_pages=2,
            small_hubs_per_domain=6,
            medium_hubs_per_domain=3,
            n_directories=15,
            n_travel_portals=2,
            seed=args.seed,
        )
        raw_pages = generate_benchmark(config=config).raw_pages()
        pipeline = CAFCPipeline(CAFCConfig(
            k=args.k, min_hub_cardinality=3, backend=args.backend,
            scheme=getattr(args, "scheme", "auto"),
        ))
    else:
        raw_pages = _load_or_generate(args)
        pipeline = CAFCPipeline(CAFCConfig(
            k=args.k, backend=args.backend,
            scheme=getattr(args, "scheme", "auto"),
        ))
    result = pipeline.organize(raw_pages)
    snapshot = build_snapshot(result, pipeline.vectorizer, pipeline.config)
    return FormDirectory.from_snapshot(snapshot, **knobs)


def _admission_from_args(args: argparse.Namespace):
    """An AdmissionConfig from the CLI knobs (asyncio transport only)."""
    if getattr(args, "transport", "threaded") != "asyncio":
        return None
    from repro.service.aio import AdmissionConfig

    config = AdmissionConfig()
    if getattr(args, "max_inflight", None) is not None:
        config.max_inflight = args.max_inflight
    if getattr(args, "max_connections", None) is not None:
        config.max_connections = args.max_connections
    if getattr(args, "header_timeout", None) is not None:
        config.header_timeout = args.header_timeout
    if getattr(args, "idle_timeout", None) is not None:
        config.idle_timeout = args.idle_timeout
    return config


def _add_transport_args(parser) -> None:
    parser.add_argument(
        "--transport", choices=["threaded", "asyncio"], default="asyncio",
        help="connection layer: 'asyncio' (event loop, keep-alive + "
             "pipelining, admission control with 429 shedding) or "
             "'threaded' (the classic thread-per-connection server); "
             "responses are byte-identical (docs/SERVING.md)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="asyncio only: concurrent heavy requests before 429 "
             "shedding (default 64)",
    )
    parser.add_argument(
        "--max-connections", type=int, default=None, metavar="N",
        help="asyncio only: open-socket cap; newcomers beyond it get "
             "429 + close (default 4096)",
    )
    parser.add_argument(
        "--header-timeout", type=float, default=None, metavar="SECONDS",
        help="asyncio only: reap a connection whose request frame "
             "stalls this long (slowloris defense; default 5)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="asyncio only: close idle keep-alive connections after "
             "this long (default 60)",
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import urllib.request

    from repro.service import serve_directory

    if getattr(args, "chaos", None) is not None:
        # Dev/soak mode: arm the canned chaos plan process-wide so the
        # snapshot, vectorize and journal seams all misbehave — the
        # server should stay up (degraded at worst).  docs/RESILIENCE.md.
        from repro.resilience import FaultPlan, install_plan

        plan = FaultPlan.default_chaos(args.chaos)
        install_plan(plan)
        print(f"chaos mode: {plan.describe()['specs']} (seed {args.chaos})")

    directory = _build_serve_directory(args)
    server = serve_directory(
        directory,
        host=args.host,
        port=0 if args.smoke else args.port,
        max_request_bytes=args.max_request_bytes,
        request_timeout=args.request_timeout,
        transport=args.transport,
        admission=_admission_from_args(args),
    )
    stats = directory.stats()
    print(
        f"form directory: {stats['pages']} pages in {stats['clusters']} "
        f"clusters; batch window "
        f"{directory.batch_window_ms if directory.batch_window_ms is not None else 'off'} ms; "
        f"transport {args.transport}"
    )

    if args.smoke:
        # Boot on an ephemeral port, probe /healthz and one /classify
        # over a real socket, and shut down cleanly — the CI smoke.
        server.serve_in_thread()
        base = server.base_url
        try:
            with urllib.request.urlopen(base + "/healthz", timeout=15) as r:
                health = json.loads(r.read().decode("utf-8"))
            assert health["status"] == "ok", health
            body = json.dumps({
                "url": "http://smoke.example/form",
                "html": "<html><title>flight search</title><body>"
                        "<form><input name='from'><input name='to'></form>"
                        "book cheap flights and airline tickets</body></html>",
            }).encode("utf-8")
            request = urllib.request.Request(
                base + "/classify", data=body,
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with urllib.request.urlopen(request, timeout=15) as r:
                outcome = json.loads(r.read().decode("utf-8"))
            assert outcome["ok"] and isinstance(outcome["cluster"], int), outcome
            print(
                f"serve smoke ok: {base} classified into cluster "
                f"{outcome['cluster']} ({', '.join(outcome['top_terms'][:3])})"
            )
        finally:
            server.shut_down()
        return 0

    print(f"serving on {server.base_url} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shut_down()
    return 0


def _smoke_snapshot(seed: int = 42, k: int = 8):
    """A small-corpus snapshot for the distrib smoke modes."""
    from repro.core import CAFCConfig, CAFCPipeline
    from repro.service import build_snapshot
    from repro.webgen.config import GeneratorConfig
    from repro.webgen.corpus import generate_benchmark

    config = GeneratorConfig(
        pages_per_domain={
            "airfare": 9, "auto": 8, "book": 8, "hotel": 9,
            "job": 8, "movie": 8, "music": 8, "rental": 6,
        },
        single_attribute_per_domain=2,
        mixed_entertainment_pages=2,
        small_hubs_per_domain=6,
        medium_hubs_per_domain=3,
        n_directories=15,
        n_travel_portals=2,
        seed=seed,
    )
    raw_pages = generate_benchmark(config=config).raw_pages()
    pipeline = CAFCPipeline(CAFCConfig(k=k, min_hub_cardinality=3))
    result = pipeline.organize(raw_pages)
    return build_snapshot(result, pipeline.vectorizer, pipeline.config)


def _lease_path(lease_dir: str, shard_index: int) -> str:
    """The per-shard lease file inside a shared --lease-dir."""
    import os

    os.makedirs(lease_dir, exist_ok=True)
    return os.path.join(lease_dir, f"shard-{shard_index:02d}.lease")


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.distrib import LeaseStore, ShardNode, serve_shard, split_snapshot
    from repro.service import Snapshot

    if args.split:
        import os

        snapshot = Snapshot.load(args.snapshot)
        parts = split_snapshot(snapshot, args.split, placement=args.placement)
        os.makedirs(args.out_dir, exist_ok=True)
        for part in parts:
            shard_index = part.meta["shard"]
            path = os.path.join(
                args.out_dir, f"shard-{shard_index:02d}.json.gz"
            )
            part.save(path)
            print(
                f"shard {shard_index}: {part.n_pages} pages / "
                f"{part.n_clusters} clusters -> {path}"
            )
        return 0

    snapshot = Snapshot.load(args.snapshot)
    lease_store = None
    if args.lease_dir:
        shard_index = int((snapshot.meta or {}).get("shard", 0))
        lease_store = LeaseStore(_lease_path(args.lease_dir, shard_index))
    node = ShardNode(
        snapshot,
        journal=args.journal,
        segment_records=args.segment_records,
        lease_store=lease_store,
        lease_ttl=args.lease_ttl,
        epoch=args.epoch,
        batch_window_ms=(
            args.batch_window_ms if args.batch_window_ms >= 0 else None
        ),
    )
    server = serve_shard(
        node, host=args.host, port=args.port,
        transport=args.transport, admission=_admission_from_args(args),
    )
    health = node.healthz()
    print(
        f"shard {health['shard']}/{health['n_shards']} "
        f"({health['placement']} placement): {health['pages']} pages in "
        f"{health['clusters']} clusters; journal "
        f"{'on' if node.journal else 'off'}; epoch {node.epoch}"
        + (f"; lease {lease_store.path}" if lease_store else "")
    )
    print(f"serving on {server.base_url} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shut_down()
    return 0


def _cmd_replica(args: argparse.Namespace) -> int:
    import threading
    import time as time_mod

    from repro.distrib import (
        HttpShardClient,
        ReplicaNode,
        ShardUnavailable,
        serve_replica,
    )

    leader = HttpShardClient(args.leader, timeout=args.request_timeout)
    replica = ReplicaNode(
        leader, name=args.name, max_lag_records=args.max_lag,
        batch_window_ms=None,
    )
    position = replica.bootstrap()
    print(f"bootstrapped from {args.leader} at journal position {position}")
    server = serve_replica(
        replica, host=args.host, port=args.port,
        transport=args.transport, admission=_admission_from_args(args),
    )

    stop = threading.Event()

    def tail() -> None:
        misses = 0
        while not stop.is_set():
            try:
                report = replica.poll()
                misses = 0
                if report["segments"]:
                    print(
                        f"applied {report['segments']} segment(s), "
                        f"position {report['applied']}, lag {report['lag']}"
                    )
            except ShardUnavailable as exc:
                misses += 1
                if (
                    args.leader_journal
                    and args.promote_after
                    and misses >= args.promote_after
                    and not replica.promoted
                ):
                    print(f"leader gone ({exc}); promoting")
                    promote_kwargs = {}
                    if args.lease_dir and replica.node is not None:
                        promote_kwargs["lease_store"] = _lease_path(
                            args.lease_dir, replica.node.shard_index
                        )
                        promote_kwargs["lease_ttl"] = args.lease_ttl
                    replica.promote(args.leader_journal, **promote_kwargs)
                    print(
                        "promoted: serving writes at position "
                        f"{replica.applied}, epoch {replica.epoch}"
                    )
                    return
            stop.wait(args.poll_ms / 1000.0)

    tailer = threading.Thread(target=tail, name="repro-replica-tail",
                              daemon=True)
    tailer.start()
    print(f"serving (read-only) on {server.base_url} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        stop.set()
        server.shut_down()
    return 0


def _cmd_router(args: argparse.Namespace) -> int:
    from repro.distrib import DirectoryRouter, HttpShardClient, serve_router

    if args.smoke:
        return _router_smoke(args)
    if not args.shard:
        raise SystemExit("router needs at least one --shard (or --smoke)")
    shards = []
    for index, entry in enumerate(args.shard):
        endpoints = [
            HttpShardClient(
                url.strip(), timeout=args.shard_timeout,
                name=f"shard-{index}@{url.strip()}",
            )
            for url in entry.split(",")
            if url.strip()
        ]
        if not endpoints:
            raise SystemExit(f"--shard entry {index} has no URLs")
        shards.append(endpoints)
    router = DirectoryRouter(
        shards, placement=args.placement, shard_timeout=args.shard_timeout
    )
    server = serve_router(
        router, host=args.host, port=args.port,
        transport=args.transport, admission=_admission_from_args(args),
    )
    print(
        f"router over {router.n_shards} shard(s), "
        f"{args.placement} placement, per-shard timeout "
        f"{args.shard_timeout}s"
    )
    print(f"serving on {server.base_url} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shut_down()
    return 0


def _router_smoke(args: argparse.Namespace) -> int:
    """Boot router + 2 shards + 1 replica in-process over real sockets,
    round-trip a query and a write, shut down — the CI shard smoke."""
    import json
    import tempfile
    import urllib.request
    from pathlib import Path

    from repro.distrib import (
        DirectoryRouter,
        HttpShardClient,
        ReplicaNode,
        ShardNode,
        serve_replica,
        serve_router,
        serve_shard,
        split_snapshot,
    )

    snapshot = _smoke_snapshot(seed=args.seed)
    transport = getattr(args, "transport", "threaded")
    servers = []
    with tempfile.TemporaryDirectory(prefix="repro-shard-smoke-") as tmp:
        try:
            parts = split_snapshot(snapshot, 2, placement=args.placement)
            clients = []
            for part in parts:
                index = part.meta["shard"]
                node = ShardNode(
                    part, journal=Path(tmp) / f"shard-{index}.wal",
                    segment_records=8,
                )
                server = serve_shard(node, transport=transport)
                server.serve_in_thread()
                servers.append(server)
                clients.append(
                    HttpShardClient(server.base_url, name=f"shard-{index}")
                )
            replica = ReplicaNode(clients[0], name="replica-0",
                                  batch_window_ms=None)
            replica.bootstrap()
            replica_server = serve_replica(replica, transport=transport)
            replica_server.serve_in_thread()
            servers.append(replica_server)
            replica_client = HttpShardClient(
                replica_server.base_url, name="replica-0"
            )
            router = DirectoryRouter(
                [[clients[0], replica_client], [clients[1]]],
                placement=args.placement,
            )
            router_server = serve_router(router, transport=transport)
            router_server.serve_in_thread()
            servers.append(router_server)
            base = router_server.base_url

            with urllib.request.urlopen(base + "/healthz", timeout=15) as r:
                health = json.loads(r.read().decode("utf-8"))
            assert health["status"] == "ok", health
            with urllib.request.urlopen(
                base + "/search?q=cheap+flight+ticket&n=3", timeout=15
            ) as r:
                search = json.loads(r.read().decode("utf-8"))
            assert search["ok"] and search["hits"], search
            assert not search["partial"], search
            body = json.dumps({
                "url": "http://smoke.example/form",
                "html": "<html><title>flight search</title><body>"
                        "<form><input name='from'><input name='to'></form>"
                        "book cheap flights and airline tickets</body></html>",
            }).encode("utf-8")
            request = urllib.request.Request(
                base + "/add", data=body,
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with urllib.request.urlopen(request, timeout=15) as r:
                added = json.loads(r.read().decode("utf-8"))
            assert added["ok"] and isinstance(added["cluster"], int), added
            report = replica.poll()
            print(
                f"shard smoke ok ({transport}): {base} merged "
                f"{len(search['hits'])} hit(s) from "
                f"{len(search['shards']['answered'])} shards; add landed "
                f"on shard {added['shard']} cluster {added['cluster']}; "
                f"replica lag {report['lag']}"
            )
        finally:
            for server in servers:
                server.shut_down()
    return 0


def _cmd_failover(args: argparse.Namespace) -> int:
    """Watch a leader's lease (or health) and auto-promote a replica —
    the operational face of :class:`repro.distrib.fence.
    FailoverCoordinator` (docs/SHARDING.md, "Automatic failover")."""
    import json

    from repro.distrib import FailoverCoordinator, HttpShardClient, LeaseStore

    leader = HttpShardClient(
        args.leader, timeout=args.request_timeout, name="leader"
    )
    replicas = [
        HttpShardClient(
            url, timeout=args.request_timeout, name=f"replica-{index}"
        )
        for index, url in enumerate(args.replica)
    ]
    lease_store = None
    if args.lease_dir:
        lease_store = LeaseStore(
            _lease_path(args.lease_dir, args.shard_index)
        )
    coordinator = FailoverCoordinator(
        leader,
        replicas,
        args.leader_journal,
        lease_store=lease_store,
        shard_index=args.shard_index,
        miss_threshold=args.miss_threshold,
    )
    mode = (
        f"lease {lease_store.path}" if lease_store else "health probes"
    )
    print(
        f"watching {args.leader} via {mode}; "
        f"{len(replicas)} candidate replica(s), "
        f"promote after {args.miss_threshold} miss(es)"
    )
    if args.once:
        event = coordinator.tick()
    else:
        try:
            coordinator.run(interval=args.interval)
        except KeyboardInterrupt:
            print("\nstopping")
            return 0
        event = coordinator.last_event or {"action": "stopped"}
    print(json.dumps(event, sort_keys=True))
    return 0 if event.get("action") in ("promoted", "alive", "suspect") else 1


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ingestion knobs (docs/INGESTION.md)."""
    parser.add_argument(
        "--workers", type=int, default=1,
        help="ingestion pool size; 0 = one per CPU, 1 = serial "
             "(parallel output is bit-identical to serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-hash analysis cache (force re-parsing)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAFC: cluster hidden-web databases by form-page context",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_exp = subparsers.add_parser("experiments", help="run the paper's experiments")
    p_exp.add_argument("--seed", type=int, default=42, help="corpus seed")
    p_exp.add_argument("--runs", type=int, default=20, help="CAFC-C trials")
    p_exp.add_argument("--only", default="", help="run one experiment id")
    p_exp.add_argument("--list", action="store_true",
                       help="list experiment ids and exit")
    _add_parallel_flags(p_exp)
    p_exp.set_defaults(func=_cmd_experiments)

    p_corpus = subparsers.add_parser("corpus", help="generate the benchmark corpus")
    p_corpus.add_argument("--seed", type=int, default=42)
    p_corpus.add_argument("--save", help="write the dataset to this JSON path")
    p_corpus.set_defaults(func=_cmd_corpus)

    p_ingest = subparsers.add_parser(
        "ingest",
        help="streamed ingestion over generated pages (bounded memory)",
    )
    p_ingest.add_argument(
        "--stream", action="store_true",
        help="use the streaming path (required; batch = `repro organize`)",
    )
    p_ingest.add_argument("--pages", type=int, default=100_000,
                          help="pages to stream (default 100k)")
    p_ingest.add_argument("--seed", type=int, default=42)
    p_ingest.add_argument("--k", type=int, default=8,
                          help="number of clusters")
    p_ingest.add_argument("--batch-size", type=int, default=256,
                          help="pages per mini-batch")
    p_ingest.add_argument(
        "--drift-threshold", type=float, default=0.1,
        help="re-weight when the IDF drift bound exceeds this "
             "(0 = exact prefix statistics every batch)",
    )
    p_ingest.add_argument("--reservoir-size", type=int, default=512,
                          help="re-clustering reservoir capacity")
    p_ingest.add_argument(
        "--vocab-budget", type=int, default=150_000,
        help="prune rare terms when a space's DF table exceeds this",
    )
    p_ingest.add_argument("--min-df", type=int, default=2,
                          help="frequency floor for vocabulary pruning")
    p_ingest.add_argument("--spill-dir",
                          help="spill posting-list segments to this directory")
    p_ingest.add_argument(
        "--rss-cap-mb", type=int, default=400,
        help="--smoke fails if peak RSS exceeds this many MB",
    )
    p_ingest.add_argument(
        "--smoke", action="store_true",
        help="20k-page streamed ingest under the RSS cap, then a "
             "batch-parity gate on the reference corpus (CI self-check)",
    )
    p_ingest.set_defaults(func=_cmd_ingest)

    p_org = subparsers.add_parser("organize", help="cluster a form-page dataset")
    p_org.add_argument("--dataset", help="JSON dataset path (default: benchmark)")
    p_org.add_argument("--seed", type=int, default=42)
    p_org.add_argument("--k", type=int, default=8, help="number of clusters")
    p_org.add_argument(
        "--algorithm", choices=["cafc-ch", "cafc-c", "hac"], default="cafc-ch"
    )
    p_org.add_argument(
        "--save-result", help="write the organized directory to this JSON path"
    )
    p_org.add_argument(
        "--backend", choices=["auto", "engine", "naive"], default="auto",
        help="similarity backend (default: auto)",
    )
    p_org.add_argument(
        "--scheme", choices=["auto", "off", "eq1", "bm25", "tf"],
        default="auto",
        help="term-weighting scheme (default: auto = Equation 1; "
             "off = raw location-weighted TF — docs/RANKING.md)",
    )
    p_org.add_argument(
        "--profile", action="store_true",
        help="print similarity-engine statistics (build time, comparisons, "
             "cache hits)",
    )
    _add_parallel_flags(p_org)
    p_org.set_defaults(func=_cmd_organize)

    p_explore = subparsers.add_parser(
        "explore", help="keyword search over organized clusters"
    )
    p_explore.add_argument("--dataset", help="JSON dataset path (default: benchmark)")
    p_explore.add_argument("--seed", type=int, default=42)
    p_explore.add_argument("--k", type=int, default=8)
    p_explore.add_argument("--query", help="keyword query to answer")
    p_explore.add_argument("-n", type=int, default=3, help="max hits to show")
    p_explore.set_defaults(func=_cmd_explore)

    p_unify = subparsers.add_parser(
        "unify", help="build a unified query interface over one cluster"
    )
    p_unify.add_argument("--dataset", help="JSON dataset path (default: benchmark)")
    p_unify.add_argument("--seed", type=int, default=42)
    p_unify.add_argument("--k", type=int, default=8)
    p_unify.add_argument("--cluster", type=int, default=0, help="cluster index")
    p_unify.add_argument("--min-coverage", type=float, default=0.3)
    p_unify.add_argument("--html", action="store_true",
                         help="also print the unified interface as HTML")
    p_unify.set_defaults(func=_cmd_unify)

    p_snap = subparsers.add_parser(
        "snapshot", help="build or inspect directory snapshots"
    )
    snap_sub = p_snap.add_subparsers(dest="snapshot_command", required=True)

    p_snap_build = snap_sub.add_parser(
        "build", help="organize a dataset and persist the built index"
    )
    p_snap_build.add_argument(
        "--dataset", help="JSON dataset path (default: benchmark)"
    )
    p_snap_build.add_argument("--seed", type=int, default=42)
    p_snap_build.add_argument("--k", type=int, default=8)
    p_snap_build.add_argument(
        "--algorithm", choices=["cafc-ch", "cafc-c", "hac"], default="cafc-ch"
    )
    p_snap_build.add_argument(
        "--backend", choices=["auto", "engine", "naive"], default="auto"
    )
    p_snap_build.add_argument(
        "--scheme", choices=["auto", "off", "eq1", "bm25", "tf"],
        default="auto",
        help="term-weighting scheme baked into the snapshot "
             "(default: auto = Equation 1)",
    )
    p_snap_build.add_argument(
        "--out", required=True,
        help="snapshot path (gzipped when it ends in .gz)",
    )
    _add_parallel_flags(p_snap_build)
    p_snap_build.set_defaults(func=_cmd_snapshot_build)

    p_snap_inspect = snap_sub.add_parser(
        "inspect", help="summarize a snapshot without materializing it"
    )
    p_snap_inspect.add_argument("path", help="snapshot path")
    p_snap_inspect.set_defaults(func=_cmd_snapshot_inspect)

    p_serve = subparsers.add_parser(
        "serve", help="run the form-directory HTTP server (docs/SERVING.md)"
    )
    p_serve.add_argument(
        "--snapshot", help="cold-start from this snapshot "
        "(default: organize --dataset or the benchmark first)",
    )
    p_serve.add_argument("--dataset", help="JSON dataset path")
    p_serve.add_argument("--seed", type=int, default=42)
    p_serve.add_argument("--k", type=int, default=8)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument(
        "--backend", choices=["auto", "engine", "naive"], default="auto",
        help="similarity backend for serving",
    )
    p_serve.add_argument(
        "--scheme", choices=["auto", "off", "eq1", "bm25", "tf"],
        default="auto",
        help="term-weighting scheme for on-the-fly builds; with "
             "--snapshot it must match the snapshot's fitted scheme",
    )
    p_serve.add_argument(
        "--index", choices=["auto", "on", "off"], default="auto",
        help="inverted-index retrieval for classify candidates and "
             "/search (auto enables it at scale; results are "
             "bit-identical either way — docs/SERVING.md)",
    )
    p_serve.add_argument(
        "--batch-window-ms", type=float, default=5.0,
        help="classify micro-batching window; 0 = flush immediately "
             "(still coalesces under load); negative = disable batching",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=1024,
        help="classify LRU result-cache capacity (0 disables)",
    )
    p_serve.add_argument(
        "--no-auto-recluster", action="store_true",
        help="do not repair drift in a background thread",
    )
    p_serve.add_argument(
        "--max-request-bytes", type=int, default=2 * 1024 * 1024,
        help="reject request bodies larger than this (413)",
    )
    p_serve.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="per-connection socket timeout in seconds",
    )
    p_serve.add_argument(
        "--journal", metavar="PATH",
        help="write-ahead journal path: every add/remove/recluster is "
             "fsynced there before it is applied, and an existing "
             "journal is replayed on boot (crash recovery — "
             "docs/RESILIENCE.md)",
    )
    p_serve.add_argument(
        "--chaos", type=int, metavar="SEED",
        help="arm the canned fault-injection plan with this seed "
             "(deterministic chaos soak; docs/RESILIENCE.md)",
    )
    p_serve.add_argument(
        "--smoke", action="store_true",
        help="boot on an ephemeral port, probe /healthz and /classify, "
             "shut down (CI self-check)",
    )
    _add_transport_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_shard = subparsers.add_parser(
        "shard",
        help="serve one shard of a split directory, or split a snapshot "
             "into shards (docs/SHARDING.md)",
    )
    p_shard.add_argument(
        "--snapshot", required=True,
        help="shard snapshot to serve (or the full snapshot to --split)",
    )
    p_shard.add_argument(
        "--split", type=int, metavar="N",
        help="split mode: write N shard snapshots to --out-dir and exit",
    )
    p_shard.add_argument(
        "--out-dir", default="shards",
        help="directory for --split output (shard-NN.json.gz)",
    )
    p_shard.add_argument(
        "--placement", choices=["cluster", "hash"], default="cluster",
        help="partition assignment: 'cluster' keeps whole clusters "
             "together (bit-identical merge parity), 'hash' balances "
             "pages by sha256(url)",
    )
    p_shard.add_argument("--host", default="127.0.0.1")
    p_shard.add_argument("--port", type=int, default=8081)
    p_shard.add_argument(
        "--journal", metavar="PATH",
        help="write-ahead journal; rotation armed so sealed segments "
             "feed replicas (/replication/*)",
    )
    p_shard.add_argument(
        "--segment-records", type=int, default=64,
        help="seal the active journal segment after this many records",
    )
    p_shard.add_argument(
        "--batch-window-ms", type=float, default=5.0,
        help="classify micro-batching window; negative disables batching",
    )
    p_shard.add_argument(
        "--lease-dir", metavar="DIR",
        help="shared lease directory (one shard-NN.lease file per "
             "shard); writes are acknowledged only while this node "
             "holds a live lease at its epoch (docs/SHARDING.md)",
    )
    p_shard.add_argument(
        "--lease-ttl", type=float, default=10.0,
        help="leader lease time-to-live in seconds (renewed at "
             "half-life)",
    )
    p_shard.add_argument(
        "--epoch", type=int, default=0,
        help="starting epoch floor for the journal (recovered epoch "
             "wins if higher); normally left at 0",
    )
    _add_transport_args(p_shard)
    p_shard.set_defaults(func=_cmd_shard)

    p_replica = subparsers.add_parser(
        "replica",
        help="run a read replica tailing a shard's journal segments "
             "(docs/SHARDING.md)",
    )
    p_replica.add_argument(
        "--leader", required=True, metavar="URL",
        help="base URL of the shard to follow (e.g. http://host:8081)",
    )
    p_replica.add_argument("--host", default="127.0.0.1")
    p_replica.add_argument("--port", type=int, default=8082)
    p_replica.add_argument("--name", default="replica")
    p_replica.add_argument(
        "--poll-ms", type=float, default=500.0,
        help="how often to poll the leader's replication manifest",
    )
    p_replica.add_argument(
        "--max-lag", type=int, default=256,
        help="grade 'recovering' above this many unapplied records",
    )
    p_replica.add_argument(
        "--request-timeout", type=float, default=10.0,
        help="per-request timeout talking to the leader",
    )
    p_replica.add_argument(
        "--leader-journal", metavar="PATH",
        help="the leader's on-disk journal (shared storage); enables "
             "automatic promotion when the leader stops answering",
    )
    p_replica.add_argument(
        "--promote-after", type=int, default=3,
        help="promote after this many consecutive failed polls "
             "(needs --leader-journal; 0 disables)",
    )
    p_replica.add_argument(
        "--lease-dir", metavar="DIR",
        help="shared lease directory; on promotion the new leader "
             "takes the shard's lease at its bumped epoch, fencing "
             "the old one",
    )
    p_replica.add_argument(
        "--lease-ttl", type=float, default=10.0,
        help="lease time-to-live the promoted leader renews under",
    )
    _add_transport_args(p_replica)
    p_replica.set_defaults(func=_cmd_replica)

    p_router = subparsers.add_parser(
        "router",
        help="scatter-gather front end over shard endpoints "
             "(docs/SHARDING.md)",
    )
    p_router.add_argument(
        "--shard", action="append", metavar="URL[,URL...]",
        help="one logical shard as a failover list (leader first, "
             "replicas after); repeat per shard, in shard order",
    )
    p_router.add_argument(
        "--placement", choices=["cluster", "hash"], default="cluster",
        help="must match how the snapshots were split (routes writes)",
    )
    p_router.add_argument("--host", default="127.0.0.1")
    p_router.add_argument("--port", type=int, default=8080)
    p_router.add_argument(
        "--shard-timeout", type=float, default=5.0,
        help="per-shard fan-out timeout; a slower shard is dropped from "
             "the response (flagged partial), not waited for",
    )
    p_router.add_argument("--seed", type=int, default=42)
    p_router.add_argument(
        "--smoke", action="store_true",
        help="boot router + 2 shards + 1 replica in-process, round-trip "
             "/search, /add and /healthz, shut down (CI self-check)",
    )
    _add_transport_args(p_router)
    p_router.set_defaults(func=_cmd_router)

    p_failover = subparsers.add_parser(
        "failover",
        help="watch a shard leader and auto-promote the most-caught-up "
             "replica when it dies (docs/SHARDING.md)",
    )
    p_failover.add_argument(
        "--leader", required=True, metavar="URL",
        help="base URL of the leader being watched",
    )
    p_failover.add_argument(
        "--replica", action="append", required=True, metavar="URL",
        help="candidate replica base URL; repeat per replica",
    )
    p_failover.add_argument(
        "--leader-journal", required=True, metavar="PATH",
        help="the leader's on-disk journal (shared storage) the "
             "promoted replica drains and adopts",
    )
    p_failover.add_argument(
        "--lease-dir", metavar="DIR",
        help="shared lease directory: leader death = missing/expired "
             "lease (without it, failed health probes)",
    )
    p_failover.add_argument(
        "--shard-index", type=int, default=0,
        help="logical shard being supervised (picks the lease file)",
    )
    p_failover.add_argument(
        "--miss-threshold", type=int, default=3,
        help="consecutive dead observations before promoting",
    )
    p_failover.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between detection ticks",
    )
    p_failover.add_argument(
        "--request-timeout", type=float, default=10.0,
        help="per-request timeout talking to nodes",
    )
    p_failover.add_argument(
        "--once", action="store_true",
        help="run a single detection tick and print its event (cron "
             "mode)",
    )
    p_failover.set_defaults(func=_cmd_failover)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
