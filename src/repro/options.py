"""One validator for every ``"auto" | "off" | <name>`` config option.

``CAFCConfig.backend``, ``CAFCConfig.index`` and ``CAFCConfig.scheme``
(plus the CLI flags and service constructors that mirror them) all
follow the same convention: a small closed set of lowercase names, with
``"auto"`` meaning "let the library pick" and — where the feature can
be disabled at all — ``"off"`` meaning "don't".  This module is the
single place the allowed names live, so the error a user sees always
states which *field* was wrong and what it accepts.
"""

from typing import Optional, Sequence

#: ``CAFCConfig.backend`` — similarity backend.  Batch similarity can
#: never be "off" (clustering needs it), so there is no ``"off"`` here.
BACKEND_CHOICES = ("auto", "engine", "naive")

#: ``CAFCConfig.index`` — inverted-index retrieval.  ``"on"`` forces the
#: index even below the auto thresholds.
INDEX_CHOICES = ("auto", "on", "off")

#: ``CAFCConfig.scheme`` — term-weighting scheme.  ``"auto"`` is the
#: paper's Equation 1; ``"off"`` disables corpus weighting (plain
#: LOC-weighted TF).
SCHEME_CHOICES = ("auto", "off", "eq1", "bm25", "tf")


class OptionError(ValueError):
    """A config option holds a value outside its allowed names.

    Carries the offending ``field``, the rejected ``value`` and the
    ``choices`` it accepts, so callers (CLI, HTTP layer) can render the
    failure without parsing the message.
    """

    def __init__(self, field: str, value: object, choices: Sequence[str]) -> None:
        self.field = field
        self.value = value
        self.choices = tuple(choices)
        rendered = " | ".join(repr(choice) for choice in self.choices)
        super().__init__(f"{field}: unknown value {value!r}; expected {rendered}")


def validate_option(
    field: str, value: str, choices: Sequence[str]
) -> str:
    """Return ``value`` if it is one of ``choices``, else raise
    :class:`OptionError` naming ``field``."""
    if value not in choices:
        raise OptionError(field, value, choices)
    return value


def resolve_auto(
    value: str, auto: str, off: Optional[str] = None
) -> str:
    """Map the ``"auto"`` / ``"off"`` aliases to their concrete names."""
    if value == "auto":
        return auto
    if off is not None and value == "off":
        return off
    return value
