"""Incremental per-term posting lists over one sparse feature space.

A :class:`SpaceIndex` maps every term of a row collection (cluster
centroids, or managed pages) to the rows containing it, with weights
**pre-normalized** by the row's Euclidean norm — the unit the cosine
accumulators want — plus a per-term *maximum* pre-normalized weight.
That maximum is the upper bound the exact top-k retrieval
(:mod:`repro.index.retrieval`) prunes with: a term can contribute at
most ``query_weight * max_prenormed(term)`` to any row's score, so once
the sum of remaining bounds falls below the running k-th best partial
score, the remaining posting lists never need to be walked.

Rows are mutable: :meth:`add_row` and :meth:`remove_row` keep the
posting lists, maxima, and per-row raw vectors in sync, so the index is
maintained incrementally as a directory mutates instead of being
rebuilt per query.  The raw row vectors are kept because the retrieval
layer's final scoring deliberately goes back through the *scalar*
cosine path on them — that is what makes indexed results bit-identical
to a full scan (see docs/SERVING.md, "Indexed retrieval").

The index is **weighting-scheme agnostic**: bounds are computed from
the *actual emitted vectors* (whatever :mod:`repro.vsm.schemes` scheme
produced them), never re-derived from corpus statistics — so exact
top-k pruning stays exact under Equation 1, BM25, or any future scheme
without the index knowing which one is active (docs/RANKING.md).
"""

from typing import Dict, Iterator, List, Tuple

from repro.vsm.vector import SparseVector


class SpaceIndex:
    """Posting lists with max-weight upper bounds over one vector space.

    ``build_postings=False`` keeps only the per-row vector/norm storage
    — the shape the ``index="off"`` directory uses as a plain combined-
    vector cache, so the cache and the full index share one maintenance
    code path.
    """

    __slots__ = (
        "_postings", "_max", "_vectors", "_norms", "n_postings",
        "build_postings",
    )

    def __init__(self, build_postings: bool = True) -> None:
        self.build_postings = build_postings
        #: term -> [(row_id, weight / row_norm)], append-ordered.
        self._postings: Dict[str, List[Tuple[int, float]]] = {}
        #: term -> max pre-normalized weight over its posting list.
        self._max: Dict[str, float] = {}
        self._vectors: Dict[int, SparseVector] = {}
        self._norms: Dict[int, float] = {}
        #: total posting entries (the /metrics gauge).
        self.n_postings = 0

    # ----------------------------------------------------------------
    # Introspection.
    # ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._vectors)

    def __contains__(self, row_id: int) -> bool:
        return row_id in self._vectors

    @property
    def n_terms(self) -> int:
        return len(self._postings)

    def rows(self) -> Iterator[int]:
        return iter(self._vectors)

    def row_items(self) -> Iterator[Tuple[int, SparseVector]]:
        """(row_id, raw vector) pairs — what a cached full scan walks."""
        return iter(self._vectors.items())

    def vector(self, row_id: int) -> SparseVector:
        """The raw row vector as indexed (for exact re-scoring)."""
        return self._vectors[row_id]

    def norm(self, row_id: int) -> float:
        return self._norms[row_id]

    def postings(self, term: str) -> List[Tuple[int, float]]:
        """The (row, pre-normalized weight) posting list of ``term``
        (empty when the term is unindexed)."""
        return self._postings.get(term, _EMPTY)

    def max_prenormed(self, term: str) -> float:
        """Upper bound on any row's pre-normalized weight for ``term``."""
        return self._max.get(term, 0.0)

    # ----------------------------------------------------------------
    # Maintenance.
    # ----------------------------------------------------------------

    def add_row(self, row_id: int, vector: SparseVector) -> None:
        """Index ``vector`` under ``row_id`` (replacing any previous row).

        Zero-norm rows are recorded (so lookups and removals work) but
        post nothing: they cannot match any query, exactly as the scalar
        cosine scores them 0.
        """
        if row_id in self._vectors:
            self.remove_row(row_id)
        norm = vector.norm()
        self._vectors[row_id] = vector
        self._norms[row_id] = norm
        if norm == 0.0 or not self.build_postings:
            return
        inv = 1.0 / norm
        postings = self._postings
        maxima = self._max
        for term, weight in vector.items():
            prenormed = weight * inv
            entry = postings.get(term)
            if entry is None:
                postings[term] = [(row_id, prenormed)]
                maxima[term] = prenormed
            else:
                entry.append((row_id, prenormed))
                if prenormed > maxima[term]:
                    maxima[term] = prenormed
            self.n_postings += 1

    def remove_row(self, row_id: int) -> bool:
        """Drop a row from every posting list it appears in.

        Per-term maxima are recomputed from the surviving entries when
        the departing row held the maximum — bounds must never
        understate, or pruning would turn lossy.
        """
        vector = self._vectors.pop(row_id, None)
        if vector is None:
            return False
        norm = self._norms.pop(row_id)
        if norm == 0.0 or not self.build_postings:
            return True
        postings = self._postings
        maxima = self._max
        for term in vector.terms():
            entry = postings.get(term)
            if entry is None:
                continue
            kept = [(row, weight) for row, weight in entry if row != row_id]
            self.n_postings -= len(entry) - len(kept)
            if not kept:
                del postings[term]
                del maxima[term]
            else:
                postings[term] = kept
                maxima[term] = max(weight for _, weight in kept)
        return True

    def clear(self) -> None:
        self._postings = {}
        self._max = {}
        self._vectors = {}
        self._norms = {}
        self.n_postings = 0


_EMPTY: List[Tuple[int, float]] = []


__all__ = ["SpaceIndex"]
