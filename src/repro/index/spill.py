"""Spill-to-disk posting lists: a two-tier SpaceIndex for unbounded streams.

The resident :class:`~repro.index.postings.SpaceIndex` holds every row
in memory — posting lists, per-term maxima, *and* the raw vectors for
exact re-scoring — which is exactly right for a directory of hundreds
of clusters and wrong for a stream of 100k+ pages.  A
:class:`SpillingSpaceIndex` keeps only the most recent rows resident;
once ``segment_rows`` accumulate, they are sealed into an immutable
on-disk segment (crc-framed records via :mod:`repro.datasets.store`)
and the resident tier is emptied.  Memory is then O(resident tier +
term directory), independent of how many rows ever flowed through.

Segment layout (one framed JSON record each):

* record 0 — header: format version, row range, and per-row
  ``[norm, meta]`` (meta is the caller's tag, e.g. the page URL);
* one record per term — its posting list ``[[row, prenormed weight]]``
  and the per-term maximum.

Readers verify every checksum once at open while building a
``term -> file offset`` directory, then seek postings on demand.

**Search contract.**  The resident tier answers through the same
upper-bound-pruned, exactly re-scored :func:`~repro.index.retrieval.
top_k_exact` machinery as the in-memory index — bit-identical to a
scan of those rows.  Sealed segments are scored by full term-at-a-time
accumulation over the query's posting lists with *no pruning*: since
posted weights are pre-normalized and the query is pre-divided by its
norm, the accumulated sum is the exact cosine (up to float summation
order).  The merged top-k is therefore exact on both tiers; only the
floats' addition order differs from an all-resident scan (tests pin
agreement to 1e-9).
"""

import heapq
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.datasets.store import (
    DatasetFormatError,
    iter_framed_records,
    read_framed_record,
    write_framed_records,
)
from repro.index.postings import SpaceIndex
from repro.index.retrieval import (
    RetrievalStats,
    combined_query_channel,
    top_k_exact,
)
from repro.vsm.vector import SparseVector

_SEGMENT_FORMAT_VERSION = 1


class SpillSegment:
    """One sealed, immutable on-disk segment (read side).

    Opening scans the whole file once — verifying every crc — and keeps
    only the term directory and row range in memory.  Posting lists and
    row metadata are seeked on demand.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._term_offsets: Dict[str, int] = {}
        self._header_offset = 0
        self.start_row = 0
        self.n_rows = 0
        self.n_terms = 0
        header_seen = False
        for offset, record in iter_framed_records(self.path):
            kind = record.get("kind") if isinstance(record, dict) else None
            if not header_seen:
                if kind != "header":
                    raise DatasetFormatError(self.path, kind, "header")
                version = record.get("format_version")
                if version != _SEGMENT_FORMAT_VERSION:
                    raise DatasetFormatError(
                        self.path, version, _SEGMENT_FORMAT_VERSION
                    )
                self._header_offset = offset
                self.start_row = int(record.get("start_row", 0))
                self.n_rows = int(record.get("n_rows", 0))
                header_seen = True
            elif kind == "postings":
                self._term_offsets[record["term"]] = offset
        if not header_seen:
            raise DatasetFormatError(self.path, None, "header")
        self.n_terms = len(self._term_offsets)

    def __len__(self) -> int:
        return self.n_rows

    def __contains__(self, row_id: int) -> bool:
        return self.start_row <= row_id < self.start_row + self.n_rows

    def terms(self) -> Iterator[str]:
        return iter(self._term_offsets)

    def postings(self, term: str) -> List[Tuple[int, float]]:
        """The term's ``(row, prenormed weight)`` list (seeked on demand)."""
        offset = self._term_offsets.get(term)
        if offset is None:
            return []
        with open(self.path, "rb") as handle:
            record = read_framed_record(handle, offset, path=self.path)
        return [(int(row), float(weight)) for row, weight in record["postings"]]

    def rows(self) -> Dict[int, Tuple[float, object]]:
        """``row -> (norm, meta)`` — re-read from the header on demand."""
        with open(self.path, "rb") as handle:
            record = read_framed_record(
                handle, self._header_offset, path=self.path
            )
        return {
            int(row): (float(entry[0]), entry[1])
            for row, entry in record["rows"].items()
        }

    def meta(self, row_id: int) -> object:
        entry = self.rows().get(row_id)
        return entry[1] if entry is not None else None


class SpillingSpaceIndex:
    """A :class:`SpaceIndex` whose history spills to sealed segments.

    ``directory`` is where segments live; an existing directory's
    ``segment-*.seg`` files are re-opened, so a restarted process keeps
    its spilled history (resident rows, by design, were not yet
    durable).  ``meta`` on :meth:`add_row` tags the row with whatever
    the caller needs back from search hits (the stream path passes page
    URLs); resident metadata rides in memory until the flush seals it
    into the segment header.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        segment_rows: int = 4096,
        auto_flush: bool = True,
    ) -> None:
        if segment_rows < 1:
            raise ValueError("segment_rows must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_rows = segment_rows
        self.auto_flush = auto_flush
        self.resident = SpaceIndex()
        self._resident_meta: Dict[int, object] = {}
        self.segments: List[SpillSegment] = [
            SpillSegment(path)
            for path in sorted(self.directory.glob("segment-*.seg"))
        ]

    # ----------------------------------------------------------------
    # Introspection.
    # ----------------------------------------------------------------

    @property
    def n_resident(self) -> int:
        return len(self.resident)

    @property
    def n_spilled(self) -> int:
        return sum(segment.n_rows for segment in self.segments)

    def __len__(self) -> int:
        return self.n_resident + self.n_spilled

    def meta(self, row_id: int) -> object:
        if row_id in self._resident_meta:
            return self._resident_meta[row_id]
        for segment in self.segments:
            if row_id in segment:
                return segment.meta(row_id)
        return None

    # ----------------------------------------------------------------
    # Writes.
    # ----------------------------------------------------------------

    def add_row(
        self, row_id: int, vector: SparseVector, meta: object = None
    ) -> None:
        """Index one row in the resident tier, spilling when it fills.

        Row ids must be globally unique and — for segment row-range
        lookups to stay cheap — monotonically increasing across the
        stream (the streaming ingestor's running page index).
        """
        self.resident.add_row(row_id, vector)
        self._resident_meta[row_id] = meta
        if self.auto_flush and len(self.resident) >= self.segment_rows:
            self.flush()

    def flush(self) -> Optional[SpillSegment]:
        """Seal the resident tier into a new on-disk segment.

        No-op when nothing is resident.  The segment write is atomic
        (tmp + fsync + rename); the resident tier is cleared only after
        the rename, so a crash mid-flush loses nothing already sealed.
        """
        rows = sorted(self.resident.rows())
        if not rows:
            return None
        start_row = rows[0]

        def records():
            yield {
                "kind": "header",
                "format_version": _SEGMENT_FORMAT_VERSION,
                "start_row": start_row,
                "n_rows": len(rows),
                "rows": {
                    str(row): [
                        self.resident.norm(row),
                        self._resident_meta.get(row),
                    ]
                    for row in rows
                },
            }
            # Resident posting lists are already pre-normalized; the
            # segment stores them verbatim, so spilled scoring uses the
            # same floats the resident accumulators would have.
            for term in sorted(self.resident._postings):
                yield {
                    "kind": "postings",
                    "term": term,
                    "max": self.resident.max_prenormed(term),
                    "postings": self.resident.postings(term),
                }

        path = self.directory / f"segment-{len(self.segments):06d}.seg"
        write_framed_records(records(), path)
        segment = SpillSegment(path)
        self.segments.append(segment)
        self.resident.clear()
        self._resident_meta = {}
        return segment

    # ----------------------------------------------------------------
    # Search.
    # ----------------------------------------------------------------

    def search(
        self,
        query: SparseVector,
        k: int,
        stats: Optional[RetrievalStats] = None,
    ) -> List[Tuple[int, float, object]]:
        """Exact top-``k`` rows across both tiers for a combined query.

        Returns ``[(row_id, cosine, meta)]`` sorted by ``(-score,
        row_id)``.  Resident rows go through the pruned-and-re-scored
        exact machinery; spilled rows through unpruned term-at-a-time
        accumulation (see module docstring for why both are exact).
        """
        if k <= 0:
            return []
        norm = query.norm()
        if norm == 0.0:
            return []
        if stats is None:
            stats = RetrievalStats()

        merged: List[Tuple[int, float]] = []
        if len(self.resident):
            channel = combined_query_channel(self.resident, query, norm=norm)
            resident = self.resident

            def score_exact(row_id: int) -> float:
                return resident.vector(row_id).dot(query) / (
                    resident.norm(row_id) * norm
                )

            merged.extend(top_k_exact([channel], k, score_exact, stats=stats))

        query_pre = [
            (term, weight / norm) for term, weight in query.items()
        ]
        for segment in self.segments:
            accumulator: Dict[int, float] = {}
            stats.rows_total += segment.n_rows
            for term, pre in query_pre:
                stats.terms_total += 1
                postings = segment.postings(term)
                if not postings:
                    continue
                stats.terms_processed += 1
                for row, weight in postings:
                    accumulator[row] = accumulator.get(row, 0.0) + pre * weight
            stats.rows_touched += len(accumulator)
            if accumulator:
                top = heapq.nsmallest(
                    k, accumulator.items(), key=lambda kv: (-kv[1], kv[0])
                )
                merged.extend(
                    (row, score) for row, score in top if score > 0.0
                )
                stats.rows_scored += min(k, len(accumulator))

        merged.sort(key=lambda hit: (-hit[1], hit[0]))
        return [(row, score, self.meta(row)) for row, score in merged[:k]]


__all__ = ["SpillSegment", "SpillingSpaceIndex"]
