"""Deterministic k-way merging of scored, ordered result runs.

The scatter-gather router (:mod:`repro.distrib.router`) receives one
ranked hit list per shard and must produce *the* global top-k — not "a"
top-k: the acceptance criterion for the distributed directory is that
an N-shard merge is bit-identical to the single-process answer, every
time, regardless of which shard responds first.

That only works if ordering is a pure function of the hits themselves.
Both retrieval paths already sort by ``(-score, id)`` — cluster index
for cluster search, URL for page search (:func:`repro.index.retrieval.
top_k_exact` and the scan paths in :class:`~repro.service.directory.
FormDirectory`) — and ids are globally unique, so the composite key is
a total order with no ambiguity left for arrival timing to resolve.
:func:`merge_ranked` is the k-way heap merge over that key; it never
compares hits beyond the key, so two runs merging the same inputs
produce the same bytes.

``tests/test_merge.py`` pins the determinism property: for random
scored runs with forced score ties, merging any shard partition of a
collection equals sorting the whole collection — bit for bit.
"""

import heapq
from itertools import islice
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

#: A hit as the service layer ships it: a JSON-safe dict carrying at
#: least a ``"score"`` plus its identity field.
Hit = Dict[str, object]


def cluster_hit_key(hit: Hit) -> Tuple[float, int]:
    """Total order for cluster-scope hits: score descending, then the
    *global* cluster id ascending — the exact key the single-process
    scan path sorts by."""
    return (-float(hit["score"]), int(hit["cluster"]))


def page_hit_key(hit: Hit) -> Tuple[float, str]:
    """Total order for page-scope hits: score descending, then URL
    ascending (URLs are globally unique across shards)."""
    return (-float(hit["score"]), str(hit["url"]))


def merge_ranked(
    runs: Sequence[Iterable[Hit]],
    n: int,
    key: Callable[[Hit], object],
) -> List[Hit]:
    """Merge already-sorted result runs into the global top-``n``.

    Each run must be sorted by ``key`` ascending (which, with the keys
    above, means best hit first).  The merge is a lazy k-way heap —
    O(total * log(runs)) worst case, but it stops after ``n`` outputs,
    so with per-shard top-``n`` inputs it touches at most ``n *
    len(runs)`` hits.

    Determinism: ``key`` must be a total order over the union of the
    runs (globally-unique ids guarantee it).  ``heapq.merge`` breaks
    equal keys by input order, so a key collision would leak shard
    numbering into the result — the scope keys make that impossible,
    and :func:`assert_sorted` exists for callers merging custom runs.
    """
    if n <= 0:
        return []
    return list(islice(heapq.merge(*runs, key=key), n))


def assert_sorted(run: Sequence[Hit], key: Callable[[Hit], object]) -> None:
    """Raise ``ValueError`` if ``run`` is not sorted by ``key`` —
    a shard shipping an unsorted run would silently corrupt the merge's
    determinism guarantee, so routers validate in paranoid paths."""
    keys = [key(hit) for hit in run]
    for index in range(1, len(keys)):
        if keys[index - 1] > keys[index]:
            raise ValueError(
                f"run not sorted at position {index}: "
                f"{keys[index - 1]!r} > {keys[index]!r}"
            )


__all__ = [
    "Hit",
    "assert_sorted",
    "cluster_hit_key",
    "merge_ranked",
    "page_hit_key",
]
