"""Exact top-k retrieval over posting lists — term-at-a-time with
upper-bound pruning.

The algorithm is the classic two-phase TAAT scheme, arranged so that
its results are **bit-identical** to the full-scan reference paths:

1. *Accumulate with bounds.*  Query terms (possibly spanning several
   feature-space channels, each carrying its Equation-3 scale folded
   into the query weights) are processed in descending order of their
   maximum possible score contribution ``q_w * max_prenormed(term)``.
   Walking a term's posting list adds its contribution to every row
   containing it.  After each term, if at least ``k`` rows have been
   touched and the sum of the *remaining* terms' bounds falls below the
   running k-th best partial score, the loop stops: no untouched row
   can reach the top k any more.

2. *Prune and re-score exactly.*  Touched rows whose upper bound
   (partial score + remaining bound) cannot reach the k-th best are
   dropped.  The survivors — a superset of the true top k — are scored
   through the caller's **exact** scorer: the same scalar
   ``cosine_similarity`` / ``FormPageSimilarity`` arithmetic the
   full-scan path runs, over the same stored vectors, so every returned
   score is the same float the scan would produce.  Partial-sum floats
   from phase 1 never reach the caller; they only steer pruning.

Float safety: the pruning comparisons use small relative+absolute
margins (bounds inflated, thresholds deflated), so accumulated rounding
in the bookkeeping sums can never prune a row that exact arithmetic
would keep.  The margins only make pruning marginally more conservative.
"""

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.index.postings import SpaceIndex

#: Pruning-margin knobs: bounds are inflated and thresholds deflated by
#: this relative factor (plus an absolute floor) before being compared,
#: so float rounding in the bookkeeping can never cause a lossy prune.
_MARGIN_REL = 1e-9
_MARGIN_ABS = 1e-12


def _inflate(value: float) -> float:
    return value * (1.0 + _MARGIN_REL) + _MARGIN_ABS


def _deflate(value: float) -> float:
    return value * (1.0 - _MARGIN_REL) - _MARGIN_ABS


@dataclass
class RetrievalStats:
    """What one indexed query cost, for the ``index_*`` metrics.

    ``rows_total`` is the collection size a full scan would have scored;
    ``rows_touched`` how many rows the accumulators reached;
    ``rows_scored`` how many survived bound pruning and were re-scored
    exactly.  ``terms_total`` / ``terms_processed`` count posting lists
    considered vs actually walked (the early-stop saving).
    """

    rows_total: int = 0
    rows_touched: int = 0
    rows_scored: int = 0
    terms_total: int = 0
    terms_processed: int = 0

    @property
    def scored_fraction(self) -> float:
        """Exactly-scored rows as a fraction of a full scan (<= 1)."""
        if self.rows_total == 0:
            return 0.0
        return self.rows_scored / self.rows_total

    def merge(self, other: "RetrievalStats") -> None:
        self.rows_total += other.rows_total
        self.rows_touched += other.rows_touched
        self.rows_scored += other.rows_scored
        self.terms_total += other.terms_total
        self.terms_processed += other.terms_processed


@dataclass
class Channel:
    """One feature-space contribution to a query.

    ``query_pre`` maps terms to query weights with every scale baked in
    — ``C_s / (C1 + C2) / ||q_s||`` for Equation-3 channels, or simply
    ``1 / ||q||`` for single combined-space queries — so a term's score
    contribution to a row is exactly ``query_pre[term] *
    posting_weight`` and partial sums are directly comparable to final
    scores.
    """

    space: SpaceIndex
    query_pre: Dict[str, float] = field(default_factory=dict)


def top_k_exact(
    channels: Sequence[Channel],
    k: int,
    score_exact: Callable[[int], float],
    stats: Optional[RetrievalStats] = None,
    tie_key: Optional[Callable[[int], object]] = None,
) -> List[Tuple[int, float]]:
    """The exact top-``k`` rows across ``channels``, highest score first.

    ``score_exact(row_id)`` must return the row's full-precision score
    via the same arithmetic as the full-scan reference; it is invoked
    only for rows surviving bound pruning.  Rows with non-positive exact
    scores are dropped (matching the scan paths, which skip them).
    Ties break toward the lower ``row_id``, or toward the lower
    ``tie_key(row_id)`` when given (page search breaks ties by URL) —
    boundary ties are safe because a row tying the k-th exact score can
    never be pruned (its upper bound is at least the pruning threshold).

    Returns ``[(row_id, score)]`` sorted by ``(-score, tie key)``.
    """
    if stats is None:
        stats = RetrievalStats()
    rows_total = max((len(ch.space) for ch in channels), default=0)
    stats.rows_total += rows_total
    if k <= 0 or rows_total == 0:
        return []

    # Bound-ordered term entries: (bound, channel, term, scaled weight).
    entries: List[Tuple[float, int, str, float]] = []
    for channel_index, channel in enumerate(channels):
        space = channel.space
        for term, weight in channel.query_pre.items():
            if weight <= 0.0:
                continue
            bound = weight * space.max_prenormed(term)
            if bound > 0.0:
                entries.append((bound, channel_index, term, weight))
    stats.terms_total += len(entries)
    if not entries:
        return []
    entries.sort(key=lambda entry: (-entry[0], entry[1], entry[2]))

    suffix = [0.0] * (len(entries) + 1)
    for index in range(len(entries) - 1, -1, -1):
        suffix[index] = suffix[index + 1] + entries[index][0]

    accumulated: Dict[int, float] = {}
    remaining = 0.0
    processed = len(entries)
    for index, (bound, channel_index, term, weight) in enumerate(entries):
        if len(accumulated) >= k:
            remaining = suffix[index]
            kth = heapq.nlargest(k, accumulated.values())[-1]
            if _inflate(remaining) < _deflate(kth):
                processed = index
                break
        for row, prenormed in channels[channel_index].space.postings(term):
            if row in accumulated:
                accumulated[row] += weight * prenormed
            else:
                accumulated[row] = weight * prenormed
    else:
        remaining = 0.0
    stats.terms_processed += processed
    stats.rows_touched += len(accumulated)

    if not accumulated:
        return []

    # Candidate pruning: a touched row can finish at most ``partial +
    # remaining``; rows that cannot reach the running k-th best under
    # that bound are never scored exactly.  (With every term processed,
    # ``remaining`` is 0 and the partials themselves are the bounds —
    # the margins absorb their float-ordering drift from exact scores.)
    if len(accumulated) > k:
        kth = heapq.nlargest(k, accumulated.values())[-1]
        threshold = _deflate(kth)
        candidates = [
            row for row, partial in accumulated.items()
            if _inflate(partial + remaining) >= threshold
        ]
    else:
        candidates = list(accumulated)
    candidates.sort()
    stats.rows_scored += len(candidates)

    scored = [(row, score_exact(row)) for row in candidates]
    scored = [(row, score) for row, score in scored if score > 0.0]
    if tie_key is None:
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
    else:
        scored.sort(key=lambda pair: (-pair[1], tie_key(pair[0])))
    return scored[:k]


def combined_query_channel(
    space: SpaceIndex, query, norm: Optional[float] = None
) -> Channel:
    """A single-space channel for a combined (PC+FC summed) query.

    ``query`` is a :class:`~repro.vsm.vector.SparseVector`; its weights
    are pre-divided by its norm so partial sums are cosine-comparable.
    """
    if norm is None:
        norm = query.norm()
    if norm == 0.0:
        return Channel(space, {})
    inv = 1.0 / norm
    return Channel(space, {term: weight * inv for term, weight in query.items()})


__all__ = [
    "Channel",
    "RetrievalStats",
    "combined_query_channel",
    "top_k_exact",
]
