"""Per-space centroid posting lists — candidate-pruned classification.

:class:`CentroidIndex` holds one :class:`~repro.index.postings.SpaceIndex`
per feature space over the *cluster centroids* and turns a page into the
Equation-3 query channels the retrieval layer accumulates:

``sim(page, centroid) = (C1*cos(PC) + C2*cos(FC)) / (C1 + C2)``

is a sum over per-term contributions ``coef_s * (page_w/||page_s||) *
(centroid_w/||centroid_s||)`` with ``coef_s = C_s / (C1 + C2)`` — so by
folding ``coef_s / ||page_s||`` into the query weights, partial sums are
direct lower bounds on the Equation-3 score and the TAAT pruning of
:func:`~repro.index.retrieval.top_k_exact` applies unchanged.  Survivors
are re-scored through the organizer's backend ``pair`` (the scalar
Equation-3 path), which is what makes the indexed argmax bit-identical
to the full centroid scan.

Maintenance is keyed on **centroid object identity**: the organizer
replaces a cluster's ``VectorPair`` whenever the centroid is rebuilt, so
``refs[i] is cluster.centroid`` detects staleness exactly.  Mutators
call :meth:`sync` (under the caller's write lock); read paths call
:meth:`fresh` and fall back to the full scan on a mismatch rather than
mutate shared state.
"""

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.config import ContentMode
from repro.index.postings import SpaceIndex
from repro.index.retrieval import Channel, RetrievalStats, top_k_exact


class CentroidIndex:
    """Posting lists over cluster centroids, one per feature space."""

    def __init__(
        self,
        content_mode: ContentMode = ContentMode.FC_PC,
        page_weight: float = 1.0,
        form_weight: float = 1.0,
    ) -> None:
        self.content_mode = content_mode
        if content_mode is ContentMode.PC:
            self._pc_coef, self._fc_coef = 1.0, 0.0
        elif content_mode is ContentMode.FC:
            self._pc_coef, self._fc_coef = 0.0, 1.0
        else:
            total = page_weight + form_weight
            self._pc_coef = page_weight / total
            self._fc_coef = form_weight / total
        self._pc = SpaceIndex() if self._pc_coef > 0.0 else None
        self._fc = SpaceIndex() if self._fc_coef > 0.0 else None
        self._refs: List[object] = []
        self.stats = RetrievalStats()

    # ----------------------------------------------------------------
    # Maintenance (caller holds the write side of any lock).
    # ----------------------------------------------------------------

    def sync(self, clusters: Sequence) -> None:
        """Bring rows up to date with ``clusters`` (identity-diffed)."""
        if len(clusters) != len(self._refs):
            self.rebuild(clusters)
            return
        for index, cluster in enumerate(clusters):
            centroid = cluster.centroid
            if self._refs[index] is not centroid:
                self._set_row(index, centroid)

    def rebuild(self, clusters: Sequence) -> None:
        if self._pc is not None:
            self._pc.clear()
        if self._fc is not None:
            self._fc.clear()
        self._refs = [None] * len(clusters)
        for index, cluster in enumerate(clusters):
            self._set_row(index, cluster.centroid)

    def _set_row(self, index: int, centroid) -> None:
        if self._pc is not None:
            self._pc.add_row(index, centroid.pc)
        if self._fc is not None:
            self._fc.add_row(index, centroid.fc)
        self._refs[index] = centroid

    def fresh(self, clusters: Sequence) -> bool:
        """True when every row matches its cluster's live centroid —
        read-only, so concurrent readers may check safely."""
        if len(clusters) != len(self._refs):
            return False
        refs = self._refs
        for index, cluster in enumerate(clusters):
            if refs[index] is not cluster.centroid:
                return False
        return True

    # ----------------------------------------------------------------
    # Retrieval.
    # ----------------------------------------------------------------

    def _channels(self, page) -> List[Channel]:
        channels: List[Channel] = []
        if self._pc is not None and page.pc_norm > 0.0:
            scale = self._pc_coef / page.pc_norm
            channels.append(Channel(
                self._pc,
                {term: weight * scale for term, weight in page.pc.items()},
            ))
        if self._fc is not None and page.fc_norm > 0.0:
            scale = self._fc_coef / page.fc_norm
            channels.append(Channel(
                self._fc,
                {term: weight * scale for term, weight in page.fc.items()},
            ))
        return channels

    def top1(
        self, page, score_exact: Callable[[int], float]
    ) -> Optional[Tuple[int, float]]:
        """The best cluster for ``page`` — ``None`` when no centroid has
        positive similarity (the caller then mirrors the scan's argmax-
        of-zeros convention)."""
        results = top_k_exact(
            self._channels(page), 1, score_exact, stats=self.stats
        )
        return results[0] if results else None


__all__ = ["CentroidIndex"]
