"""repro.index — sparse inverted-index retrieval over the feature spaces.

Exact top-k without full scans: per-term posting lists with
pre-normalized weights and per-term max-weight upper bounds
(:mod:`~repro.index.postings`), term-at-a-time accumulation with
upper-bound pruning and exact re-scoring (:mod:`~repro.index.retrieval`),
centroid candidate generation for classify
(:mod:`~repro.index.centroids`), and the generation-stamped directory
state behind ``/search`` (:mod:`~repro.index.directory_index`).

Results are parity-pinned against the full-scan paths — same ids, same
floats, same order.  See docs/SERVING.md ("Indexed retrieval").
"""

from repro.index.centroids import CentroidIndex
from repro.index.directory_index import (
    INDEX_AUTO_MIN_CLUSTERS,
    INDEX_AUTO_MIN_PAGES,
    DirectoryIndex,
    validate_index_mode,
)
from repro.index.merge import (
    assert_sorted,
    cluster_hit_key,
    merge_ranked,
    page_hit_key,
)
from repro.index.postings import SpaceIndex
from repro.index.retrieval import (
    Channel,
    RetrievalStats,
    combined_query_channel,
    top_k_exact,
)
from repro.index.spill import SpillingSpaceIndex, SpillSegment

__all__ = [
    "INDEX_AUTO_MIN_CLUSTERS",
    "INDEX_AUTO_MIN_PAGES",
    "CentroidIndex",
    "Channel",
    "DirectoryIndex",
    "RetrievalStats",
    "SpaceIndex",
    "SpillSegment",
    "SpillingSpaceIndex",
    "assert_sorted",
    "cluster_hit_key",
    "combined_query_channel",
    "merge_ranked",
    "page_hit_key",
    "top_k_exact",
    "validate_index_mode",
]
