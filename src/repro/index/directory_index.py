"""The serving directory's retrieval state — combined-vector caches and
(optionally) posting lists, generation-stamped.

:class:`DirectoryIndex` owns two row collections for a
:class:`~repro.service.directory.FormDirectory`:

* **clusters** — each cluster's combined ``PC + FC`` centroid vector
  (the thing ``/search`` scores queries against).  These used to be
  re-materialized per request inside the read lock; here they are
  computed once per centroid change and reused by every query — the
  ``index="off"`` mode keeps exactly this cache, minus posting lists.
* **pages** — each managed page's combined vector, for
  ``/search?scope=pages``.  Page rows are keyed by a stable integer id
  (URLs map to ids) and survive re-clustering untouched: only cluster
  membership moves, and that is looked up live at query time.

Every mutation the owning directory performs calls :meth:`sync_clusters`
/ :meth:`page_upsert` / :meth:`page_remove` under the directory's write
lock and then stamps :attr:`generation` with the directory's new
generation.  Read paths compare stamps; on a mismatch (a mutation path
that forgot to sync) they fall back to a fresh full scan instead of
serving stale rows.

Parity: cached combined vectors are built by the same
``centroid.pc.add(centroid.fc)`` call the per-query path used, so their
term dicts (and hence dot-product iteration order) are identical —
cached, indexed, and from-scratch scoring all produce the same floats.
"""

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.index.postings import SpaceIndex
from repro.index.retrieval import (
    Channel,
    RetrievalStats,
    combined_query_channel,
    top_k_exact,
)
from repro.options import INDEX_CHOICES, validate_option
from repro.vsm.vector import SparseVector

#: ``index="auto"`` turns indexed retrieval on at these sizes.  Below
#: them a full scan over cached combined vectors is already cheap, and
#: the small-k behaviour (including pinned per-add similarity budgets)
#: stays byte-for-byte what it was before the index existed.
INDEX_AUTO_MIN_CLUSTERS = 32
INDEX_AUTO_MIN_PAGES = 256


def validate_index_mode(mode: str) -> str:
    """Shared-convention validation (:mod:`repro.options`) for the
    index mode; the raised :class:`~repro.options.OptionError` names the
    ``index`` field."""
    return validate_option("index", mode, INDEX_CHOICES)


class DirectoryIndex:
    """Cluster + page retrieval rows for one serving directory."""

    def __init__(self, mode: str = "auto") -> None:
        self.mode = validate_index_mode(mode)
        build = self.mode != "off"
        self._clusters = SpaceIndex(build_postings=build)
        self._pages = SpaceIndex(build_postings=build)
        self._centroid_refs: List[object] = []
        self._row_by_url: Dict[str, int] = {}
        self._url_by_row: Dict[int, str] = {}
        self._next_row = 0
        #: Directory generation these rows reflect (-1 = never synced).
        self.generation = -1
        self.stats = RetrievalStats()

    # ----------------------------------------------------------------
    # Mode resolution.
    # ----------------------------------------------------------------

    def use_for_clusters(self) -> bool:
        if self.mode == "off":
            return False
        if self.mode == "on":
            return True
        return len(self._clusters) >= INDEX_AUTO_MIN_CLUSTERS

    def use_for_pages(self) -> bool:
        if self.mode == "off":
            return False
        if self.mode == "on":
            return True
        return len(self._pages) >= INDEX_AUTO_MIN_PAGES

    # ----------------------------------------------------------------
    # Introspection (metrics).
    # ----------------------------------------------------------------

    @property
    def n_cluster_postings(self) -> int:
        return self._clusters.n_postings

    @property
    def n_page_postings(self) -> int:
        return self._pages.n_postings

    @property
    def n_cluster_terms(self) -> int:
        return self._clusters.n_terms

    @property
    def n_page_terms(self) -> int:
        return self._pages.n_terms

    @property
    def n_pages(self) -> int:
        return len(self._pages)

    # ----------------------------------------------------------------
    # Maintenance (caller holds the directory write lock).
    # ----------------------------------------------------------------

    def rebuild(self, organizer, generation: int) -> None:
        """Full rebuild from ``organizer`` (cold start / repair)."""
        self._clusters.clear()
        self._pages.clear()
        self._centroid_refs = []
        self._row_by_url = {}
        self._url_by_row = {}
        self._next_row = 0
        self._sync_cluster_rows(organizer)
        for cluster in organizer.clusters:
            for page in cluster.pages:
                self.page_upsert(page)
        self.generation = generation

    def sync_clusters(self, organizer, generation: int) -> None:
        """Refresh rows for centroids whose object identity changed,
        then stamp ``generation``."""
        self._sync_cluster_rows(organizer)
        self.generation = generation

    def _sync_cluster_rows(self, organizer) -> None:
        clusters = organizer.clusters
        if len(clusters) != len(self._centroid_refs):
            self._clusters.clear()
            self._centroid_refs = [None] * len(clusters)
        refs = self._centroid_refs
        for index, cluster in enumerate(clusters):
            centroid = cluster.centroid
            if refs[index] is not centroid:
                self._clusters.add_row(index, centroid.pc.add(centroid.fc))
                refs[index] = centroid

    def page_upsert(self, page) -> None:
        """(Re-)index one managed page's combined vector."""
        row = self._row_by_url.get(page.url)
        if row is None:
            row = self._next_row
            self._next_row += 1
            self._row_by_url[page.url] = row
            self._url_by_row[row] = page.url
        self._pages.add_row(row, page.pc.add(page.fc))

    def page_remove(self, url: str) -> None:
        row = self._row_by_url.pop(url, None)
        if row is not None:
            del self._url_by_row[row]
            self._pages.remove_row(row)

    # ----------------------------------------------------------------
    # Reads (caller holds the directory read lock).
    # ----------------------------------------------------------------

    def cluster_combined(self, index: int) -> SparseVector:
        """The cached combined centroid of cluster ``index``."""
        return self._clusters.vector(index)

    def cluster_combined_all(self) -> List[SparseVector]:
        return [
            self._clusters.vector(index)
            for index in range(len(self._clusters))
        ]

    def page_combined_items(self) -> Iterator[Tuple[str, SparseVector]]:
        """(url, combined vector) over every indexed page, for the
        cached full-scan path."""
        for row, vector in self._pages.row_items():
            yield self._url_by_row[row], vector

    def top_clusters(
        self, query: SparseVector, k: int,
        score_exact: Callable[[int], float],
    ) -> List[Tuple[int, float]]:
        """Exact top-``k`` clusters by combined-centroid cosine."""
        return top_k_exact(
            [combined_query_channel(self._clusters, query)],
            k, score_exact, stats=self.stats,
        )

    def top_pages(
        self, query: SparseVector, k: int,
        score_exact: Callable[[int], float],
    ) -> List[Tuple[int, float]]:
        """Exact top-``k`` page rows, URL-tie-broken like the scan."""
        return top_k_exact(
            [combined_query_channel(self._pages, query)],
            k, score_exact, stats=self.stats,
            tie_key=self._url_by_row.__getitem__,
        )

    def page_vector(self, row: int) -> SparseVector:
        return self._pages.vector(row)

    def page_url(self, row: int) -> str:
        return self._url_by_row[row]


__all__ = [
    "INDEX_AUTO_MIN_CLUSTERS",
    "INDEX_AUTO_MIN_PAGES",
    "DirectoryIndex",
    "validate_index_mode",
]
