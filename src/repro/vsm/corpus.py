"""Corpus-level statistics for IDF estimation.

``CorpusStats`` tracks the total number of documents ``N`` and the document
frequency ``n_i`` of every term, exactly the quantities Equation 1 needs:
``idf_i = log(N / n_i)``.
"""

import math
from collections import Counter
from typing import Dict, Iterable, Set


class CorpusStats:
    """Document frequencies over a collection.

    A "document" here is whatever unit IDF is computed over.  The paper
    computes one IDF per feature space over the whole collection of form
    pages; :class:`repro.core.vectorizer.FormPageVectorizer` builds one
    ``CorpusStats`` for FC and one for PC.
    """

    def __init__(self) -> None:
        self._document_count = 0
        self._document_frequency: Counter = Counter()

    # ----------------------------------------------------------------
    # Building.
    # ----------------------------------------------------------------

    def add_document(self, terms: Iterable[str]) -> None:
        """Register one document given its (possibly repeating) terms."""
        self._document_count += 1
        distinct: Set[str] = set(terms)
        self._document_frequency.update(distinct)

    def prune_rare(self, min_df: int) -> int:
        """Drop terms with document frequency below ``min_df``.

        The streaming path's vocabulary floor: hapax terms (site brands,
        typos) dominate an unbounded stream's vocabulary but can never
        weigh much — Equation 1 gives them the *largest* IDF, yet they
        appear in one document, so they only ever inflate that one
        page's self-similarity.  Pruning them from the DF table removes
        them from every later ``idf_map`` (so emitted vectors never
        intern them) while leaving ``N`` and all surviving frequencies
        untouched — surviving IDFs do not move.  Returns how many terms
        were dropped.  ``min_df <= 1`` is a no-op.
        """
        if min_df <= 1:
            return 0
        df = self._document_frequency
        doomed = [term for term, count in df.items() if count < min_df]
        for term in doomed:
            del df[term]
        return len(doomed)

    # ----------------------------------------------------------------
    # Queries.
    # ----------------------------------------------------------------

    @property
    def document_count(self) -> int:
        """N — the number of documents registered."""
        return self._document_count

    @property
    def vocabulary_size(self) -> int:
        return len(self._document_frequency)

    def document_frequency(self, term: str) -> int:
        """n_i — how many documents contain ``term``."""
        return self._document_frequency.get(term, 0)

    def idf(self, term: str) -> float:
        """log(N / n_i), per Equation 1.

        Unknown terms (n_i == 0) get IDF 0 — they cannot contribute to any
        similarity anyway, and this keeps the vectorizer total when scoring
        out-of-corpus pages against a frozen corpus.
        """
        n_i = self.document_frequency(term)
        if n_i == 0 or self._document_count == 0:
            return 0.0
        return math.log(self._document_count / n_i)

    def document_frequencies(self) -> Dict[str, int]:
        """A live read-only view of ``term -> n_i`` (for weighting schemes
        that derive their own IDF variant, e.g. BM25)."""
        return self._document_frequency

    def idf_map(self) -> Dict[str, float]:
        """IDF for every known term (materialized once for tight loops)."""
        n = self._document_count
        if n == 0:
            return {}
        return {
            term: math.log(n / df)
            for term, df in self._document_frequency.items()
        }

    # ----------------------------------------------------------------
    # Serialization (snapshot support).
    # ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """State as plain JSON-safe data (counts are exact integers, so a
        JSON round trip reproduces every IDF bit-for-bit)."""
        return {
            "document_count": self._document_count,
            "document_frequency": dict(self._document_frequency),
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "CorpusStats":
        """Rebuild statistics exported by :meth:`to_dict`."""
        stats = cls()
        stats._document_count = int(state.get("document_count", 0))
        stats._document_frequency = Counter(
            {str(term): int(df)
             for term, df in dict(state.get("document_frequency", {})).items()}
        )
        return stats
