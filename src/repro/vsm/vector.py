"""Dictionary-backed sparse term vectors.

Form-page vocabularies run to tens of thousands of terms while individual
pages contain a few hundred, so sparse dictionaries beat dense arrays both
in memory and in dot-product time (the dot product iterates the smaller
vector only).
"""

import math
from typing import Dict, Iterable, Iterator, Mapping, Tuple


class SparseVector:
    """An immutable-by-convention sparse vector over string terms.

    Supports the operations the clustering algorithms need: dot product,
    Euclidean norm, cosine similarity, scalar scaling, and accumulation
    (for centroid computation, Equation 4).
    """

    __slots__ = ("_weights", "_norm")

    def __init__(self, weights: Mapping[str, float] = ()) -> None:
        # Zero entries are dropped so that sparsity invariants hold
        # (len() == number of non-zero coordinates).
        self._weights: Dict[str, float] = {
            term: weight for term, weight in dict(weights).items() if weight != 0.0
        }
        self._norm: float = -1.0  # computed lazily

    # ----------------------------------------------------------------
    # Container protocol.
    # ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._weights)

    def __bool__(self) -> bool:
        return bool(self._weights)

    def __contains__(self, term: str) -> bool:
        return term in self._weights

    def __getitem__(self, term: str) -> float:
        return self._weights.get(term, 0.0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._weights)

    def items(self) -> Iterable[Tuple[str, float]]:
        return self._weights.items()

    def terms(self) -> Iterable[str]:
        return self._weights.keys()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._weights == other._weights

    def __repr__(self) -> str:
        preview = sorted(self._weights.items(), key=lambda kv: -kv[1])[:3]
        return f"SparseVector(nnz={len(self)}, top={preview})"

    # ----------------------------------------------------------------
    # Algebra.
    # ----------------------------------------------------------------

    def norm(self) -> float:
        """Euclidean length; cached after first computation."""
        if self._norm < 0.0:
            self._norm = math.sqrt(sum(w * w for w in self._weights.values()))
        return self._norm

    def dot(self, other: "SparseVector") -> float:
        """Dot product; iterates the sparser operand."""
        a, b = self._weights, other._weights
        if len(a) > len(b):
            a, b = b, a
        return sum(weight * b[term] for term, weight in a.items() if term in b)

    def dot_prenormed(self, weights: Mapping[str, float]) -> float:
        """Dot product against a plain pre-scaled ``{term: weight}`` map.

        The inverted-index accumulators (:mod:`repro.index`) carry
        queries as already-normalized plain dicts; this fast path skips
        SparseVector construction, zero filtering and norm bookkeeping
        entirely.  Iterates the sparser side, like :meth:`dot`.
        """
        mine = self._weights
        if len(mine) > len(weights):
            return sum(w * mine[t] for t, w in weights.items() if t in mine)
        return sum(w * weights[t] for t, w in mine.items() if t in weights)

    def scale(self, factor: float) -> "SparseVector":
        """Return a new vector scaled by ``factor``."""
        return SparseVector(
            {term: weight * factor for term, weight in self._weights.items()}
        )

    def add(self, other: "SparseVector") -> "SparseVector":
        """Return the element-wise sum as a new vector.

        The merged dict is built in one C-level pass; only genuinely
        shared terms pay a Python-level float add.  For the common
        PC+FC merge the two vocabularies barely overlap, so almost the
        whole sum happens inside the dict constructor.
        """
        a, b = self._weights, other._weights
        summed = {**a, **b}
        for term in a.keys() & b.keys():
            summed[term] = a[term] + b[term]
        return SparseVector(summed)

    def normalized(self) -> "SparseVector":
        """Return a unit-length copy (or an empty vector if zero)."""
        length = self.norm()
        if length == 0.0:
            return SparseVector()
        return self.scale(1.0 / length)

    def top_terms(self, n: int = 10) -> Iterable[Tuple[str, float]]:
        """The ``n`` heaviest terms, descending by weight (ties by term)."""
        return sorted(self._weights.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


def cosine_similarity(a: SparseVector, b: SparseVector) -> float:
    """Cosine similarity (Equation 2): ``a . b / (|a| |b|)``.

    Two empty vectors — or any vector against an empty one — have
    similarity 0, the conventional choice for missing feature spaces
    (e.g. a form page whose form carries no visible text at all).
    """
    denominator = a.norm() * b.norm()
    if denominator == 0.0:
        return 0.0
    return a.dot(b) / denominator


def accumulate(vectors: Iterable[SparseVector]) -> SparseVector:
    """Sum many vectors efficiently (single mutable accumulator).

    The first vector seeds the accumulator as a plain dict copy; later
    vectors pay a float add only for terms already present, so the
    common sparse-disjoint case stays in C-level dict operations.
    """
    total: Dict[str, float] = {}
    for vector in vectors:
        weights = vector._weights
        if not total:
            total = dict(weights)
            continue
        for term, weight in weights.items():
            if term in total:
                total[term] = total[term] + weight
            else:
                total[term] = weight
    return SparseVector(total)


def mean_vector(vectors: Iterable[SparseVector]) -> SparseVector:
    """The arithmetic mean of ``vectors`` (Equation 4 per feature space).

    Returns an empty vector for an empty input.
    """
    materialized = list(vectors)
    if not materialized:
        return SparseVector()
    return accumulate(materialized).scale(1.0 / len(materialized))
