"""Struct-of-arrays sparse term vectors over an interned vocabulary.

Form-page vocabularies run to tens of thousands of terms while individual
pages contain a few hundred, so sparse storage beats dense arrays both in
memory and in dot-product time (the dot product iterates the smaller
vector only).

Internally a vector is two parallel C-level arrays — interned term ids
(``array('q')``, via the shared :data:`~repro.vsm.interning.VOCABULARY`
table) and packed float weights (``array('d')``) — in insertion order,
plus a lazily built ``id -> weight`` dict for the random-access paths.
The public API is unchanged from the dict-backed layout, and every
float-summation order (``dot``, ``norm``, ``accumulate``) is preserved
exactly, so the re-layout is bit-identical to the old representation.
"""

import math
from array import array
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.vsm.interning import VOCABULARY

_VOCAB = VOCABULARY


class SparseVector:
    """An immutable-by-convention sparse vector over string terms.

    Supports the operations the clustering algorithms need: dot product,
    Euclidean norm, cosine similarity, scalar scaling, and accumulation
    (for centroid computation, Equation 4).
    """

    __slots__ = ("_ids", "_vals", "_lookup", "_norm")

    def __init__(self, weights: Mapping[str, float] = ()) -> None:
        # Zero entries are dropped so that sparsity invariants hold
        # (len() == number of non-zero coordinates).
        ids = array("q")
        vals = array("d")
        intern = _VOCAB.intern
        for term, weight in dict(weights).items():
            if weight != 0.0:
                ids.append(intern(term))
                vals.append(weight)
        self._ids = ids
        self._vals = vals
        self._lookup: Optional[Dict[int, float]] = None
        self._norm: float = -1.0  # computed lazily

    @classmethod
    def _from_ids(cls, items: Iterable[Tuple[int, float]]) -> "SparseVector":
        """Build from already-interned ``(id, weight)`` pairs (internal)."""
        vector = cls.__new__(cls)
        ids = array("q")
        vals = array("d")
        for tid, weight in items:
            if weight != 0.0:
                ids.append(tid)
                vals.append(weight)
        vector._ids = ids
        vector._vals = vals
        vector._lookup = None
        vector._norm = -1.0
        return vector

    def _by_id(self) -> Dict[int, float]:
        """The ``id -> weight`` dict, built on first random access."""
        lookup = self._lookup
        if lookup is None:
            lookup = dict(zip(self._ids, self._vals))
            self._lookup = lookup
        return lookup

    # ----------------------------------------------------------------
    # Container protocol.
    # ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __bool__(self) -> bool:
        return bool(self._ids)

    def __contains__(self, term: str) -> bool:
        tid = _VOCAB.id_of(term)
        return tid is not None and tid in self._by_id()

    def __getitem__(self, term: str) -> float:
        tid = _VOCAB.id_of(term)
        if tid is None:
            return 0.0
        return self._by_id().get(tid, 0.0)

    def __iter__(self) -> Iterator[str]:
        return map(_VOCAB.term, self._ids)

    def items(self) -> List[Tuple[str, float]]:
        term_of = _VOCAB.term
        return [(term_of(tid), v) for tid, v in zip(self._ids, self._vals)]

    def terms(self) -> List[str]:
        return [_VOCAB.term(tid) for tid in self._ids]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._by_id() == other._by_id()

    def __repr__(self) -> str:
        preview = sorted(self.items(), key=lambda kv: -kv[1])[:3]
        return f"SparseVector(nnz={len(self)}, top={preview})"

    def __reduce__(self):
        # Interned ids are process-local; pickle through term strings so
        # a vector crossing a process boundary re-interns on arrival.
        return (SparseVector, (dict(self.items()),))

    # ----------------------------------------------------------------
    # Algebra.
    # ----------------------------------------------------------------

    def norm(self) -> float:
        """Euclidean length; cached after first computation."""
        if self._norm < 0.0:
            self._norm = math.sqrt(sum(w * w for w in self._vals))
        return self._norm

    def dot(self, other: "SparseVector") -> float:
        """Dot product; iterates the sparser operand."""
        a, b = self, other
        if len(a._ids) > len(b._ids):
            a, b = b, a
        lookup = b._by_id()
        return sum(
            w * lookup[tid]
            for tid, w in zip(a._ids, a._vals)
            if tid in lookup
        )

    def dot_prenormed(self, weights: Mapping[str, float]) -> float:
        """Dot product against a plain pre-scaled ``{term: weight}`` map.

        The inverted-index accumulators (:mod:`repro.index`) carry
        queries as already-normalized plain dicts; this fast path skips
        SparseVector construction, zero filtering and norm bookkeeping
        entirely.  Iterates the sparser side, like :meth:`dot`,
        translating through the interned vocabulary.
        """
        if len(self._ids) > len(weights):
            lookup = self._by_id()
            id_of = _VOCAB.id_of
            total = 0.0
            for term, w in weights.items():
                tid = id_of(term)
                if tid is not None and tid in lookup:
                    total += w * lookup[tid]
            return total
        term_of = _VOCAB.term
        total = 0.0
        for tid, w in zip(self._ids, self._vals):
            term = term_of(tid)
            if term in weights:
                total += w * weights[term]
        return total

    def scale(self, factor: float) -> "SparseVector":
        """Return a new vector scaled by ``factor``."""
        return SparseVector._from_ids(
            (tid, w * factor) for tid, w in zip(self._ids, self._vals)
        )

    def add(self, other: "SparseVector") -> "SparseVector":
        """Return the element-wise sum as a new vector.

        The merged dict is built in one C-level pass; only genuinely
        shared terms pay a Python-level float add.  For the common
        PC+FC merge the two vocabularies barely overlap, so almost the
        whole sum happens inside the dict constructor.
        """
        a, b = self._by_id(), other._by_id()
        summed = {**a, **b}
        for tid in a.keys() & b.keys():
            summed[tid] = a[tid] + b[tid]
        return SparseVector._from_ids(summed.items())

    def normalized(self) -> "SparseVector":
        """Return a unit-length copy (or an empty vector if zero)."""
        length = self.norm()
        if length == 0.0:
            return SparseVector()
        return self.scale(1.0 / length)

    def top_terms(self, n: int = 10) -> Iterable[Tuple[str, float]]:
        """The ``n`` heaviest terms, descending by weight (ties by term)."""
        return sorted(self.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


def cosine_similarity(a: SparseVector, b: SparseVector) -> float:
    """Cosine similarity (Equation 2): ``a . b / (|a| |b|)``.

    Two empty vectors — or any vector against an empty one — have
    similarity 0, the conventional choice for missing feature spaces
    (e.g. a form page whose form carries no visible text at all).
    """
    denominator = a.norm() * b.norm()
    if denominator == 0.0:
        return 0.0
    return a.dot(b) / denominator


def accumulate(vectors: Iterable[SparseVector]) -> SparseVector:
    """Sum many vectors efficiently (single mutable accumulator).

    The first vector seeds the accumulator as a plain dict copy; later
    vectors pay a float add only for terms already present, so the
    common sparse-disjoint case stays in C-level dict operations.
    """
    total: Dict[int, float] = {}
    for vector in vectors:
        if not total:
            total = dict(zip(vector._ids, vector._vals))
            continue
        for tid, weight in zip(vector._ids, vector._vals):
            if tid in total:
                total[tid] = total[tid] + weight
            else:
                total[tid] = weight
    return SparseVector._from_ids(total.items())


def mean_vector(vectors: Iterable[SparseVector]) -> SparseVector:
    """The arithmetic mean of ``vectors`` (Equation 4 per feature space).

    Returns an empty vector for an empty input.
    """
    materialized = list(vectors)
    if not materialized:
        return SparseVector()
    return accumulate(materialized).scale(1.0 / len(materialized))
