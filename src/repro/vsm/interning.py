"""Shared term-id interning — the vocabulary table behind ``SparseVector``.

Struct-of-arrays sparse vectors (:mod:`repro.vsm.vector`) do not store
term strings at all: each term is interned once, process-wide, into an
append-only bijection ``term <-> small int id``, and vectors pack the
ids into a C-level ``array('q')``.  Across a corpus the same few
thousand stems repeat in tens of thousands of vectors, so interning
collapses per-vector string storage to 8 bytes per coordinate and turns
dict probes during dot products into integer hashing.

The table is process-global (:data:`VOCABULARY`) and never shrinks;
ids are meaningless outside the process, which is why
``SparseVector.__reduce__`` pickles vectors back through their term
strings.
"""

import sys
import threading
from typing import Dict, List, Optional


class TermTable:
    """A thread-safe, append-only ``term <-> id`` bijection.

    Reads (:meth:`id_of`, :meth:`term`) are lock-free attribute lookups;
    only first-time interning takes the lock.  ``term(tid)`` is valid
    for any id ever returned, because the term list is appended before
    the id is published.
    """

    __slots__ = ("_lock", "_ids", "_terms")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids: Dict[str, int] = {}
        self._terms: List[str] = []

    def __len__(self) -> int:
        return len(self._terms)

    def intern(self, term: str) -> int:
        """The id for ``term``, allocating one on first sight."""
        tid = self._ids.get(term)
        if tid is not None:
            return tid
        with self._lock:
            tid = self._ids.get(term)
            if tid is None:
                tid = len(self._terms)
                self._terms.append(term)
                self._ids[term] = tid
            return tid

    def id_of(self, term: str) -> Optional[int]:
        """The id for ``term`` if it was ever interned, else ``None``."""
        return self._ids.get(term)

    def term(self, tid: int) -> str:
        """The term string behind ``tid``."""
        return self._terms[tid]

    def bytes_estimate(self) -> int:
        """Approximate resident bytes of the table (strings + dict + list).

        String payloads are exact (``sys.getsizeof`` per term, counted
        once — the dict key and list entry are the same object); the
        dict/list overheads are the containers' own ``getsizeof`` plus
        8 bytes per reference for the int values.  Good enough for the
        ``vocab_bytes_estimate`` gauge to show growth, which is the
        point — unbounded interning must at least be *visible*.
        """
        terms = self._terms
        string_bytes = sum(sys.getsizeof(term) for term in terms)
        return (
            string_bytes
            + sys.getsizeof(self._ids)
            + sys.getsizeof(terms)
            + 8 * len(terms)  # int values in the id dict
        )

    def stats(self) -> Dict[str, int]:
        """``{"terms": ..., "bytes_estimate": ...}`` for gauges and CLIs."""
        return {"terms": len(self), "bytes_estimate": self.bytes_estimate()}


class BoundedTermTable(TermTable):
    """A :class:`TermTable` that can shed rarely used terms.

    The process-global :data:`VOCABULARY` must stay append-only — live
    :class:`~repro.vsm.vector.SparseVector` ids point into it — but
    *scratch* vocabularies (the streaming ingestor's per-run term
    bookkeeping, short-lived analysis tables) have no such liability
    and should not grow with an unbounded stream.  This variant counts
    :meth:`intern` calls per term and supports frequency-floor
    compaction: :meth:`compact` drops every term used fewer than
    ``min_count`` times and reassigns dense ids to the survivors,
    returning the ``old id -> new id`` remap so any caller-held ids can
    be rewritten (or discarded).

    ``max_terms`` arms automatic compaction: when interning would grow
    the table past the cap, :meth:`compact` runs first with an adaptive
    floor (the smallest ``min_count`` that frees space).  Ids are only
    stable between compactions — that is the contract callers accept in
    exchange for bounded memory.
    """

    __slots__ = ("_counts", "max_terms", "n_compactions", "n_dropped")

    def __init__(self, max_terms: int = 0) -> None:
        super().__init__()
        if max_terms < 0:
            raise ValueError("max_terms must be non-negative")
        self._counts: List[int] = []
        self.max_terms = max_terms
        self.n_compactions = 0
        self.n_dropped = 0

    def intern(self, term: str) -> int:
        tid = self._ids.get(term)
        if tid is not None:
            self._counts[tid] += 1
            return tid
        with self._lock:
            tid = self._ids.get(term)
            if tid is not None:
                self._counts[tid] += 1
                return tid
            if self.max_terms and len(self._terms) >= self.max_terms:
                self._compact_locked(self._adaptive_floor())
            tid = len(self._terms)
            self._terms.append(term)
            self._counts.append(1)
            self._ids[term] = tid
            return tid

    def count(self, term: str) -> int:
        """How many times ``term`` was interned since it last survived
        (0 when absent)."""
        tid = self._ids.get(term)
        return self._counts[tid] if tid is not None else 0

    def _adaptive_floor(self) -> int:
        """The smallest frequency floor that frees at least a quarter of
        the table (so compaction is amortized, not per-intern)."""
        target = max(1, self.max_terms // 4)
        floor = 2
        counts = self._counts
        while sum(1 for c in counts if c < floor) < target:
            floor *= 2
            if floor > max(counts, default=1):
                break
        return floor

    def compact(self, min_count: int = 2) -> Dict[int, int]:
        """Drop terms interned fewer than ``min_count`` times; densify ids.

        Returns ``{old id: new id}`` for the survivors — anything absent
        was dropped.  Survivor counts reset to 1 so long-lived terms must
        keep earning their slot across compaction epochs.
        """
        with self._lock:
            return self._compact_locked(min_count)

    def _compact_locked(self, min_count: int) -> Dict[int, int]:
        remap: Dict[int, int] = {}
        new_terms: List[str] = []
        new_counts: List[int] = []
        new_ids: Dict[str, int] = {}
        for tid, (term, count) in enumerate(zip(self._terms, self._counts)):
            if count >= min_count:
                remap[tid] = len(new_terms)
                new_ids[term] = len(new_terms)
                new_terms.append(term)
                new_counts.append(1)
        self.n_dropped += len(self._terms) - len(new_terms)
        self._terms = new_terms
        self._counts = new_counts
        self._ids = new_ids
        self.n_compactions += 1
        return remap


#: The process-wide vocabulary every :class:`~repro.vsm.vector.SparseVector`
#: interns against.
VOCABULARY = TermTable()
