"""Shared term-id interning — the vocabulary table behind ``SparseVector``.

Struct-of-arrays sparse vectors (:mod:`repro.vsm.vector`) do not store
term strings at all: each term is interned once, process-wide, into an
append-only bijection ``term <-> small int id``, and vectors pack the
ids into a C-level ``array('q')``.  Across a corpus the same few
thousand stems repeat in tens of thousands of vectors, so interning
collapses per-vector string storage to 8 bytes per coordinate and turns
dict probes during dot products into integer hashing.

The table is process-global (:data:`VOCABULARY`) and never shrinks;
ids are meaningless outside the process, which is why
``SparseVector.__reduce__`` pickles vectors back through their term
strings.
"""

import threading
from typing import Dict, List, Optional


class TermTable:
    """A thread-safe, append-only ``term <-> id`` bijection.

    Reads (:meth:`id_of`, :meth:`term`) are lock-free attribute lookups;
    only first-time interning takes the lock.  ``term(tid)`` is valid
    for any id ever returned, because the term list is appended before
    the id is published.
    """

    __slots__ = ("_lock", "_ids", "_terms")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids: Dict[str, int] = {}
        self._terms: List[str] = []

    def __len__(self) -> int:
        return len(self._terms)

    def intern(self, term: str) -> int:
        """The id for ``term``, allocating one on first sight."""
        tid = self._ids.get(term)
        if tid is not None:
            return tid
        with self._lock:
            tid = self._ids.get(term)
            if tid is None:
                tid = len(self._terms)
                self._terms.append(term)
                self._ids[term] = tid
            return tid

    def id_of(self, term: str) -> Optional[int]:
        """The id for ``term`` if it was ever interned, else ``None``."""
        return self._ids.get(term)

    def term(self, tid: int) -> str:
        """The term string behind ``tid``."""
        return self._terms[tid]


#: The process-wide vocabulary every :class:`~repro.vsm.vector.SparseVector`
#: interns against.
VOCABULARY = TermTable()
