"""Vectorized batch operations over sparse term vectors.

The pure-Python :class:`~repro.vsm.vector.SparseVector` API is the right
abstraction for the algorithms, but all-pairs similarity (HAC input,
hub-distance matrices) is O(n²) dot products and dominates experiment
wall-clock.  This module packs a vector collection into a scipy CSR
matrix and computes the full cosine matrix with one sparse matmul —
numerically identical to the scalar path (asserted by tests) and ~50x
faster at n=454.
"""

from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.vsm.vector import SparseVector


def build_term_index(vectors: Sequence[SparseVector]) -> Dict[str, int]:
    """Stable term -> column mapping over a vector collection."""
    terms = sorted({term for vector in vectors for term in vector.terms()})
    return {term: index for index, term in enumerate(terms)}


def to_csr(
    vectors: Sequence[SparseVector],
    term_index: Dict[str, int],
) -> sparse.csr_matrix:
    """Pack vectors into a CSR matrix (rows = vectors, cols = terms)."""
    data: List[float] = []
    indices: List[int] = []
    indptr: List[int] = [0]
    for vector in vectors:
        for term, weight in vector.items():
            column = term_index.get(term)
            if column is not None:
                indices.append(column)
                data.append(weight)
        indptr.append(len(indices))
    return sparse.csr_matrix(
        (data, indices, indptr),
        shape=(len(vectors), max(len(term_index), 1)),
        dtype=np.float64,
    )


def cosine_matrix(vectors: Sequence[SparseVector]) -> np.ndarray:
    """All-pairs cosine similarity as a dense (n, n) array.

    Zero vectors produce zero rows/columns (matching the scalar
    convention that anything against an empty vector scores 0).
    """
    n = len(vectors)
    if n == 0:
        return np.zeros((0, 0))
    term_index = build_term_index(vectors)
    matrix = to_csr(vectors, term_index)
    norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A.ravel()
    # Avoid division by zero: zero-norm rows stay zero after scaling.
    scale = np.divide(1.0, norms, out=np.zeros_like(norms), where=norms > 0)
    normalized = sparse.diags(scale) @ matrix
    return np.asarray((normalized @ normalized.T).todense())


def form_page_similarity_matrix(
    pages: Sequence,
    page_weight: float = 1.0,
    form_weight: float = 1.0,
    use_pc: bool = True,
    use_fc: bool = True,
) -> np.ndarray:
    """Equation-3 all-pairs similarity over form pages, vectorized.

    Matches :class:`repro.core.similarity.FormPageSimilarity` exactly:
    single-space modes use that space's cosine; the combined mode is the
    weighted average.  The diagonal is set to 1.0 (self-similarity), as
    :func:`repro.clustering.hac.similarity_matrix` does.
    """
    if not use_pc and not use_fc:
        raise ValueError("at least one feature space must be enabled")
    n = len(pages)
    if n == 0:
        return np.zeros((0, 0))
    if use_pc and use_fc:
        combined = (
            page_weight * cosine_matrix([page.pc for page in pages])
            + form_weight * cosine_matrix([page.fc for page in pages])
        ) / (page_weight + form_weight)
    elif use_pc:
        combined = cosine_matrix([page.pc for page in pages])
    else:
        combined = cosine_matrix([page.fc for page in pages])
    np.fill_diagonal(combined, 1.0)
    return combined


def centroid_rows(
    matrix: sparse.csr_matrix, groups: Sequence[Sequence[int]]
) -> sparse.csr_matrix:
    """Mean rows per group (vectorized Equation-4 over a packed matrix)."""
    n_groups = len(groups)
    selector = sparse.lil_matrix((n_groups, matrix.shape[0]))
    for row, members in enumerate(groups):
        if not members:
            continue
        weight = 1.0 / len(members)
        for member in members:
            selector[row, member] = weight
    return sparse.csr_matrix(selector) @ matrix


__all__: Tuple[str, ...] = (
    "build_term_index",
    "to_csr",
    "cosine_matrix",
    "form_page_similarity_matrix",
    "centroid_rows",
)
