"""Location-weighted TF-IDF primitives — Equation 1 of the paper.

``w_i = LOC_i * TF_i * log(N / n_i)``

``LOC_i`` is "a small integer whose value depends on the location of the
term" (Section 2.1).  The paper's concrete policy (Section 4.4):

* form contents (FC): terms inside ``<option>`` tags get a *lower* weight
  than the rest of the form — options reflect database contents, which vary
  wildly across sites, while the rest of the form reflects the schema;
* page contents (PC): terms inside ``<title>`` get a *higher* weight than
  body terms.

:class:`LocationWeights` captures the LOC policy; ``uniform()`` reproduces
the Section 4.4 ablation (all LOC factors = 1).

This module supplies the *primitives*; which formula actually turns
LOC-weighted TFs into a vector is decided one layer up, by the active
:class:`~repro.vsm.schemes.WeightingScheme`:

* :func:`located_term_frequencies` accumulates LOC-weighted TFs — the
  scheme-independent first half of every scheme's emit phase;
* :func:`tf_idf_vector` is the Equation-1 emission, which
  :class:`~repro.vsm.schemes.Eq1Scheme` (the default, and the ``"auto"``
  alias of ``CAFCConfig.scheme``) delegates to unchanged, keeping the
  default bit-identical to the pre-seam vectorizer;
* alternative schemes (:class:`~repro.vsm.schemes.BM25Scheme`,
  :class:`~repro.vsm.schemes.TFScheme`) reuse the same TF primitive but
  replace the emission formula.  See docs/RANKING.md for the protocol
  and how to add a scheme.
"""

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.html.text_extract import TextLocation
from repro.vsm.corpus import CorpusStats
from repro.vsm.vector import SparseVector

__all__ = [
    "LocationWeights",
    "located_term_frequencies",
    "tf_idf_vector",
]


@dataclass(frozen=True)
class LocationWeights:
    """LOC factors per text location.

    The defaults follow the paper's description: small integers, with
    option text discounted and title text boosted.  Anchor text sits
    between body and title — the paper lists link anchor text among the
    term locations search engines boost (Section 2.1).
    """

    title: int = 3
    anchor: int = 2
    body: int = 1
    # Fractional discount for <option> content.  The paper says "a lower
    # LOC_i value to content inside option tags"; with integer body weight 1
    # the only way down is fractional.
    option: float = 0.3

    def factor(self, location: TextLocation) -> float:
        """The LOC multiplier for a term at ``location``."""
        if location is TextLocation.TITLE:
            return float(self.title)
        if location is TextLocation.ANCHOR:
            return float(self.anchor)
        if location is TextLocation.OPTION:
            return float(self.option)
        return float(self.body)

    @staticmethod
    def uniform() -> "LocationWeights":
        """All locations weighted 1 — the Section 4.4 ablation."""
        return LocationWeights(title=1, anchor=1, body=1, option=1.0)

    def to_dict(self) -> dict:
        """The LOC factors as JSON-safe data (snapshot support)."""
        return {
            "title": self.title,
            "anchor": self.anchor,
            "body": self.body,
            "option": self.option,
        }

    @staticmethod
    def from_dict(state: dict) -> "LocationWeights":
        """Rebuild a policy exported by :meth:`to_dict`."""
        return LocationWeights(
            title=int(state.get("title", 3)),
            anchor=int(state.get("anchor", 2)),
            body=int(state.get("body", 1)),
            option=float(state.get("option", 0.3)),
        )


def located_term_frequencies(
    located_terms: Iterable[Tuple[str, TextLocation]],
    weights: LocationWeights,
) -> Counter:
    """Accumulate LOC-weighted term frequencies.

    Each occurrence of a term contributes its location factor, so a term
    appearing twice in the body and once in the title accumulates
    ``2*body + 1*title``.
    """
    weighted: Counter = Counter()
    for term, location in located_terms:
        weighted[term] += weights.factor(location)
    return weighted


def tf_idf_vector(
    weighted_term_frequencies: Counter,
    corpus: CorpusStats,
    idf_map: Optional[Dict[str, float]] = None,
) -> SparseVector:
    """Build the Equation-1 vector from LOC-weighted TFs and corpus IDF.

    Terms with zero IDF (present in every document, or unknown) drop out of
    the vector — they cannot discriminate anything.

    ``idf_map`` (from :meth:`CorpusStats.idf_map`) replaces the per-term
    ``corpus.idf`` method calls with dict lookups when the caller
    vectorizes a whole collection; both paths compute ``log(N / n_i)``
    from the same integers, so the floats are identical.
    """
    weights = {}
    if idf_map is not None:
        get_idf = idf_map.get
        for term, weighted_tf in weighted_term_frequencies.items():
            idf = get_idf(term, 0.0)
            if idf > 0.0:
                weights[term] = weighted_tf * idf
        return SparseVector(weights)
    for term, weighted_tf in weighted_term_frequencies.items():
        idf = corpus.idf(term)
        if idf > 0.0:
            weights[term] = weighted_tf * idf
    return SparseVector(weights)
