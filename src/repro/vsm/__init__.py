"""Vector-space model substrate.

Implements the pieces of Section 2.1:

* :class:`repro.vsm.vector.SparseVector` — dictionary-backed sparse term
  vectors with dot product, norm, scaling and cosine similarity (Eq. 2).
* :class:`repro.vsm.corpus.CorpusStats` — document frequencies and corpus
  size for IDF estimation.
* :class:`repro.vsm.weights.LocationWeights` and
  :func:`repro.vsm.weights.tf_idf_vector` — Equation 1:
  ``w_i = LOC_i * TF_i * log(N / n_i)``.
"""

from repro.vsm.corpus import CorpusStats
from repro.vsm.vector import SparseVector, cosine_similarity
from repro.vsm.weights import LocationWeights, tf_idf_vector

__all__ = [
    "CorpusStats",
    "SparseVector",
    "cosine_similarity",
    "LocationWeights",
    "tf_idf_vector",
]
