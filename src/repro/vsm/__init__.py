"""Vector-space model substrate.

Implements the pieces of Section 2.1 plus the weighting-scheme seam:

* :class:`repro.vsm.vector.SparseVector` — sparse term vectors
  (struct-of-arrays internally, interned term ids) with dot product,
  norm, scaling and cosine similarity (Eq. 2).
* :class:`repro.vsm.corpus.CorpusStats` — document frequencies and corpus
  size for IDF estimation.
* :class:`repro.vsm.weights.LocationWeights` and
  :func:`repro.vsm.weights.tf_idf_vector` — Equation 1:
  ``w_i = LOC_i * TF_i * log(N / n_i)``.
* :mod:`repro.vsm.schemes` — the :class:`WeightingScheme` protocol and
  the built-in schemes (``eq1``, ``bm25``, ``tf``); see docs/RANKING.md.
"""

from repro.vsm.corpus import CorpusStats
from repro.vsm.schemes import (
    BM25Scheme,
    Eq1Scheme,
    SpaceStats,
    TFScheme,
    UnknownSchemeError,
    WeightingScheme,
    resolve_scheme,
    scheme_from_dict,
)
from repro.vsm.vector import SparseVector, cosine_similarity
from repro.vsm.weights import LocationWeights, tf_idf_vector

__all__ = [
    "CorpusStats",
    "SparseVector",
    "cosine_similarity",
    "LocationWeights",
    "tf_idf_vector",
    "WeightingScheme",
    "SpaceStats",
    "Eq1Scheme",
    "BM25Scheme",
    "TFScheme",
    "UnknownSchemeError",
    "resolve_scheme",
    "scheme_from_dict",
]
