"""Pluggable term-weighting schemes — the ranking seam behind the vectorizer.

The paper hard-wires Equation 1 (location-boosted TF-IDF); this module
turns the three moments where a weighting scheme acts into a protocol,
so alternatives plug in without touching the vectorizer:

1. **fit** — :meth:`WeightingScheme.observe` folds one document's
   located terms into per-space :class:`SpaceStats` (document
   frequencies, and whatever else the scheme needs — BM25 also tracks
   total weighted length for ``avgdl``).  The vectorizer calls this in
   page order in the parent process, so pooled map/reduce ingestion
   merges scheme stats exactly like DF today (docs/INGESTION.md).
2. **prepare** — after the whole collection is observed,
   :meth:`WeightingScheme.prepare` materializes a per-space emit
   context (e.g. the IDF map) used for both batch vectorization and
   later ``transform_new`` calls.
3. **emit** — :meth:`WeightingScheme.vector` turns one page's
   LOC-weighted term frequencies into a :class:`SparseVector`.

Schemes are named (``"eq1"``, ``"bm25"``, ``"tf"``) and serialize to
JSON-safe dicts, so fitted state survives snapshots; ``"auto"`` resolves
to Equation 1 and ``"off"`` to plain LOC-weighted TF (corpus weighting
disabled).  :class:`Eq1Scheme` routes through the exact
:func:`~repro.vsm.weights.tf_idf_vector` call sequence the vectorizer
used before this seam existed, so the default is bit-identical —
pinned by ``tests/test_schemes.py`` over the 454-page reference corpus.

BM25 emits scores max-normalized to [0, 1] **per feature space** before
the PC/FC combination, so Equation-3 mixing (and any cross-shard top-k
merge) compares like with like; see docs/RANKING.md.
"""

import math
from collections import Counter
from typing import (
    Any,
    Dict,
    Iterable,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.html.text_extract import TextLocation
from repro.options import SCHEME_CHOICES, resolve_auto, validate_option
from repro.vsm.corpus import CorpusStats
from repro.vsm.vector import SparseVector
from repro.vsm.weights import LocationWeights, tf_idf_vector

LocatedTerms = Iterable[Tuple[str, TextLocation]]


class UnknownSchemeError(ValueError):
    """A scheme name (from config, CLI, or snapshot state) is unknown.

    Carries ``name`` so snapshot loaders can wrap it in their own
    structured errors.
    """

    def __init__(self, name: object) -> None:
        self.name = name
        super().__init__(
            f"unknown weighting scheme {name!r}; "
            f"expected one of {SCHEME_CHOICES}"
        )


class SpaceStats:
    """Fit-time statistics for one feature space (PC or FC).

    Wraps the Equation-1 :class:`CorpusStats` (document count + DF) and
    adds the total LOC-weighted document length BM25 needs for
    ``avgdl``.  Counts are integers and the length a plain float, so a
    JSON round trip reproduces every derived weight bit-for-bit.
    """

    __slots__ = ("corpus", "total_weighted_length")

    def __init__(
        self,
        corpus: Optional[CorpusStats] = None,
        total_weighted_length: float = 0.0,
    ) -> None:
        self.corpus = corpus if corpus is not None else CorpusStats()
        self.total_weighted_length = float(total_weighted_length)

    @property
    def document_count(self) -> int:
        return self.corpus.document_count

    @property
    def average_length(self) -> float:
        """Mean LOC-weighted document length (0 when nothing observed)."""
        n = self.corpus.document_count
        if n == 0:
            return 0.0
        return self.total_weighted_length / n


class IdfDriftTracker:
    """An upper bound on per-term IDF drift since the last re-weight.

    The streaming relaxation (docs/INGESTION.md): pages are emitted
    against the IDF map *prepared* at the last re-weight, while the
    per-space :class:`SpaceStats` keep absorbing documents.  For a term
    in the prepared map, the frozen-vs-current error is

        ``idf0 - idf = log(df/df0) - log(N/N0)``

    whose two parts are both non-negative (document counts only grow),
    so ``|idf0 - idf| <= max(log(N/N0), max_t log(df_t/df0_t))`` — the
    quantity :meth:`drift` maintains.  Both parts update in O(distinct
    terms per document): :meth:`absorb` is called right after the
    scheme's ``observe`` folded a document in, and :meth:`rearm`
    re-snapshots after every ``prepare``.

    The re-weight policy — re-prepare when :meth:`drift` exceeds a
    threshold *before* emitting a batch — therefore guarantees that
    every emitted in-vocabulary weight ``LOC*TF*idf0`` is within
    ``LOC*TF*threshold`` of the exact Equation-1 weight over all
    documents observed so far.  Terms first seen after the snapshot are
    absent from the frozen map and drop out of emission entirely (the
    same frozen-vocabulary treatment ``transform_new`` applies); the
    next re-weight admits them.
    """

    __slots__ = ("_n0", "_df0", "_max_log_ratio")

    def __init__(self) -> None:
        self._n0 = 0
        self._df0: Dict[str, int] = {}
        self._max_log_ratio = 0.0

    def rearm(self, stats: SpaceStats) -> None:
        """Snapshot the stats a ``prepare`` was just run over."""
        self._n0 = stats.corpus.document_count
        self._df0 = dict(stats.corpus.document_frequencies())
        self._max_log_ratio = 0.0

    def absorb(self, stats: SpaceStats, distinct_terms: Iterable[str]) -> None:
        """Fold one just-observed document's distinct terms in."""
        df0 = self._df0
        if not df0:
            return
        corpus = stats.corpus
        worst = self._max_log_ratio
        for term in distinct_terms:
            base = df0.get(term)
            if base:
                ratio = math.log(corpus.document_frequency(term) / base)
                if ratio > worst:
                    worst = ratio
        self._max_log_ratio = worst

    def drift(self, stats: SpaceStats) -> float:
        """The current bound on any prepared term's ``|idf0 - idf|``."""
        n = stats.corpus.document_count
        if self._n0 <= 0:
            return float("inf") if n > 0 else 0.0
        return max(math.log(n / self._n0), self._max_log_ratio)


@runtime_checkable
class WeightingScheme(Protocol):
    """The three-phase weighting contract the vectorizer codes against."""

    name: str

    def observe(
        self,
        stats: SpaceStats,
        located_terms: LocatedTerms,
        location_weights: LocationWeights,
    ) -> None:
        """Fold one document's located terms into ``stats`` (fit time)."""
        ...

    def prepare(self, stats: SpaceStats) -> Any:
        """Materialize the per-space emit context (e.g. an IDF map)."""
        ...

    def vector(
        self,
        weighted_tf: Counter,
        stats: SpaceStats,
        context: Any = None,
    ) -> SparseVector:
        """Emit one page's weight vector from its LOC-weighted TFs."""
        ...

    def to_dict(self) -> dict:
        """Scheme identity + tunables as JSON-safe data (snapshots)."""
        ...


class Eq1Scheme:
    """Equation 1 — ``w_i = LOC_i * TF_i * log(N / n_i)`` — the default.

    Every call routes through the same :class:`CorpusStats` /
    :func:`tf_idf_vector` sequence the vectorizer used before the
    scheme seam, so vectors are bit-identical to the pre-seam build.
    """

    name = "eq1"

    def observe(
        self,
        stats: SpaceStats,
        located_terms: LocatedTerms,
        location_weights: LocationWeights,
    ) -> None:
        # The exact pre-seam call: a generator of terms, locations
        # dropped, no materialization — DF integers cannot drift.
        stats.corpus.add_document(term for term, _ in located_terms)

    def prepare(self, stats: SpaceStats) -> Dict[str, float]:
        # idf_map() and per-term idf() compute log(N / n_i) from the
        # same integers, so preparing once is bit-identical to the old
        # per-term path transform_new used.
        return stats.corpus.idf_map()

    def vector(
        self,
        weighted_tf: Counter,
        stats: SpaceStats,
        context: Optional[Dict[str, float]] = None,
    ) -> SparseVector:
        if context is not None:
            return tf_idf_vector(weighted_tf, stats.corpus, idf_map=context)
        return tf_idf_vector(weighted_tf, stats.corpus)

    def to_dict(self) -> dict:
        return {"name": self.name}


class BM25Scheme:
    """Okapi BM25 over LOC-weighted term frequencies, normalized per space.

    Per term: ``idf * tf * (k1 + 1) / (tf + k1 * (1 - b + b * dl/avgdl))``
    with ``idf = log(1 + (N - n_i + 0.5) / (n_i + 0.5))`` (the
    non-negative Lucene variant), ``tf`` the LOC-weighted frequency and
    ``dl`` the page's total LOC-weighted length in that space.

    Emitted vectors are max-normalized so every weight lies in (0, 1]
    — per feature space, *before* the Equation-3 PC/FC combination —
    which keeps the two spaces' contributions commensurable and makes
    cross-shard top-k merges well-defined (cosine itself is
    scale-invariant, so per-space similarities are unaffected).

    Terms outside the fitted vocabulary drop out, like Equation 1's
    frozen-vocabulary treatment of new pages.
    """

    name = "bm25"

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0:
            raise ValueError("bm25 k1 must be non-negative")
        if not 0.0 <= b <= 1.0:
            raise ValueError("bm25 b must be in [0, 1]")
        self.k1 = float(k1)
        self.b = float(b)

    def observe(
        self,
        stats: SpaceStats,
        located_terms: LocatedTerms,
        location_weights: LocationWeights,
    ) -> None:
        located = list(located_terms)
        stats.corpus.add_document(term for term, _ in located)
        factor = location_weights.factor
        stats.total_weighted_length += sum(
            factor(location) for _, location in located
        )

    def prepare(self, stats: SpaceStats) -> Dict[str, float]:
        n = stats.corpus.document_count
        if n == 0:
            return {}
        return {
            term: math.log(1.0 + (n - df + 0.5) / (df + 0.5))
            for term, df in stats.corpus.document_frequencies().items()
        }

    def vector(
        self,
        weighted_tf: Counter,
        stats: SpaceStats,
        context: Optional[Dict[str, float]] = None,
    ) -> SparseVector:
        idf = context if context is not None else self.prepare(stats)
        dl = sum(weighted_tf.values())
        if dl <= 0.0 or not idf:
            return SparseVector()
        avgdl = stats.average_length
        # Degenerate corpus (no observed length): fall back to dl so the
        # length ratio is 1 and the formula degrades to saturation-only.
        length_norm = self.k1 * (
            1.0 - self.b + self.b * (dl / avgdl if avgdl > 0.0 else 1.0)
        )
        weights: Dict[str, float] = {}
        best = 0.0
        for term, tf in weighted_tf.items():
            term_idf = idf.get(term, 0.0)
            if term_idf <= 0.0:
                continue
            score = term_idf * (tf * (self.k1 + 1.0)) / (tf + length_norm)
            weights[term] = score
            if score > best:
                best = score
        if best > 0.0:
            # Divide (not multiply-by-inverse): the best term lands on
            # exactly 1.0, so the (0, 1] range is tight.
            weights = {term: score / best for term, score in weights.items()}
        return SparseVector(weights)

    def to_dict(self) -> dict:
        return {"name": self.name, "k1": self.k1, "b": self.b}


class TFScheme:
    """Corpus weighting off: plain LOC-weighted term frequencies.

    The ``"off"`` alias.  Still observes document frequencies (so a
    fitted vectorizer reports vocabulary sizes and can be re-weighted
    offline), but emission ignores them entirely — an ablation baseline
    for the A/B harness.
    """

    name = "tf"

    def observe(
        self,
        stats: SpaceStats,
        located_terms: LocatedTerms,
        location_weights: LocationWeights,
    ) -> None:
        stats.corpus.add_document(term for term, _ in located_terms)

    def prepare(self, stats: SpaceStats) -> None:
        return None

    def vector(
        self,
        weighted_tf: Counter,
        stats: SpaceStats,
        context: Any = None,
    ) -> SparseVector:
        return SparseVector(dict(weighted_tf))

    def to_dict(self) -> dict:
        return {"name": self.name}


#: What users may put in ``CAFCConfig.scheme`` / pass as ``scheme=``.
SchemeSpec = Union[None, str, WeightingScheme]

_SCHEME_CLASSES = {
    Eq1Scheme.name: Eq1Scheme,
    BM25Scheme.name: BM25Scheme,
    TFScheme.name: TFScheme,
}


def resolve_scheme(spec: SchemeSpec) -> WeightingScheme:
    """Turn a scheme spec into a scheme instance.

    ``spec`` may be ``None`` or ``"auto"`` (Equation 1 — the paper's
    default), ``"off"`` (plain LOC-weighted TF), one of the scheme
    names (``"eq1"``, ``"bm25"``, ``"tf"``), or an existing
    :class:`WeightingScheme` instance (passed through, which is how
    tuned ``BM25Scheme(k1=..., b=...)`` objects are supplied).
    """
    if spec is None:
        return Eq1Scheme()
    if isinstance(spec, str):
        validate_option("scheme", spec, SCHEME_CHOICES)
        name = resolve_auto(spec, auto=Eq1Scheme.name, off=TFScheme.name)
        return _SCHEME_CLASSES[name]()
    if isinstance(spec, WeightingScheme):
        return spec
    raise TypeError(f"cannot resolve weighting scheme from {spec!r}")


def scheme_from_dict(state: dict) -> WeightingScheme:
    """Rebuild a scheme exported by ``to_dict`` (snapshot loading).

    Raises :class:`UnknownSchemeError` for names this build does not
    implement — the snapshot layer maps that to a structured
    :class:`~repro.datasets.store.DatasetFormatError`.
    """
    name = dict(state).get("name", Eq1Scheme.name)
    if name == BM25Scheme.name:
        return BM25Scheme(
            k1=float(state.get("k1", 1.2)), b=float(state.get("b", 0.75))
        )
    cls = _SCHEME_CLASSES.get(name)
    if cls is None:
        raise UnknownSchemeError(name)
    return cls()


__all__ = [
    "IdfDriftTracker",
    "SpaceStats",
    "WeightingScheme",
    "Eq1Scheme",
    "BM25Scheme",
    "TFScheme",
    "SchemeSpec",
    "UnknownSchemeError",
    "resolve_scheme",
    "scheme_from_dict",
]
