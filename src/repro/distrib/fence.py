"""Epoch-fenced leadership: leases, zombie rejection, automatic failover.

PR 7 shipped replication with a *manual* ``promote()`` and an honest
gap in docs/SHARDING.md: nothing stopped a paused-and-resumed leader
(a **zombie**) from acknowledging writes a promoted replica never
sees — silent split-brain.  This module closes the gap with the two
classic pieces, plus the supervisor that drives them:

* :class:`LeaseStore` — a file-backed leader lease.  A ShardNode must
  hold a live lease to acknowledge writes; the lease file records the
  holder **and the epoch**, and acquiring with a *higher* epoch fences
  every lower one: a deposed leader's renew comes back
  :class:`~repro.resilience.journal.StaleEpochError`, which the HTTP
  face turns into ``409 stale_epoch`` and the router turns into
  failover.  The clock is injectable and every store operation crosses
  a named fault seam (``lease.acquire`` / ``lease.renew`` /
  ``lease.read``), so chaos schedules are deterministic.
* :class:`FailoverCoordinator` — watches the lease (or, storeless, the
  leader's health endpoint); after ``miss_threshold`` consecutive dead
  observations it picks the most-caught-up replica — highest
  ``(epoch, applied)`` from the replicas' health records — promotes it
  (which bumps the journal epoch, fsyncs the marker, and takes the
  lease at the new epoch), and rotates the router's failover list so
  the promoted node serves first.  Runs one :meth:`tick` at a time
  (tests drive it with a fake clock) or continuously under a
  :class:`~repro.resilience.supervisor.SupervisedWorker`
  (``repro failover``).

The epoch half of the fence lives in the journal
(:meth:`~repro.resilience.journal.DirectoryJournal.bump_epoch`) and in
``FormDirectory.apply_replicated`` — see docs/SHARDING.md for the full
protocol and the zombie-leader post-mortem walkthrough.
"""

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.resilience.faults import FaultError, inject
from repro.resilience.journal import StaleEpochError
from repro.resilience.stats import STATS
from repro.resilience.supervisor import SupervisedWorker

_LEASE_KIND = "repro-lease"

#: Default lease time-to-live (seconds).  Writes renew at half-life, so
#: a leader misses at most ``ttl`` of writes before self-demoting.
DEFAULT_LEASE_TTL = 10.0


class LeaseHeld(Exception):
    """Another node holds a live lease at an epoch at least as high —
    the caller must wait for expiry (or present a higher epoch)."""

    def __init__(self, holder: str, epoch: int, remaining: float) -> None:
        super().__init__(
            f"lease held by {holder!r} (epoch {epoch}, "
            f"{remaining:.3f}s remaining)"
        )
        self.holder = holder
        self.epoch = epoch
        self.remaining = remaining


@dataclass(frozen=True)
class Lease:
    """One granted lease: who leads, at which epoch, until when."""

    holder: str
    epoch: int
    expires_at: float
    ttl: float

    def remaining(self, now: float) -> float:
        return self.expires_at - now

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class LeaseStore:
    """A file-backed leader lease with epoch fencing.

    One JSON file per logical shard (shared storage — the same model
    the promotion drain already assumes for the journal).  Writes are
    atomic (tmp + rename); reads tolerate a torn/garbage file by
    treating it as "no lease".

    Grant rules (``acquire``):

    * a **higher epoch always wins** — that is the fence: promotion
      acquires at ``epoch + 1`` and instantly invalidates the deposed
      leader's lease, expired or not;
    * at the *same* epoch, the current holder may re-acquire/renew any
      time, and anyone may take an **expired** lease;
    * a **lower** epoch is refused with :class:`StaleEpochError` — a
      zombie can never lease its way back in.

    Parameters
    ----------
    path:
        The lease file.
    clock:
        Injectable time source (seconds).  Defaults to ``time.time`` —
        wall clock, because the file is shared *between processes*;
        tests inject a fake for deterministic pause/resume schedules.
    """

    def __init__(
        self,
        path: Union[str, Path],
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(path)
        self.clock = clock
        self._lock = threading.Lock()

    # -- plumbing -----------------------------------------------------

    def _load(self) -> Optional[Lease]:
        try:
            payload = json.loads(self.path.read_text("utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("kind") != _LEASE_KIND:
            return None
        try:
            return Lease(
                holder=str(payload["holder"]),
                epoch=int(payload["epoch"]),
                expires_at=float(payload["expires_at"]),
                ttl=float(payload.get("ttl", 0.0)),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _store(self, lease: Lease) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(
            json.dumps(
                {
                    "kind": _LEASE_KIND,
                    "holder": lease.holder,
                    "epoch": lease.epoch,
                    "expires_at": lease.expires_at,
                    "ttl": lease.ttl,
                },
                sort_keys=True,
            ),
            "utf-8",
        )
        tmp.replace(self.path)

    # -- operations ---------------------------------------------------

    def read(self) -> Optional[Lease]:
        """The current lease record (may be expired), or ``None``.
        Crosses the ``lease.read`` seam."""
        inject("lease.read")
        with self._lock:
            return self._load()

    def acquire(self, holder: str, epoch: int, ttl: float) -> Lease:
        """Take the lease at ``epoch`` for ``ttl`` seconds.

        Raises :class:`StaleEpochError` when the stored epoch is
        higher, :class:`LeaseHeld` when another holder's same-epoch
        lease is still live.  Crosses the ``lease.acquire`` seam.
        """
        inject("lease.acquire")
        with self._lock:
            return self._grant(holder, int(epoch), float(ttl))

    def renew(self, holder: str, epoch: int, ttl: float) -> Lease:
        """Extend the holder's lease (same grant rules — a renew from a
        deposed epoch fails exactly like an acquire would).  Crosses
        the ``lease.renew`` seam."""
        inject("lease.renew")
        with self._lock:
            return self._grant(holder, int(epoch), float(ttl))

    def _grant(self, holder: str, epoch: int, ttl: float) -> Lease:
        now = self.clock()
        current = self._load()
        if current is not None:
            if epoch < current.epoch:
                raise StaleEpochError(
                    current.epoch, epoch,
                    f"lease held by {current.holder!r}",
                )
            if (
                epoch == current.epoch
                and current.holder != holder
                and not current.expired(now)
            ):
                raise LeaseHeld(
                    current.holder, current.epoch, current.remaining(now)
                )
        lease = Lease(
            holder=holder, epoch=epoch, expires_at=now + ttl, ttl=ttl
        )
        self._store(lease)
        return lease

    def release(self, holder: str) -> bool:
        """Drop the lease if ``holder`` owns it (clean shutdown)."""
        with self._lock:
            current = self._load()
            if current is None or current.holder != holder:
                return False
            try:
                os.unlink(self.path)
            except OSError:
                return False
            return True


class FailoverCoordinator:
    """Detect a dead leader, promote the best replica, repoint the
    router — deterministically.

    Works over *clients* (anything with ``healthz()`` and, for
    replicas, ``promote(leader_journal)``), so the same coordinator
    drives in-process chaos tests (``LocalShardClient``) and real
    deployments (``HttpShardClient`` + the replica's ``POST /promote``
    endpoint — ``repro failover``).

    Detection: with a ``lease_store``, the leader is dead when its
    lease is missing or expired (missed renewals); without one, when
    its ``healthz()`` probe fails.  Either way a single observation is
    never enough — ``miss_threshold`` consecutive dead ticks must
    accumulate, so a flaky probe (or an injected ``lease.read`` fault)
    cannot depose a live leader.

    Promotion: replicas are ranked by their health record's
    ``(epoch, applied)`` — most-caught-up wins; unreachable replicas
    are skipped.  ``promote()`` on the winner drains the shared
    journal, bumps the epoch (fsynced marker), and takes the lease at
    the new epoch.  If a ``router`` is attached, its failover list for
    ``shard_index`` is rotated so the promoted endpoint serves first.
    """

    def __init__(
        self,
        leader,
        replicas: Sequence,
        leader_journal: Union[str, Path],
        lease_store: Optional[LeaseStore] = None,
        router=None,
        shard_index: int = 0,
        miss_threshold: int = 3,
        clock: Optional[Callable[[], float]] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        name: str = "failover",
    ) -> None:
        if not replicas:
            raise ValueError("coordinator needs at least one replica")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.leader = leader
        self.replicas = list(replicas)
        self.leader_journal = leader_journal
        self.lease_store = lease_store
        self.router = router
        self.shard_index = shard_index
        self.miss_threshold = miss_threshold
        self.clock = clock or (
            lease_store.clock if lease_store is not None else time.time
        )
        self.lease_ttl = float(lease_ttl)
        self.name = name
        self.misses = 0
        self.ticks = 0
        self.completed = False
        self.last_event: Optional[Dict[str, object]] = None
        self._first_miss_at: Optional[float] = None
        self._worker: Optional[SupervisedWorker] = None
        self._stop = threading.Event()

    # -- detection ----------------------------------------------------

    def _leader_dead(self) -> bool:
        if self.lease_store is not None:
            try:
                lease = self.lease_store.read()
            except FaultError:
                # An unreadable lease is indistinguishable from a dead
                # leader for this tick; the miss threshold absorbs it.
                return True
            return lease is None or lease.expired(self.clock())
        try:
            self.leader.healthz()
            return False
        except Exception:
            return True

    # -- the loop body -------------------------------------------------

    def tick(self) -> Dict[str, object]:
        """One detection round.  Returns an event record; when the
        round completed a failover it carries ``"action": "promoted"``
        plus the timings the bench records (detect → promote)."""
        self.ticks += 1
        if self.completed:
            return {"action": "done", "event": self.last_event}
        if not self._leader_dead():
            self.misses = 0
            self._first_miss_at = None
            return {"action": "alive", "misses": 0}
        self.misses += 1
        if self._first_miss_at is None:
            self._first_miss_at = self.clock()
        if self.misses < self.miss_threshold:
            return {"action": "suspect", "misses": self.misses}
        return self._fail_over()

    def _rank(self) -> List:
        """Replicas by ``(epoch, applied)`` descending, unreachable
        ones dropped."""
        ranked = []
        for replica in self.replicas:
            try:
                record = replica.healthz()
            except Exception:
                continue
            ranked.append(
                (
                    int(record.get("epoch", 0)),
                    int(record.get("applied", 0)),
                    replica,
                )
            )
        ranked.sort(key=lambda entry: (-entry[0], -entry[1]))
        return [entry[2] for entry in ranked]

    def _fail_over(self) -> Dict[str, object]:
        detected_at = self.clock()
        candidates = self._rank()
        if not candidates:
            return {"action": "no_candidate", "misses": self.misses}
        winner = candidates[0]
        promote_started = self.clock()
        promote_kwargs = {}
        if self.lease_store is not None:
            # The promoted node takes the lease at its bumped epoch —
            # this is what actually fences the old leader.
            promote_kwargs["lease_store"] = self.lease_store
            promote_kwargs["lease_ttl"] = self.lease_ttl
        reply = winner.promote(str(self.leader_journal), **promote_kwargs)
        promoted_at = self.clock()
        if self.router is not None:
            others = [r for r in self.replicas if r is not winner]
            self.router.set_endpoints(self.shard_index, [winner] + others)
        self.completed = True
        STATS.inc("failovers")
        event: Dict[str, object] = {
            "action": "promoted",
            "shard": self.shard_index,
            "winner": getattr(winner, "name", "?"),
            "epoch": int(reply.get("epoch", 0)) if isinstance(reply, dict)
            else 0,
            "misses": self.misses,
            "detect_seconds": (
                detected_at - self._first_miss_at
                if self._first_miss_at is not None else 0.0
            ),
            "promote_seconds": promoted_at - promote_started,
        }
        self.last_event = event
        return event

    # -- supervised operation -----------------------------------------

    def run(self, interval: float = 1.0) -> None:
        """Tick until a failover completes or :meth:`stop` is called
        (the ``repro failover`` loop body)."""
        while not self._stop.is_set():
            event = self.tick()
            if event.get("action") in ("promoted", "done"):
                return
            self._stop.wait(interval)

    def start(self, interval: float = 1.0) -> SupervisedWorker:
        """Run the detection loop on a supervised daemon thread."""
        if self._worker is None:
            self._worker = SupervisedWorker(
                lambda: self.run(interval),
                name=f"repro-{self.name}",
                backoff_base=min(0.1, interval),
            )
            self._worker.start()
        return self._worker

    def stop(self) -> None:
        self._stop.set()
        if self._worker is not None:
            self._worker.stop()
            self._worker = None


__all__ = [
    "DEFAULT_LEASE_TTL",
    "FailoverCoordinator",
    "Lease",
    "LeaseHeld",
    "LeaseStore",
    "StaleEpochError",
]
