"""Read replicas — journal-shipping followers that can take over.

A :class:`ReplicaNode` follows one shard ("the leader") through three
states:

1. **bootstrap** — fetch the leader's ``/replication/snapshot``
   (state + the journal position it includes), materialize a
   :class:`~repro.service.directory.FormDirectory` from it.  The
   replica's directory has **no journal** and **no auto-recluster**:
   every mutation it applies came out of the leader's log, including
   the leader's drift repairs, so re-deciding either locally would
   diverge the copy.
2. **tail** — poll the leader's manifest, fetch sealed segments past
   the applied position, and replay their records through
   :meth:`FormDirectory.apply_replicated` (the same live code paths as
   crash recovery, so the copy is bit-identical, not approximate).
   A replica that falls so far behind that the leader folded the
   segments it needs (``SegmentGone``) re-bootstraps from a fresh
   snapshot instead of replaying a gap.
3. **promote** — on leader death, drain the leader's *on-disk* journal
   from the applied position (acknowledged = fsynced there, so this is
   exactly the set of acked writes the tail hadn't shipped yet), then
   adopt that journal for new writes.  Zero acknowledged writes lost —
   the failover soak in ``tests/test_distrib_failover.py`` asserts it
   under seeded chaos.

Health uses the existing grading: ``recovering`` until bootstrapped
(and again while re-bootstrapping or lagging past ``max_lag_records``),
then the directory's own ok/degraded states.
"""

from pathlib import Path
from typing import Dict, Optional, Union

from repro.distrib.client import SegmentGone, ShardUnavailable
from repro.distrib.shard import DEFAULT_SEGMENT_RECORDS, ShardNode
from repro.resilience.journal import decode_records, open_journal
from repro.resilience.stats import STATS
from repro.service.directory import FormDirectory
from repro.service.metrics import MetricsRegistry
from repro.service.snapshot import Snapshot


class ReplicaNode:
    """A tailing copy of one shard, promotable to leader.

    Parameters
    ----------
    leader:
        A shard client (:class:`~repro.distrib.client.LocalShardClient`
        or :class:`~repro.distrib.client.HttpShardClient`) for the node
        being followed.
    max_lag_records:
        Above this many unapplied records the replica grades itself
        ``recovering`` (routers stop reading from it until it catches
        up).
    """

    def __init__(
        self,
        leader,
        name: str = "replica",
        max_lag_records: int = DEFAULT_SEGMENT_RECORDS * 4,
        metrics: Optional[MetricsRegistry] = None,
        **directory_kwargs,
    ) -> None:
        self.leader = leader
        self.name = name
        self.max_lag_records = max_lag_records
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._directory_kwargs = directory_kwargs
        self.node: Optional[ShardNode] = None
        self.applied = 0          # global journal position applied through
        self.last_lag = 0         # records behind at the last poll
        self.bootstraps = 0
        self.segments_applied = 0
        self.promoted = False
        self._instrument()

    @property
    def directory(self) -> Optional[FormDirectory]:
        return self.node.directory if self.node is not None else None

    def _instrument(self) -> None:
        m = self.metrics
        m.gauge(
            "replication_applied_records",
            "Global journal position this replica has applied through",
            replica=self.name,
        ).set_function(lambda: self.applied)
        m.gauge(
            "replication_lag_records",
            "Records behind the leader at the last poll",
            replica=self.name,
        ).set_function(lambda: self.last_lag)
        m.gauge(
            "replication_bootstraps",
            "Snapshot bootstraps performed (1 + re-bootstraps after gaps)",
            replica=self.name,
        ).set_function(lambda: self.bootstraps)
        m.gauge(
            "promotions_total", "Replica promotions (process-wide)"
        ).set_function(lambda: STATS.get("promotions"))

    # ----------------------------------------------------------------
    # Bootstrap.
    # ----------------------------------------------------------------

    def bootstrap(self) -> int:
        """Materialize (or re-materialize) from the leader's snapshot.
        Returns the journal position the snapshot includes."""
        payload = self.leader.replication_snapshot()
        snapshot = Snapshot.from_payload(
            payload, source=f"{self.name}<-{getattr(self.leader, 'name', '?')}"
        )
        position = int(snapshot.meta.get("journal_position", 0))
        old = self.node
        directory = FormDirectory.from_snapshot(
            snapshot,
            journal=None,
            auto_recluster=False,
            metrics=self.metrics,
            **self._directory_kwargs,
        )
        self.node = ShardNode.from_directory(
            directory, snapshot.meta, name=self.name
        )
        self.applied = position
        self.bootstraps += 1
        if old is not None:
            old.close()
        return position

    # ----------------------------------------------------------------
    # Tailing.
    # ----------------------------------------------------------------

    def poll(self) -> Dict[str, int]:
        """One catch-up round: fetch and apply every sealed segment past
        the applied position.  Returns ``{"applied", "lag", "segments"}``.

        Leader unreachable → :class:`ShardUnavailable` propagates (the
        caller decides whether that means retry or promote).
        """
        if self.node is None:
            self.bootstrap()
        manifest = self.leader.replication_manifest()
        fetched = 0
        for segment in manifest.get("sealed", []):
            base = int(segment["base_record"])
            end = base + int(segment["records"])
            if end <= self.applied:
                continue
            if base > self.applied:
                # The records between applied and base were folded away
                # before we shipped them — replaying from here would
                # skip mutations.  Start over from a fresh snapshot.
                self.bootstrap()
                return self.poll()
            try:
                data = self.leader.replication_segment(int(segment["seq"]))
            except SegmentGone:
                self.bootstrap()
                return self.poll()
            records, _ = decode_records(data)
            for record in records[self.applied - base:]:
                self.node.directory.apply_replicated(record)
            self.applied = end
            fetched += 1
            self.segments_applied += 1
        next_record = int(manifest.get("next_record", self.applied))
        if next_record < self.applied:
            # The leader's log restarted behind us (e.g. a full
            # truncate): re-sync from its current snapshot.
            self.bootstrap()
            next_record = self.applied
        self.last_lag = next_record - self.applied
        return {
            "applied": self.applied,
            "lag": self.last_lag,
            "segments": fetched,
        }

    def catch_up(self, max_polls: int = 100) -> int:
        """Poll until only the (unsealed) active tail remains or the
        sealed feed stops advancing.  Returns the remaining lag."""
        for _ in range(max_polls):
            report = self.poll()
            if report["segments"] == 0:
                break
        return self.last_lag

    # ----------------------------------------------------------------
    # Promotion.
    # ----------------------------------------------------------------

    def promote(
        self,
        leader_journal: Union[str, Path],
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
    ) -> ShardNode:
        """Take over from a dead leader.

        ``leader_journal`` is the dead leader's on-disk journal (the
        shared-storage failover model: the log survives the process).
        Opening it runs the normal recovery — sealed segments plus the
        active tail, torn final record truncated — and every record at
        or past the replica's applied position is drained through the
        live apply paths *before* the journal is adopted for new writes
        (adopting first would re-append the drained records).

        An acknowledged write is by definition fsynced into this log,
        so after the drain the promoted node's state contains every
        acknowledged write: none lost.
        """
        if self.node is None:
            raise RuntimeError("replica must bootstrap before promotion")
        if self.promoted:
            raise RuntimeError("replica already promoted")
        journal = open_journal(
            leader_journal, max_segment_records=segment_records
        )
        drained = 0
        for position, record in enumerate(
            journal.replay(), start=journal.base_record
        ):
            if position >= self.applied:
                self.node.directory.apply_replicated(record)
                drained += 1
        self.applied = journal.next_record
        self.last_lag = 0
        self.node.directory.attach_journal(journal)
        # The leader's drift repairs arrived through its log; as leader,
        # this node decides (and journals) its own from here on.
        self.node.directory.auto_recluster = True
        self.promoted = True
        self.drained_on_promotion = drained
        STATS.inc("promotions")
        return self.node

    # ----------------------------------------------------------------
    # Serving (reads while tailing; everything once promoted).
    # ----------------------------------------------------------------

    def _serving_node(self) -> ShardNode:
        if self.node is None:
            raise ShardUnavailable(self.name, "replica not bootstrapped yet")
        return self.node

    def search(self, query: str, n: int = 3):
        return self._serving_node().search(query, n=n)

    def search_pages(self, query: str, n: int = 3):
        return self._serving_node().search_pages(query, n=n)

    def classify(self, raw):
        return self._serving_node().classify(raw)

    def health_state(self) -> str:
        """``recovering`` until bootstrapped / while lagging past the
        threshold; otherwise the underlying directory's grade."""
        if self.node is None:
            return "recovering"
        if not self.promoted and self.last_lag > self.max_lag_records:
            return "recovering"
        return self.node.directory.health_state()

    def healthz(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "status": self.health_state(),
            "name": self.name,
            "role": "leader" if self.promoted else "replica",
            "applied": self.applied,
            "lag": self.last_lag,
            "bootstraps": self.bootstraps,
        }
        if self.node is not None:
            record["shard"] = self.node.shard_index
            record["generation"] = self.node.directory.generation
        return record

    def close(self) -> None:
        if self.node is not None:
            self.node.close()

    def __enter__(self) -> "ReplicaNode":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["ReplicaNode"]
