"""Read replicas — journal-shipping followers that can take over.

A :class:`ReplicaNode` follows one shard ("the leader") through three
states:

1. **bootstrap** — fetch the leader's ``/replication/snapshot``
   (state + the journal position it includes), materialize a
   :class:`~repro.service.directory.FormDirectory` from it.  The
   replica's directory has **no journal** and **no auto-recluster**:
   every mutation it applies came out of the leader's log, including
   the leader's drift repairs, so re-deciding either locally would
   diverge the copy.
2. **tail** — poll the leader's manifest, fetch sealed segments past
   the applied position, and replay their records through
   :meth:`FormDirectory.apply_replicated` (the same live code paths as
   crash recovery, so the copy is bit-identical, not approximate).
   A replica that falls so far behind that the leader folded the
   segments it needs (``SegmentGone``) re-bootstraps from a fresh
   snapshot instead of replaying a gap.
3. **promote** — on leader death, drain the leader's *on-disk* journal
   from the applied position (acknowledged = fsynced there, so this is
   exactly the set of acked writes the tail hadn't shipped yet), then
   adopt that journal for new writes.  Zero acknowledged writes lost —
   the failover soak in ``tests/test_distrib_failover.py`` asserts it
   under seeded chaos.

Health uses the existing grading: ``recovering`` until bootstrapped
(and again while re-bootstrapping or lagging past ``max_lag_records``),
then the directory's own ok/degraded states.
"""

import threading
from pathlib import Path
from typing import Dict, Optional, Union

from repro.distrib.client import SegmentGone, ShardUnavailable
from repro.distrib.fence import DEFAULT_LEASE_TTL, LeaseStore
from repro.distrib.shard import DEFAULT_SEGMENT_RECORDS, ShardNode
from repro.resilience.journal import (
    StaleEpochError,
    decode_records,
    open_journal,
)
from repro.resilience.stats import STATS
from repro.service.directory import FormDirectory
from repro.service.metrics import MetricsRegistry
from repro.service.snapshot import Snapshot


class _ReBootstrap(Exception):
    """Internal: the tail hit a gap; restart from a fresh snapshot."""


class ReplicaNode:
    """A tailing copy of one shard, promotable to leader.

    Parameters
    ----------
    leader:
        A shard client (:class:`~repro.distrib.client.LocalShardClient`
        or :class:`~repro.distrib.client.HttpShardClient`) for the node
        being followed.
    max_lag_records:
        Above this many unapplied records the replica grades itself
        ``recovering`` (routers stop reading from it until it catches
        up).
    """

    def __init__(
        self,
        leader,
        name: str = "replica",
        max_lag_records: int = DEFAULT_SEGMENT_RECORDS * 4,
        metrics: Optional[MetricsRegistry] = None,
        **directory_kwargs,
    ) -> None:
        self.leader = leader
        self.name = name
        self.max_lag_records = max_lag_records
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._directory_kwargs = directory_kwargs
        self.node: Optional[ShardNode] = None
        self.applied = 0          # global journal position applied through
        self.last_lag = 0         # records behind at the last poll
        self.bootstraps = 0
        self.segments_applied = 0
        self.promoted = False
        self._promote_lock = threading.Lock()
        self._instrument()

    @property
    def directory(self) -> Optional[FormDirectory]:
        return self.node.directory if self.node is not None else None

    @property
    def epoch(self) -> int:
        """Highest fencing epoch this replica has observed (from the
        bootstrap snapshot's meta or applied epoch markers)."""
        directory = self.directory
        return directory.epoch if directory is not None else 0

    def _instrument(self) -> None:
        m = self.metrics
        m.gauge(
            "replication_applied_records",
            "Global journal position this replica has applied through",
            replica=self.name,
        ).set_function(lambda: self.applied)
        m.gauge(
            "replication_lag_records",
            "Records behind the leader at the last poll",
            replica=self.name,
        ).set_function(lambda: self.last_lag)
        m.gauge(
            "replication_bootstraps",
            "Snapshot bootstraps performed (1 + re-bootstraps after gaps)",
            replica=self.name,
        ).set_function(lambda: self.bootstraps)
        m.gauge(
            "promotions_total", "Replica promotions (process-wide)"
        ).set_function(lambda: STATS.get("promotions"))

    # ----------------------------------------------------------------
    # Bootstrap.
    # ----------------------------------------------------------------

    def bootstrap(self) -> int:
        """Materialize (or re-materialize) from the leader's snapshot.
        Returns the journal position the snapshot includes.

        Epoch check first: a snapshot stamped *below* the epoch this
        replica has already observed came from a deposed leader (a
        zombie still answering its bootstrap endpoint) — re-seeding
        from it would silently roll the copy back behind the fence, so
        it is refused with :class:`StaleEpochError` instead.
        """
        payload = self.leader.replication_snapshot()
        snapshot = Snapshot.from_payload(
            payload, source=f"{self.name}<-{getattr(self.leader, 'name', '?')}"
        )
        snapshot_epoch = int(snapshot.meta.get("epoch", 0))
        if snapshot_epoch < self.epoch:
            raise StaleEpochError(
                self.epoch, snapshot_epoch,
                "bootstrap snapshot from a deposed leader",
            )
        position = int(snapshot.meta.get("journal_position", 0))
        old = self.node
        directory = FormDirectory.from_snapshot(
            snapshot,
            journal=None,
            auto_recluster=False,
            metrics=self.metrics,
            **self._directory_kwargs,
        )
        if snapshot_epoch:
            # Seed the epoch floor through the public apply path (the
            # same marker a journal bump would have shipped).
            directory.apply_replicated({"op": "epoch", "epoch": snapshot_epoch})
        self.node = ShardNode.from_directory(
            directory, snapshot.meta, name=self.name
        )
        self.applied = position
        self.bootstraps += 1
        if old is not None:
            old.close()
        return position

    # ----------------------------------------------------------------
    # Tailing.
    # ----------------------------------------------------------------

    #: Re-bootstraps one :meth:`poll` may chain before giving up.  A
    #: healthy leader converges in one (gap → snapshot → tail); the
    #: bound keeps a leader that folds segments faster than we can
    #: bootstrap from looping forever.
    MAX_REBOOTSTRAPS = 3

    def poll(self) -> Dict[str, int]:
        """One catch-up round: fetch and apply every sealed segment past
        the applied position.  Returns ``{"applied", "lag", "segments"}``.

        Leader unreachable → :class:`ShardUnavailable` propagates (the
        caller decides whether that means retry or promote).  A leader
        whose manifest carries an epoch *below* what this replica has
        already observed is a zombie — :class:`StaleEpochError`
        propagates and the tail loop should re-resolve its leader.

        Gaps (segments folded away before they shipped, or a log that
        restarted behind us) trigger a re-bootstrap and another
        attempt, bounded by :data:`MAX_REBOOTSTRAPS` — an explicit loop
        rather than recursion, so a pathological leader cannot blow the
        stack or spin unbounded.
        """
        for _ in range(self.MAX_REBOOTSTRAPS + 1):
            if self.node is None:
                self.bootstrap()
            manifest = self.leader.replication_manifest()
            leader_epoch = int(manifest.get("epoch", 0))
            if leader_epoch < self.epoch:
                raise StaleEpochError(
                    self.epoch, leader_epoch,
                    "tailing refused: leader manifest behind this replica",
                )
            try:
                return self._apply_manifest(manifest)
            except _ReBootstrap:
                self.bootstrap()
        raise ShardUnavailable(
            self.name,
            f"tail did not converge after {self.MAX_REBOOTSTRAPS} "
            "re-bootstraps",
        )

    def _apply_manifest(self, manifest: Dict[str, object]) -> Dict[str, int]:
        fetched = 0
        for segment in manifest.get("sealed", []):
            base = int(segment["base_record"])
            end = base + int(segment["records"])
            if end <= self.applied:
                continue
            if base > self.applied:
                # The records between applied and base were folded away
                # before we shipped them — replaying from here would
                # skip mutations.  Start over from a fresh snapshot.
                raise _ReBootstrap()
            try:
                data = self.leader.replication_segment(int(segment["seq"]))
            except SegmentGone:
                raise _ReBootstrap()
            records, _ = decode_records(data)
            for record in records[self.applied - base:]:
                try:
                    self.node.directory.apply_replicated(record)
                except StaleEpochError:
                    # A zombie write that leaked into the shared log
                    # before the fence went up; position still advances
                    # (global record numbering counts it), state skips
                    # it — same rule as journal replay.
                    pass
            self.applied = end
            fetched += 1
            self.segments_applied += 1
        next_record = int(manifest.get("next_record", self.applied))
        if next_record < self.applied:
            # The leader's log restarted behind us (e.g. a full
            # truncate): re-sync from its current snapshot.
            raise _ReBootstrap()
        self.last_lag = next_record - self.applied
        return {
            "applied": self.applied,
            "lag": self.last_lag,
            "segments": fetched,
        }

    def catch_up(self, max_polls: int = 100) -> int:
        """Poll until only the (unsealed) active tail remains or the
        sealed feed stops advancing.  Returns the remaining lag."""
        for _ in range(max_polls):
            report = self.poll()
            if report["segments"] == 0:
                break
        return self.last_lag

    # ----------------------------------------------------------------
    # Promotion.
    # ----------------------------------------------------------------

    def promote(
        self,
        leader_journal: Union[str, Path],
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        lease_store: Union[LeaseStore, str, Path, None] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> ShardNode:
        """Take over from a dead leader.

        ``leader_journal`` is the dead leader's on-disk journal (the
        shared-storage failover model: the log survives the process).
        Opening it runs the normal recovery — sealed segments plus the
        active tail, torn final record truncated — and every record at
        or past the replica's applied position is drained through the
        live apply paths *before* the journal is adopted for new writes
        (adopting first would re-append the drained records).

        An acknowledged write is by definition fsynced into this log,
        so after the drain the promoted node's state contains every
        acknowledged write: none lost.

        Fencing order (PR 10) — after the drain, *before* any new
        write can be acknowledged:

        1. ``bump_epoch()`` — a fsynced epoch marker lands in the
           journal, so the new epoch survives any crash and every
           apply path now drops lower-epoch (zombie) records;
        2. the journal is adopted for new writes;
        3. with a ``lease_store``, the lease is acquired **at the new
           epoch** — which fences the deposed leader's lease whether or
           not its TTL has run out.

        Promotion is exclusive: a second call — concurrent or later —
        fails with ``RuntimeError`` and changes nothing (the chaos
        suite pins this).
        """
        if not self._promote_lock.acquire(blocking=False):
            raise RuntimeError("promotion already in progress")
        try:
            if self.node is None:
                raise RuntimeError("replica must bootstrap before promotion")
            if self.promoted:
                raise RuntimeError("replica already promoted")
            journal = open_journal(
                leader_journal, max_segment_records=segment_records
            )
            drained = 0
            for position, record in enumerate(
                journal.replay(), start=journal.base_record
            ):
                if position >= self.applied:
                    try:
                        self.node.directory.apply_replicated(record)
                    except StaleEpochError:
                        # Zombie bytes in the tail (below an epoch
                        # marker we already applied): counted for
                        # position, never applied.
                        pass
                    else:
                        drained += 1
            new_epoch = journal.bump_epoch()
            # next_record counts the marker just written, so the
            # promoted node's applied position includes it.
            self.applied = journal.next_record
            self.last_lag = 0
            self.node.directory.attach_journal(journal)
            if lease_store is not None:
                if isinstance(lease_store, (str, Path)):
                    lease_store = LeaseStore(lease_store)
                self.node._init_fencing(lease_store, lease_ttl)
                # Higher epoch overrides the dead leader's lease even
                # if its TTL hasn't run out — that IS the fence.
                self.node._lease = lease_store.acquire(
                    self.name, new_epoch, lease_ttl
                )
            # The leader's drift repairs arrived through its log; as
            # leader, this node decides (and journals) its own now.
            self.node.directory.auto_recluster = True
            self.promoted = True
            self.drained_on_promotion = drained
            STATS.inc("promotions")
            return self.node
        finally:
            self._promote_lock.release()

    # ----------------------------------------------------------------
    # Serving (reads while tailing; everything once promoted).
    # ----------------------------------------------------------------

    def _serving_node(self) -> ShardNode:
        if self.node is None:
            raise ShardUnavailable(self.name, "replica not bootstrapped yet")
        return self.node

    def search(self, query: str, n: int = 3):
        return self._serving_node().search(query, n=n)

    def search_pages(self, query: str, n: int = 3):
        return self._serving_node().search_pages(query, n=n)

    def classify(self, raw):
        return self._serving_node().classify(raw)

    def _writable_node(self) -> ShardNode:
        """Writes stay refused until promotion (mutating a tailing copy
        would fork it from the leader); afterwards they serve normally —
        the coordinator repoints routers at this same client object."""
        node = self._serving_node()
        if not self.promoted:
            raise ShardUnavailable(
                self.name, "replica is read-only until promoted"
            )
        return node

    def add(self, raw):
        return self._writable_node().add(raw)

    def remove(self, url: str) -> bool:
        return self._writable_node().remove(url)

    def health_state(self) -> str:
        """``recovering`` until bootstrapped / while lagging past the
        threshold; otherwise the underlying directory's grade."""
        if self.node is None:
            return "recovering"
        if not self.promoted and self.last_lag > self.max_lag_records:
            return "recovering"
        return self.node.directory.health_state()

    def healthz(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "status": self.health_state(),
            "name": self.name,
            "role": "leader" if self.promoted else "replica",
            "applied": self.applied,
            "lag": self.last_lag,
            "bootstraps": self.bootstraps,
            "epoch": self.epoch,
        }
        if self.node is not None:
            record["shard"] = self.node.shard_index
            record["generation"] = self.node.directory.generation
        return record

    def close(self) -> None:
        if self.node is not None:
            self.node.close()

    def __enter__(self) -> "ReplicaNode":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["ReplicaNode"]
