"""repro.distrib — the sharded, replicated form directory.

The step from "one box" to the millions-of-users north star
(ROADMAP item 1): partition the directory across shard processes,
replicate each shard by shipping sealed write-ahead-journal segments,
and put a scatter-gather router in front.

* :mod:`~repro.distrib.placement` — stable partition assignment
  (cluster-routed for bit-identical parity, hash-routed for balance)
  and :func:`split_snapshot`;
* :mod:`~repro.distrib.shard` — a partition node: ``FormDirectory`` +
  global-id remapping + the journal-segment replication feed;
* :mod:`~repro.distrib.replica` — snapshot-bootstrap, segment-tailing
  read replicas that promote on leader death with zero acknowledged
  writes lost;
* :mod:`~repro.distrib.router` — deterministic k-way merged fan-out
  with per-shard timeouts and partial-result degradation;
* :mod:`~repro.distrib.fence` — epoch-fenced leadership: the
  file-backed leader :class:`~repro.distrib.fence.LeaseStore` and the
  :class:`~repro.distrib.fence.FailoverCoordinator` that detects a
  dead leader, promotes the most-caught-up replica, and repoints the
  router (``repro failover``);
* :mod:`~repro.distrib.client` / :mod:`~repro.distrib.http` — the
  in-process and HTTP transports (``repro shard`` / ``repro replica``
  / ``repro router``).

See docs/SHARDING.md for topology, protocol, and the ops runbook.
"""

from repro.distrib.client import (
    HttpShardClient,
    LocalShardClient,
    SegmentGone,
    ShardUnavailable,
)
from repro.distrib.fence import (
    DEFAULT_LEASE_TTL,
    FailoverCoordinator,
    Lease,
    LeaseHeld,
    LeaseStore,
    StaleEpochError,
)
from repro.distrib.http import (
    ReplicaApp,
    ReplicaHTTPServer,
    RouterApp,
    RouterHTTPServer,
    ShardApp,
    ShardHTTPServer,
    serve_replica,
    serve_router,
    serve_shard,
)
from repro.distrib.placement import (
    PLACEMENT_CHOICES,
    shard_for_cluster,
    shard_for_url,
    split_snapshot,
    validate_placement,
)
from repro.distrib.replica import ReplicaNode
from repro.distrib.router import AllShardsUnavailable, DirectoryRouter
from repro.distrib.shard import DEFAULT_SEGMENT_RECORDS, ShardNode

__all__ = [
    "AllShardsUnavailable",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_SEGMENT_RECORDS",
    "DirectoryRouter",
    "FailoverCoordinator",
    "HttpShardClient",
    "Lease",
    "LeaseHeld",
    "LeaseStore",
    "LocalShardClient",
    "PLACEMENT_CHOICES",
    "StaleEpochError",
    "ReplicaApp",
    "ReplicaHTTPServer",
    "ReplicaNode",
    "RouterApp",
    "RouterHTTPServer",
    "SegmentGone",
    "ShardApp",
    "ShardHTTPServer",
    "ShardNode",
    "ShardUnavailable",
    "serve_replica",
    "serve_router",
    "serve_shard",
    "shard_for_cluster",
    "shard_for_url",
    "split_snapshot",
    "validate_placement",
]
