"""HTTP faces of the distributed directory — shard, replica, router.

All three reuse the single-node plumbing
(:class:`~repro.service.http.DirectoryRequestHandler` — bounded bodies,
socket timeouts, structured errors, request metrics) and swap the route
tables:

* **shard** (:func:`serve_shard`) — the full single-node API with
  global cluster ids, plus the replication feed
  (``/replication/manifest``, ``/replication/segment?seq=N`` as raw
  crc-framed bytes, ``/replication/snapshot``);
* **replica** (:func:`serve_replica`) — reads only (``/search``,
  ``/classify``, ``/healthz``, ``/metrics``) until promoted; write
  endpoints answer 403 so a misconfigured client cannot fork the copy;
* **router** (:func:`serve_router`) — the public front: fan-out
  ``/search`` / ``/classify`` / ``/add`` / ``/remove`` with partial
  responses, aggregated ``/healthz``, and 503 + ``Retry-After`` when no
  shard answers.
"""

from http.server import ThreadingHTTPServer
from typing import Tuple

from repro.distrib.replica import ReplicaNode
from repro.distrib.router import (
    ALL_SHARDS_RETRY_AFTER,
    AllShardsUnavailable,
    DirectoryRouter,
)
from repro.distrib.shard import ShardNode
from repro.resilience.journal import JournalError
from repro.service.http import (
    DEFAULT_MAX_REQUEST_BYTES,
    DEFAULT_REQUEST_TIMEOUT,
    ApiError,
    DirectoryHTTPServer,
    DirectoryRequestHandler,
    _raw_page_from_body,
)


class ShardRequestHandler(DirectoryRequestHandler):
    """Single-node API in global ids + the replication feed."""

    server_version = "repro-shard/1.0"

    @property
    def shard(self) -> ShardNode:
        return self.server.shard

    def get_routes(self) -> dict:
        routes = super().get_routes()
        routes.update(
            {
                "/replication/manifest": self._get_replication_manifest,
                "/replication/segment": self._get_replication_segment,
                "/replication/snapshot": self._get_replication_snapshot,
            }
        )
        return routes

    # -- reads in global ids ------------------------------------------

    def _get_search(self, query: dict) -> int:
        terms = query.get("q", [""])[0]
        if not terms.strip():
            raise ApiError(400, "bad_request", "missing query parameter 'q'")
        n = self._int_param(query, "n", 3, low=1, high=100)
        scope = query.get("scope", ["clusters"])[0]
        if scope == "clusters":
            hits = self.shard.search(terms, n=n)
        elif scope == "pages":
            hits = self.shard.search_pages(terms, n=n)
        else:
            raise ApiError(
                400, "bad_request", "'scope' must be 'clusters' or 'pages'"
            )
        self._send_json(
            200, {"ok": True, "query": terms, "scope": scope, "hits": hits}
        )
        return 200

    def _post_classify(self) -> int:
        raw = _raw_page_from_body(self._read_json_body())
        self._send_json(200, {"ok": True, **self.shard.classify(raw)})
        return 200

    def _post_add(self) -> int:
        raw = _raw_page_from_body(self._read_json_body())
        self._send_json(200, {"ok": True, **self.shard.add(raw)})
        return 200

    # -- replication feed ---------------------------------------------

    def _get_replication_manifest(self, query: dict) -> int:
        self._send_json(
            200, {"ok": True, **self.shard.replication_manifest()}
        )
        return 200

    def _get_replication_segment(self, query: dict) -> int:
        seq = self._int_param(query, "seq", -1, low=1, high=10**9)
        if seq < 0:
            raise ApiError(400, "bad_request", "missing parameter 'seq'")
        try:
            data = self.shard.replication_segment(seq)
        except JournalError as exc:
            # Folded away: the replica re-bootstraps from /snapshot.
            raise ApiError(404, "segment_gone", str(exc))
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)
        return 200

    def _get_replication_snapshot(self, query: dict) -> int:
        self._send_json(200, self.shard.replication_snapshot())
        return 200


class ShardHTTPServer(DirectoryHTTPServer):
    """One shard node behind the shard API."""

    def __init__(
        self,
        shard: ShardNode,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.shard = shard
        self.directory = shard.directory
        self.max_request_bytes = max_request_bytes
        self.request_timeout = request_timeout
        # Skip DirectoryHTTPServer.__init__ (it expects a bare
        # directory); bind straight to the threading server.
        ThreadingHTTPServer.__init__(self, address, ShardRequestHandler)

    def shut_down(self) -> None:
        self.shutdown()
        self.server_close()
        self.shard.close()


class ReplicaRequestHandler(ShardRequestHandler):
    """Read-only shard API over a tailing replica."""

    server_version = "repro-replica/1.0"

    @property
    def replica(self) -> ReplicaNode:
        return self.server.replica

    @property
    def shard(self) -> ShardNode:
        node = self.replica.node
        if node is None:
            raise ApiError(
                503, "recovering", "replica has not bootstrapped yet",
                retry_after=1,
            )
        return node

    @property
    def directory(self):
        return self.shard.directory

    @property
    def metrics_registry(self):
        return self.replica.metrics

    def post_routes(self) -> dict:
        # Classify is read-only; mutations would fork the copy.
        return {
            "/classify": self._post_classify,
            "/add": self._post_refuse_write,
            "/remove": self._post_refuse_write,
        }

    def _post_refuse_write(self) -> int:
        if self.replica.promoted:
            # Promotion makes this a leader; serve the write normally.
            endpoint = self.path.split("?")[0].rstrip("/")
            handler = super().post_routes()[endpoint]
            return handler()
        raise ApiError(
            403, "read_only_replica",
            "this node is a read replica; write to the leader",
        )

    def _get_healthz(self, query: dict) -> int:
        record = self.replica.healthz()
        if record["status"] == "recovering":
            self._send_json(
                503, {"ok": False, **record},
                extra_headers=(("Retry-After", "1"),),
            )
            return 503
        self._send_json(200, {"ok": True, **record})
        return 200


class ReplicaHTTPServer(DirectoryHTTPServer):
    """A replica node behind the read-only API."""

    def __init__(
        self,
        replica: ReplicaNode,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.replica = replica
        self.max_request_bytes = max_request_bytes
        self.request_timeout = request_timeout
        ThreadingHTTPServer.__init__(self, address, ReplicaRequestHandler)

    def shut_down(self) -> None:
        self.shutdown()
        self.server_close()
        self.replica.close()


class RouterRequestHandler(DirectoryRequestHandler):
    """The public scatter-gather front end."""

    server_version = "repro-router/1.0"

    @property
    def router(self) -> DirectoryRouter:
        return self.server.router

    @property
    def metrics_registry(self):
        return self.router.metrics

    def get_routes(self) -> dict:
        return {
            "/healthz": self._get_healthz,
            "/metrics": self._get_metrics,
            "/search": self._get_search,
        }

    def post_routes(self) -> dict:
        return {
            "/classify": self._post_classify,
            "/add": self._post_add,
            "/remove": self._post_remove,
        }

    @staticmethod
    def _unavailable(exc: AllShardsUnavailable) -> ApiError:
        return ApiError(
            503, "all_shards_unavailable", str(exc),
            retry_after=ALL_SHARDS_RETRY_AFTER,
        )

    def _get_metrics(self, query: dict) -> int:
        data = self.router.metrics.render().encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)
        return 200

    def _get_healthz(self, query: dict) -> int:
        try:
            record = self.router.healthz()
        except AllShardsUnavailable as exc:
            raise self._unavailable(exc)
        self._send_json(
            200 if record["status"] == "ok" else 200,
            {"ok": record["status"] == "ok", **record},
        )
        return 200

    def _get_search(self, query: dict) -> int:
        terms = query.get("q", [""])[0]
        if not terms.strip():
            raise ApiError(400, "bad_request", "missing query parameter 'q'")
        n = self._int_param(query, "n", 3, low=1, high=100)
        scope = query.get("scope", ["clusters"])[0]
        if scope not in ("clusters", "pages"):
            raise ApiError(
                400, "bad_request", "'scope' must be 'clusters' or 'pages'"
            )
        try:
            reply = self.router.search(terms, n=n, scope=scope)
        except AllShardsUnavailable as exc:
            raise self._unavailable(exc)
        self._send_json(200, {"ok": True, **reply})
        return 200

    def _post_classify(self) -> int:
        raw = _raw_page_from_body(self._read_json_body())
        try:
            reply = self.router.classify(raw)
        except AllShardsUnavailable as exc:
            raise self._unavailable(exc)
        self._send_json(200, {"ok": True, **reply})
        return 200

    def _post_add(self) -> int:
        raw = _raw_page_from_body(self._read_json_body())
        try:
            reply = self.router.add(raw)
        except AllShardsUnavailable as exc:
            raise self._unavailable(exc)
        self._send_json(200, {"ok": True, **reply})
        return 200

    def _post_remove(self) -> int:
        body = self._read_json_body()
        url = body.get("url")
        if not isinstance(url, str) or not url:
            raise ApiError(
                400, "bad_request", "'url' must be a non-empty string"
            )
        try:
            reply = self.router.remove(url)
        except AllShardsUnavailable as exc:
            raise self._unavailable(exc)
        self._send_json(200, {"ok": True, **reply})
        return 200


class RouterHTTPServer(DirectoryHTTPServer):
    """The router behind the public API."""

    def __init__(
        self,
        router: DirectoryRouter,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.router = router
        self.max_request_bytes = max_request_bytes
        self.request_timeout = request_timeout
        ThreadingHTTPServer.__init__(self, address, RouterRequestHandler)

    def shut_down(self) -> None:
        self.shutdown()
        self.server_close()
        self.router.close()


def serve_shard(
    shard: ShardNode, host: str = "127.0.0.1", port: int = 0, **kwargs
) -> ShardHTTPServer:
    """Bind a shard server (port 0 picks an ephemeral port)."""
    return ShardHTTPServer(shard, (host, port), **kwargs)


def serve_replica(
    replica: ReplicaNode, host: str = "127.0.0.1", port: int = 0, **kwargs
) -> ReplicaHTTPServer:
    """Bind a replica server."""
    return ReplicaHTTPServer(replica, (host, port), **kwargs)


def serve_router(
    router: DirectoryRouter, host: str = "127.0.0.1", port: int = 0, **kwargs
) -> RouterHTTPServer:
    """Bind a router server."""
    return RouterHTTPServer(router, (host, port), **kwargs)


__all__ = [
    "ReplicaHTTPServer",
    "ReplicaRequestHandler",
    "RouterHTTPServer",
    "RouterRequestHandler",
    "ShardHTTPServer",
    "ShardRequestHandler",
    "serve_replica",
    "serve_router",
    "serve_shard",
]
