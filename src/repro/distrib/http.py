"""HTTP faces of the distributed directory — shard, replica, router.

All three are transport-neutral apps (:class:`ShardApp`,
:class:`ReplicaApp`, :class:`RouterApp`) over the single-node plumbing
(:class:`~repro.service.app.DirectoryApp` — bounded bodies, structured
errors, request metrics), so every node kind runs on *either* connection
layer: the classic threaded server or the :mod:`repro.service.aio`
event-loop transport with admission control (``transport="asyncio"`` on
the ``serve_*`` factories, ``--transport`` on the CLI).

* **shard** (:func:`serve_shard`) — the full single-node API with
  global cluster ids, plus the replication feed
  (``/replication/manifest``, ``/replication/segment?seq=N`` as raw
  crc-framed bytes, ``/replication/snapshot``);
* **replica** (:func:`serve_replica`) — reads only (``/search``,
  ``/classify``, ``/healthz``, ``/metrics``) until promoted; write
  endpoints answer 403 so a misconfigured client cannot fork the copy;
* **router** (:func:`serve_router`) — the public front: fan-out
  ``/search`` / ``/classify`` / ``/add`` / ``/remove`` with partial
  responses, aggregated ``/healthz``, and 503 + ``Retry-After`` when no
  shard answers.
"""

import json
from http.server import ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from repro.distrib.replica import ReplicaNode
from repro.distrib.router import (
    ALL_SHARDS_RETRY_AFTER,
    AllShardsUnavailable,
    DirectoryRouter,
)
from repro.distrib.shard import ShardNode
from repro.resilience.journal import JournalError
from repro.service.aio import AdmissionConfig, AsyncHTTPServer
from repro.service.app import (
    ApiError,
    BaseApp,
    DEFAULT_MAX_REQUEST_BYTES,
    DEFAULT_REQUEST_TIMEOUT,
    DirectoryApp,
    METRICS_CONTENT_TYPE,
    Response,
    _raw_page_from_body,
    json_response,
)
from repro.service.http import DirectoryHTTPServer, DirectoryRequestHandler


class ShardApp(DirectoryApp):
    """Single-node API in global ids + the replication feed."""

    server_version = "repro-shard/1.0"

    def __init__(
        self,
        shard: ShardNode,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        BaseApp.__init__(self, request_timeout)
        self._shard = shard

    @property
    def shard(self) -> ShardNode:
        return self._shard

    @property
    def directory(self):
        return self.shard.directory

    def close(self) -> None:
        self.shard.close()

    def get_routes(self) -> Dict[str, Callable]:
        routes = super().get_routes()
        routes.update(
            {
                "/replication/manifest": self._get_replication_manifest,
                "/replication/segment": self._get_replication_segment,
                "/replication/snapshot": self._get_replication_snapshot,
            }
        )
        return routes

    def _get_healthz(self, query: dict) -> Response:
        # The single-node health body, merged with the shard's identity
        # record — which is where ``epoch`` / ``role`` /
        # ``lease_remaining`` live, so a failover runbook (or the
        # router's leader re-resolution) reads them straight off
        # /healthz.
        response = super()._get_healthz(query)
        if response.status != 200:
            return response
        payload = json.loads(response.body.decode("utf-8"))
        payload.update(self.shard.healthz())
        return json_response(200, payload)

    # -- reads in global ids ------------------------------------------

    def _get_search(self, query: dict) -> Response:
        terms, n, scope = self._search_params(query)
        if scope == "clusters":
            hits = self.shard.search(terms, n=n)
        else:
            hits = self.shard.search_pages(terms, n=n)
        return json_response(
            200, {"ok": True, "query": terms, "scope": scope, "hits": hits}
        )

    def _post_classify(self, body: dict) -> Response:
        raw = _raw_page_from_body(body)
        return json_response(200, {"ok": True, **self.shard.classify(raw)})

    def _post_add(self, body: dict) -> Response:
        raw = _raw_page_from_body(body)
        return json_response(200, {"ok": True, **self.shard.add(raw)})

    def _post_remove(self, body: dict) -> Response:
        # Through the shard, not the bare directory: removes are writes
        # and must pass the same leadership check as adds.
        url = body.get("url")
        if not isinstance(url, str) or not url:
            raise ApiError(
                400, "bad_request", "'url' must be a non-empty string"
            )
        removed = self.shard.remove(url)
        return json_response(
            200, {"ok": True, "url": url, "removed": removed}
        )

    # -- replication feed ---------------------------------------------

    def _get_replication_manifest(self, query: dict) -> Response:
        return json_response(
            200, {"ok": True, **self.shard.replication_manifest()}
        )

    def _get_replication_segment(self, query: dict) -> Response:
        seq = self._int_param(query, "seq", -1, low=1, high=10**9)
        if seq < 0:
            raise ApiError(400, "bad_request", "missing parameter 'seq'")
        try:
            data = self.shard.replication_segment(seq)
        except JournalError as exc:
            # Folded away: the replica re-bootstraps from /snapshot.
            raise ApiError(404, "segment_gone", str(exc))
        return Response(200, data, content_type="application/octet-stream")

    def _get_replication_snapshot(self, query: dict) -> Response:
        return json_response(200, self.shard.replication_snapshot())


class ReplicaApp(ShardApp):
    """Read-only shard API over a tailing replica."""

    server_version = "repro-replica/1.0"

    def __init__(
        self,
        replica: ReplicaNode,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        BaseApp.__init__(self, request_timeout)
        self.replica = replica

    @property
    def shard(self) -> ShardNode:
        node = self.replica.node
        if node is None:
            raise ApiError(
                503, "recovering", "replica has not bootstrapped yet",
                retry_after=1,
            )
        return node

    @property
    def metrics_registry(self):
        return self.replica.metrics

    def close(self) -> None:
        self.replica.close()

    def post_routes(self) -> Dict[str, Callable]:
        # Classify is read-only; mutations would fork the copy.
        return {
            "/classify": self._post_classify,
            "/add": self._refusing(super().post_routes()["/add"]),
            "/remove": self._refusing(super().post_routes()["/remove"]),
            "/promote": self._post_promote,
        }

    def _post_promote(self, body: dict) -> Response:
        """Take over from the dead leader (``repro failover`` and the
        coordinator drive this).  Body: ``leader_journal`` (required),
        optional ``lease_dir``/``lease_file`` and ``lease_ttl``.

        Double promotion — concurrent or repeated — answers a clean
        409 ``already_promoted`` instead of corrupting state.
        """
        leader_journal = body.get("leader_journal")
        if not isinstance(leader_journal, str) or not leader_journal:
            raise ApiError(
                400, "bad_request",
                "'leader_journal' must be a non-empty path string",
            )
        kwargs = {}
        lease_file = body.get("lease_file")
        if isinstance(lease_file, str) and lease_file:
            kwargs["lease_store"] = lease_file
            ttl = body.get("lease_ttl")
            if ttl is not None:
                kwargs["lease_ttl"] = float(ttl)
        try:
            node = self.replica.promote(leader_journal, **kwargs)
        except RuntimeError as exc:
            raise ApiError(409, "already_promoted", str(exc))
        return json_response(
            200,
            {
                "ok": True,
                "name": self.replica.name,
                "epoch": node.epoch,
                "applied": self.replica.applied,
                "drained": getattr(self.replica, "drained_on_promotion", 0),
            },
        )

    def _refusing(self, inner: Callable) -> Callable:
        def refuse_unless_promoted(body: dict) -> Response:
            if self.replica.promoted:
                # Promotion makes this a leader; serve the write normally.
                return inner(body)
            raise ApiError(
                403, "read_only_replica",
                "this node is a read replica; write to the leader",
            )

        return refuse_unless_promoted

    def _get_healthz(self, query: dict) -> Response:
        record = self.replica.healthz()
        if record["status"] == "recovering":
            return json_response(
                503, {"ok": False, **record},
                extra_headers=(("Retry-After", "1"),),
            )
        return json_response(200, {"ok": True, **record})


class RouterApp(BaseApp):
    """The public scatter-gather front end."""

    server_version = "repro-router/1.0"

    def __init__(
        self,
        router: DirectoryRouter,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        super().__init__(request_timeout)
        self.router = router

    @property
    def metrics_registry(self):
        return self.router.metrics

    def close(self) -> None:
        self.router.close()

    def get_routes(self) -> Dict[str, Callable]:
        return {
            "/healthz": self._get_healthz,
            "/metrics": self._get_metrics,
            "/search": self._get_search,
        }

    def post_routes(self) -> Dict[str, Callable]:
        return {
            "/classify": self._post_classify,
            "/add": self._post_add,
            "/remove": self._post_remove,
        }

    @staticmethod
    def _unavailable(exc: AllShardsUnavailable) -> ApiError:
        return ApiError(
            503, "all_shards_unavailable", str(exc),
            retry_after=ALL_SHARDS_RETRY_AFTER,
        )

    def _get_metrics(self, query: dict) -> Response:
        return Response(
            200,
            self.router.metrics.render().encode("utf-8"),
            content_type=METRICS_CONTENT_TYPE,
        )

    def _get_healthz(self, query: dict) -> Response:
        try:
            record = self.router.healthz()
        except AllShardsUnavailable as exc:
            raise self._unavailable(exc)
        return json_response(
            200, {"ok": record["status"] == "ok", **record}
        )

    def _get_search(self, query: dict) -> Response:
        terms = query.get("q", [""])[0]
        if not terms.strip():
            raise ApiError(400, "bad_request", "missing query parameter 'q'")
        n = self._int_param(query, "n", 3, low=1, high=100)
        scope = query.get("scope", ["clusters"])[0]
        if scope not in ("clusters", "pages"):
            raise ApiError(
                400, "bad_request", "'scope' must be 'clusters' or 'pages'"
            )
        try:
            reply = self.router.search(terms, n=n, scope=scope)
        except AllShardsUnavailable as exc:
            raise self._unavailable(exc)
        return json_response(200, {"ok": True, **reply})

    def _post_classify(self, body: dict) -> Response:
        raw = _raw_page_from_body(body)
        try:
            reply = self.router.classify(raw)
        except AllShardsUnavailable as exc:
            raise self._unavailable(exc)
        return json_response(200, {"ok": True, **reply})

    def _post_add(self, body: dict) -> Response:
        raw = _raw_page_from_body(body)
        try:
            reply = self.router.add(raw)
        except AllShardsUnavailable as exc:
            raise self._unavailable(exc)
        return json_response(200, {"ok": True, **reply})

    def _post_remove(self, body: dict) -> Response:
        url = body.get("url")
        if not isinstance(url, str) or not url:
            raise ApiError(
                400, "bad_request", "'url' must be a non-empty string"
            )
        try:
            reply = self.router.remove(url)
        except AllShardsUnavailable as exc:
            raise self._unavailable(exc)
        return json_response(200, {"ok": True, **reply})


class _NodeHTTPServer(DirectoryHTTPServer):
    """Threaded server over an arbitrary app (shard/replica/router):
    the single-node server minus the bare-directory assumption."""

    def __init__(
        self,
        app: BaseApp,
        address: Tuple[str, int],
        max_request_bytes: int,
        request_timeout: float,
    ) -> None:
        self.app = app
        self.max_request_bytes = max_request_bytes
        self.request_timeout = request_timeout
        self.shutting_down = False
        # Skip DirectoryHTTPServer.__init__ (it expects a bare
        # directory); bind straight to the threading server.
        ThreadingHTTPServer.__init__(self, address, DirectoryRequestHandler)

    def shut_down(self) -> None:
        self.shutting_down = True
        self.shutdown()
        self.server_close()
        self.app.close()


class ShardHTTPServer(_NodeHTTPServer):
    """One shard node behind the shard API."""

    def __init__(
        self,
        shard: ShardNode,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.shard = shard
        self.directory = shard.directory
        super().__init__(
            ShardApp(shard, request_timeout=request_timeout),
            address, max_request_bytes, request_timeout,
        )


class ReplicaHTTPServer(_NodeHTTPServer):
    """A replica node behind the read-only API."""

    def __init__(
        self,
        replica: ReplicaNode,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.replica = replica
        super().__init__(
            ReplicaApp(replica, request_timeout=request_timeout),
            address, max_request_bytes, request_timeout,
        )


class RouterHTTPServer(_NodeHTTPServer):
    """The router behind the public API."""

    def __init__(
        self,
        router: DirectoryRouter,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.router = router
        super().__init__(
            RouterApp(router, request_timeout=request_timeout),
            address, max_request_bytes, request_timeout,
        )


def _serve(
    app: BaseApp,
    on_close: Callable[[], None],
    threaded_cls,
    node,
    host: str,
    port: int,
    transport: str,
    admission: Optional[AdmissionConfig],
    **kwargs,
):
    if transport == "asyncio":
        return AsyncHTTPServer(
            app,
            (host, port),
            max_request_bytes=kwargs.get(
                "max_request_bytes", DEFAULT_MAX_REQUEST_BYTES
            ),
            admission=admission,
            on_close=on_close,
        )
    if transport != "threaded":
        raise ValueError(
            f"unknown transport {transport!r}; pick 'threaded' or 'asyncio'"
        )
    return threaded_cls(node, (host, port), **kwargs)


def serve_shard(
    shard: ShardNode,
    host: str = "127.0.0.1",
    port: int = 0,
    transport: str = "threaded",
    admission: Optional[AdmissionConfig] = None,
    **kwargs,
):
    """Bind a shard server (port 0 picks an ephemeral port)."""
    app = ShardApp(
        shard,
        request_timeout=kwargs.get("request_timeout",
                                   DEFAULT_REQUEST_TIMEOUT),
    )
    return _serve(app, shard.close, ShardHTTPServer, shard,
                  host, port, transport, admission, **kwargs)


def serve_replica(
    replica: ReplicaNode,
    host: str = "127.0.0.1",
    port: int = 0,
    transport: str = "threaded",
    admission: Optional[AdmissionConfig] = None,
    **kwargs,
):
    """Bind a replica server."""
    app = ReplicaApp(
        replica,
        request_timeout=kwargs.get("request_timeout",
                                   DEFAULT_REQUEST_TIMEOUT),
    )
    return _serve(app, replica.close, ReplicaHTTPServer, replica,
                  host, port, transport, admission, **kwargs)


def serve_router(
    router: DirectoryRouter,
    host: str = "127.0.0.1",
    port: int = 0,
    transport: str = "threaded",
    admission: Optional[AdmissionConfig] = None,
    **kwargs,
):
    """Bind a router server."""
    app = RouterApp(
        router,
        request_timeout=kwargs.get("request_timeout",
                                   DEFAULT_REQUEST_TIMEOUT),
    )
    return _serve(app, router.close, RouterHTTPServer, router,
                  host, port, transport, admission, **kwargs)


__all__ = [
    "ReplicaApp",
    "ReplicaHTTPServer",
    "RouterApp",
    "RouterHTTPServer",
    "ShardApp",
    "ShardHTTPServer",
    "serve_replica",
    "serve_router",
    "serve_shard",
]
