"""Partition assignment — which shard owns which part of the directory.

Two placements, both **stable** (a pure function of the key and the
shard count, never of arrival order or shard liveness):

``"cluster"`` (the default)
    Whole clusters are assigned round-robin by global cluster id
    (``global_id % n_shards``).  Every page of a cluster lives on one
    shard, so each shard's centroids sum exactly the pages the
    single-node directory would sum, in the same stored order — the
    centroid floats are **bit-identical** to the unsharded directory's,
    which is what makes the router's merged answers bit-identical for
    *both* search scopes (the acceptance criterion in
    docs/SHARDING.md).

``"hash"``
    Pages are assigned by a stable content-independent URL hash
    (``sha256(url) % n_shards``).  Every shard keeps all cluster slots
    (with a subset of pages), so cluster centroids are partial sums:
    page-scope search still merges bit-identically (page scores depend
    only on the page's own vector), cluster-scope answers are
    per-shard approximations.  Use it when per-shard balance matters
    more than cluster-scope parity.

Global cluster ids are simply the single-node cluster indices
(``0..k-1``): a shard remembers which globals it holds
(``Snapshot.meta["global_clusters"]``) and remaps its local indices on
the way out, so "cluster 5" means the same thing on every node and in
every merged response.
"""

import hashlib
from typing import List

from repro.options import validate_option
from repro.service.snapshot import Snapshot

#: Allowed ``placement`` values (see module docstring for semantics).
PLACEMENT_CHOICES = ("cluster", "hash")


def validate_placement(value: str) -> str:
    """Validate a placement name (raises ``OptionError`` otherwise)."""
    return validate_option("placement", value, PLACEMENT_CHOICES)


def shard_for_cluster(global_id: int, n_shards: int) -> int:
    """Owner shard of a cluster under ``"cluster"`` placement."""
    return int(global_id) % int(n_shards)


def shard_for_url(url: str, n_shards: int) -> int:
    """Owner shard of a page under ``"hash"`` placement.

    sha256, not ``hash()``: Python salts string hashes per process, and
    placement must agree across every node of the deployment.
    """
    digest = hashlib.sha256(url.encode("utf-8", "replace")).digest()
    return int.from_bytes(digest[:8], "big") % int(n_shards)


def _shard_meta(
    shard: int, n_shards: int, placement: str, global_clusters: List[int]
) -> dict:
    return {
        "shard": shard,
        "n_shards": n_shards,
        "placement": placement,
        "global_clusters": list(global_clusters),
    }


def split_snapshot(
    snapshot: Snapshot, n_shards: int, placement: str = "cluster"
) -> List[Snapshot]:
    """Partition a single-node snapshot into ``n_shards`` shard snapshots.

    Every shard snapshot carries the **full** fitted vectorizer state
    and config: query/page vectorization (and therefore every score,
    Eq-1 or BM25) uses global corpus statistics on every shard, which
    is what keeps cross-shard scores comparable in the router's merge.
    The partition itself — which clusters/pages a shard holds — is
    recorded in ``Snapshot.meta`` so a shard knows its own placement
    after a cold start.
    """
    validate_placement(placement)
    n_shards = int(n_shards)
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    k = len(snapshot.clusters)
    terms = list(snapshot.top_terms)
    while len(terms) < k:
        terms.append([])

    shards: List[Snapshot] = []
    if placement == "cluster":
        if n_shards > k:
            raise ValueError(
                f"cluster placement cannot spread {k} clusters over "
                f"{n_shards} shards (some shards would be empty)"
            )
        for shard in range(n_shards):
            # Ascending global order — a shard's local index order IS
            # its global id order, so per-shard sorted runs stay sorted
            # under the router's (-score, global id) merge key.
            globals_ = [
                g for g in range(k) if shard_for_cluster(g, n_shards) == shard
            ]
            shards.append(
                Snapshot(
                    clusters=[list(snapshot.clusters[g]) for g in globals_],
                    vectorizer_state=snapshot.vectorizer_state,
                    config=snapshot.config,
                    top_terms=[list(terms[g]) for g in globals_],
                    algorithm=snapshot.algorithm,
                    created_unix=snapshot.created_unix,
                    meta=_shard_meta(shard, n_shards, placement, globals_),
                )
            )
        return shards

    # Hash placement: all shards keep every cluster slot (local == global)
    # with the pages the URL hash routes to them.
    for shard in range(n_shards):
        shards.append(
            Snapshot(
                clusters=[
                    [
                        page
                        for page in members
                        if shard_for_url(page.url, n_shards) == shard
                    ]
                    for members in snapshot.clusters
                ],
                vectorizer_state=snapshot.vectorizer_state,
                config=snapshot.config,
                top_terms=[list(t) for t in terms],
                algorithm=snapshot.algorithm,
                created_unix=snapshot.created_unix,
                meta=_shard_meta(shard, n_shards, placement, list(range(k))),
            )
        )
    return shards


__all__ = [
    "PLACEMENT_CHOICES",
    "shard_for_cluster",
    "shard_for_url",
    "split_snapshot",
    "validate_placement",
]
