"""Shard clients — how the router and replicas talk to a shard.

Two transports behind one duck-typed interface:

* :class:`LocalShardClient` calls a :class:`~repro.distrib.shard.
  ShardNode` in-process.  This is what the parity tests and the bench
  harness use — no sockets, no serialization noise, the merged answer
  is compared float-for-float against the single-node directory.
* :class:`HttpShardClient` speaks the shard HTTP API
  (:mod:`repro.distrib.http`) over pooled persistent
  ``http.client.HTTPConnection`` keep-alive sockets (reconnect-on-
  stale) — the deployment transport, exercised end-to-end by
  ``repro router --smoke``.

Both raise :class:`ShardUnavailable` for anything that means "this
endpoint cannot answer right now" (connection refused, 5xx, timeout,
an injected fault) so the router's failover/partial-result logic has
one exception type to catch.
"""

import http.client
import json
import socket
import threading
import urllib.parse
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.core.form_page import RawFormPage
from repro.distrib.shard import ShardNode
from repro.resilience.faults import FaultError
from repro.resilience.journal import JournalError, StaleEpochError
from repro.resilience.retry import RetryError


class ShardUnavailable(Exception):
    """The shard endpoint cannot answer (dead, unreachable, or 5xx)."""

    def __init__(self, name: str, reason: str) -> None:
        super().__init__(f"shard {name}: {reason}")
        self.name = name
        self.reason = reason


class SegmentGone(Exception):
    """The requested sealed segment was folded into a snapshot — the
    tailing replica must re-bootstrap instead of replaying a gap."""


def raw_page_to_body(raw: RawFormPage) -> Dict[str, object]:
    """The ``/classify`` / ``/add`` request body for a raw page."""
    return {
        "url": raw.url,
        "html": raw.html,
        "backlinks": list(raw.backlinks),
        "anchor_texts": list(raw.anchor_texts),
    }


class LocalShardClient:
    """In-process transport: a thin adapter over a :class:`ShardNode`.

    ``alive`` lets failover tests kill a node without tearing down its
    state: a dead client raises :class:`ShardUnavailable` on every call,
    exactly like a refused connection.
    """

    def __init__(self, shard: ShardNode, name: Optional[str] = None) -> None:
        self.shard = shard
        self.name = name or shard.name
        self.alive = True

    def _check(self) -> None:
        if not self.alive:
            raise ShardUnavailable(self.name, "node is down")

    def _guard(self, fn, *args, **kwargs):
        self._check()
        try:
            return fn(*args, **kwargs)
        except StaleEpochError:
            # Not an availability problem: the node answered, and the
            # answer is "I am fenced".  The router failovers on it and
            # the HTTP face maps it to 409.
            raise
        except (FaultError, RetryError, TimeoutError) as exc:
            raise ShardUnavailable(
                self.name, f"{type(exc).__name__}: {exc}"
            ) from exc

    def kill(self) -> None:
        """Simulate node death (state stays on 'disk' for promotion)."""
        self.alive = False

    def revive(self) -> None:
        self.alive = True

    @contextmanager
    def deadline(self, seconds: float):
        """Deadline-budget seam (no-op in-process: local calls cannot
        be socket-capped; the router's fan-out ``wait`` still bounds
        them)."""
        yield

    # -- serving ------------------------------------------------------

    def search(
        self, query: str, n: int = 3, scope: str = "clusters"
    ) -> List[Dict[str, object]]:
        if scope == "pages":
            return self._guard(self.shard.search_pages, query, n=n)
        return self._guard(self.shard.search, query, n=n)

    def classify(self, raw: RawFormPage) -> Dict[str, object]:
        return self._guard(self.shard.classify, raw)

    def add(self, raw: RawFormPage) -> Dict[str, object]:
        return self._guard(self.shard.add, raw)

    def remove(self, url: str) -> bool:
        return self._guard(self.shard.remove, url)

    def healthz(self) -> Dict[str, object]:
        self._check()
        return self.shard.healthz()

    def promote(self, leader_journal: str, **kwargs) -> Dict[str, object]:
        """Promote the wrapped replica (duck-typed: only meaningful
        when this client wraps a :class:`~repro.distrib.replica.
        ReplicaNode`).  Returns the structured reply the coordinator
        and the HTTP ``POST /promote`` route share."""
        node = self._guard(self.shard.promote, leader_journal, **kwargs)
        return {
            "ok": True,
            "name": self.name,
            "epoch": node.epoch,
            "applied": getattr(self.shard, "applied", 0),
            "drained": getattr(self.shard, "drained_on_promotion", 0),
        }

    # -- replication --------------------------------------------------

    def replication_manifest(self) -> Dict[str, object]:
        return self._guard(self.shard.replication_manifest)

    def replication_segment(self, seq: int) -> bytes:
        self._check()
        try:
            return self.shard.replication_segment(seq)
        except JournalError as exc:
            raise SegmentGone(str(exc)) from exc
        except (FaultError, RetryError, TimeoutError) as exc:
            raise ShardUnavailable(
                self.name, f"{type(exc).__name__}: {exc}"
            ) from exc

    def replication_snapshot(self) -> Dict[str, object]:
        return self._guard(self.shard.replication_snapshot)


class HttpShardClient:
    """HTTP transport for a shard (or replica) endpoint.

    Connections are *pooled and persistent*: each request borrows an
    ``http.client.HTTPConnection`` from a small per-client stack,
    speaks keep-alive HTTP/1.1, and returns it for the next call — the
    scatter-gather fan-out no longer pays a TCP handshake per shard per
    request.  A borrowed connection that turns out to be stale (the
    server closed the keep-alive socket between requests) is discarded
    and the request retried once on a fresh connection; fresh-connection
    failures surface immediately as :class:`ShardUnavailable`.
    ``pooled=False`` restores the legacy open-per-call behavior (the
    A/B baseline in ``benchmarks/test_bench_shard.py``).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        name: Optional[str] = None,
        pooled: bool = True,
        pool_size: int = 4,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.name = name or self.base_url
        self.pooled = pooled
        self.pool_size = max(1, int(pool_size))
        split = urllib.parse.urlsplit(self.base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(
                f"HttpShardClient needs an http:// base URL, got "
                f"{base_url!r}"
            )
        self._host = split.hostname
        self._port = split.port or 80
        self._prefix = split.path.rstrip("/")
        self._pool: List[http.client.HTTPConnection] = []
        self._pool_lock = threading.Lock()
        self._budget = threading.local()

    # -- deadline budget ----------------------------------------------

    @contextmanager
    def deadline(self, seconds: float):
        """Cap this thread's requests at ``seconds`` — the caller's
        *remaining* budget, not the constructor's fixed timeout.

        The router's scatter-gather enters each failover attempt under
        the leg's remaining deadline, so the second endpoint of a
        failover list is tried with whatever time the first one left,
        instead of a full fresh ``timeout`` that could blow the
        request's overall budget.  Thread-local, so concurrent fan-out
        legs sharing a client cannot clobber each other.
        """
        previous = getattr(self._budget, "timeout", None)
        self._budget.timeout = max(0.001, float(seconds))
        try:
            yield
        finally:
            self._budget.timeout = previous

    @property
    def effective_timeout(self) -> float:
        override = getattr(self._budget, "timeout", None)
        return self.timeout if override is None else override

    # -- connection pool ----------------------------------------------

    def _acquire(self) -> Tuple[http.client.HTTPConnection, bool]:
        """(connection, was_reused) — pooled connections may be stale."""
        timeout = self.effective_timeout
        if self.pooled:
            with self._pool_lock:
                if self._pool:
                    conn = self._pool.pop()
                    conn.timeout = timeout
                    if conn.sock is not None:
                        conn.sock.settimeout(timeout)
                    return conn, True
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=timeout
        )
        return conn, False

    def _release(self, conn: http.client.HTTPConnection) -> None:
        if self.pooled:
            with self._pool_lock:
                if len(self._pool) < self.pool_size:
                    self._pool.append(conn)
                    return
        conn.close()

    def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()

    # -- plumbing -----------------------------------------------------

    #: Failures that mean "the keep-alive socket went stale between
    #: requests" — safe to retry once on a fresh connection, but only
    #: when the failed connection was a *reused* one.
    _STALE_ERRORS = (
        http.client.BadStatusLine,
        http.client.CannotSendRequest,
        http.client.ResponseNotReady,
        ConnectionResetError,
        BrokenPipeError,
        ConnectionAbortedError,
    )

    def _request(
        self,
        path: str,
        body: Optional[dict] = None,
        query: Optional[dict] = None,
        raw: bool = False,
        error_body_is_answer: bool = False,
    ):
        target = self._prefix + path
        if query:
            target += "?" + urllib.parse.urlencode(query)
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"

        for attempt in (0, 1):
            conn, reused = self._acquire()
            try:
                conn.request(
                    "POST" if data is not None else "GET",
                    target, body=data, headers=headers,
                )
                resp = conn.getresponse()
                payload = resp.read()
            except self._STALE_ERRORS as exc:
                conn.close()
                if reused and attempt == 0:
                    continue  # reconnect-on-stale: one fresh retry
                raise ShardUnavailable(self.name, str(exc)) from exc
            except (socket.timeout, OSError,
                    http.client.HTTPException) as exc:
                conn.close()
                raise ShardUnavailable(self.name, str(exc)) from exc
            if resp.will_close:
                conn.close()
            else:
                self._release(conn)
            return self._interpret(
                path, resp.status, payload, raw, error_body_is_answer
            )
        raise ShardUnavailable(self.name, "unreachable")  # pragma: no cover

    def _interpret(
        self,
        path: str,
        status: int,
        payload: bytes,
        raw: bool,
        error_body_is_answer: bool,
    ):
        if status >= 400:
            if status == 404 and path.startswith("/replication/segment"):
                raise SegmentGone(
                    payload.decode("utf-8", "replace")[:200]
                )
            if status == 409:
                # The structured fencing rejection: surface it as the
                # same exception the in-process transport raises, with
                # the server's current epoch attached, so callers can
                # re-resolve the leader instead of retrying a zombie.
                try:
                    error = json.loads(payload.decode("utf-8")).get(
                        "error", {}
                    )
                except (UnicodeDecodeError, json.JSONDecodeError):
                    error = {}
                if error.get("code") == "stale_epoch":
                    raise StaleEpochError(
                        int(error.get("epoch", 0)),
                        int(error.get("offered", 0)),
                        str(error.get("message", "")),
                    )
            if error_body_is_answer:
                # 503-recovering still carries a JSON status body — that
                # is an answer ("recovering"), not an unavailable
                # endpoint.
                try:
                    return json.loads(payload.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    raise ShardUnavailable(self.name, f"HTTP {status}")
            detail = payload.decode("utf-8", "replace")[:200]
            raise ShardUnavailable(self.name, f"HTTP {status}: {detail}")
        if raw:
            return payload
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ShardUnavailable(
                self.name, f"bad JSON reply: {exc}"
            ) from exc

    # -- serving ------------------------------------------------------

    def search(
        self, query: str, n: int = 3, scope: str = "clusters"
    ) -> List[Dict[str, object]]:
        reply = self._request(
            "/search", query={"q": query, "n": n, "scope": scope}
        )
        return reply.get("hits", [])

    def classify(self, raw: RawFormPage) -> Dict[str, object]:
        return self._request("/classify", body=raw_page_to_body(raw))

    def add(self, raw: RawFormPage) -> Dict[str, object]:
        return self._request("/add", body=raw_page_to_body(raw))

    def remove(self, url: str) -> bool:
        reply = self._request("/remove", body={"url": url})
        return bool(reply.get("removed", False))

    def healthz(self) -> Dict[str, object]:
        return self._request("/healthz", error_body_is_answer=True)

    def promote(
        self,
        leader_journal: str,
        lease_store=None,
        lease_ttl: Optional[float] = None,
        **kwargs,
    ) -> Dict[str, object]:
        """Ask a replica endpoint to take over (``POST /promote``).

        ``lease_store`` may be a path or a LeaseStore — only its path
        crosses the wire (the lease *file* is the shared-storage
        contract, exactly like the journal path).
        """
        body: Dict[str, object] = {"leader_journal": str(leader_journal)}
        if lease_store is not None:
            body["lease_file"] = str(getattr(lease_store, "path", lease_store))
        if lease_ttl is not None:
            body["lease_ttl"] = float(lease_ttl)
        body.update(kwargs)
        return self._request("/promote", body=body)

    # -- replication --------------------------------------------------

    def replication_manifest(self) -> Dict[str, object]:
        return self._request("/replication/manifest")

    def replication_segment(self, seq: int) -> bytes:
        return self._request(
            "/replication/segment", query={"seq": seq}, raw=True
        )

    def replication_snapshot(self) -> Dict[str, object]:
        return self._request("/replication/snapshot")


__all__ = [
    "HttpShardClient",
    "LocalShardClient",
    "SegmentGone",
    "ShardUnavailable",
    "raw_page_to_body",
]
