"""Shard clients — how the router and replicas talk to a shard.

Two transports behind one duck-typed interface:

* :class:`LocalShardClient` calls a :class:`~repro.distrib.shard.
  ShardNode` in-process.  This is what the parity tests and the bench
  harness use — no sockets, no serialization noise, the merged answer
  is compared float-for-float against the single-node directory.
* :class:`HttpShardClient` speaks the shard HTTP API
  (:mod:`repro.distrib.http`) over ``urllib`` — the deployment
  transport, exercised end-to-end by ``repro router --smoke``.

Both raise :class:`ShardUnavailable` for anything that means "this
endpoint cannot answer right now" (connection refused, 5xx, timeout,
an injected fault) so the router's failover/partial-result logic has
one exception type to catch.
"""

import json
import socket
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, List, Optional

from repro.core.form_page import RawFormPage
from repro.distrib.shard import ShardNode
from repro.resilience.faults import FaultError
from repro.resilience.journal import JournalError
from repro.resilience.retry import RetryError


class ShardUnavailable(Exception):
    """The shard endpoint cannot answer (dead, unreachable, or 5xx)."""

    def __init__(self, name: str, reason: str) -> None:
        super().__init__(f"shard {name}: {reason}")
        self.name = name
        self.reason = reason


class SegmentGone(Exception):
    """The requested sealed segment was folded into a snapshot — the
    tailing replica must re-bootstrap instead of replaying a gap."""


def raw_page_to_body(raw: RawFormPage) -> Dict[str, object]:
    """The ``/classify`` / ``/add`` request body for a raw page."""
    return {
        "url": raw.url,
        "html": raw.html,
        "backlinks": list(raw.backlinks),
        "anchor_texts": list(raw.anchor_texts),
    }


class LocalShardClient:
    """In-process transport: a thin adapter over a :class:`ShardNode`.

    ``alive`` lets failover tests kill a node without tearing down its
    state: a dead client raises :class:`ShardUnavailable` on every call,
    exactly like a refused connection.
    """

    def __init__(self, shard: ShardNode, name: Optional[str] = None) -> None:
        self.shard = shard
        self.name = name or shard.name
        self.alive = True

    def _check(self) -> None:
        if not self.alive:
            raise ShardUnavailable(self.name, "node is down")

    def _guard(self, fn, *args, **kwargs):
        self._check()
        try:
            return fn(*args, **kwargs)
        except (FaultError, RetryError, TimeoutError) as exc:
            raise ShardUnavailable(
                self.name, f"{type(exc).__name__}: {exc}"
            ) from exc

    def kill(self) -> None:
        """Simulate node death (state stays on 'disk' for promotion)."""
        self.alive = False

    def revive(self) -> None:
        self.alive = True

    # -- serving ------------------------------------------------------

    def search(
        self, query: str, n: int = 3, scope: str = "clusters"
    ) -> List[Dict[str, object]]:
        if scope == "pages":
            return self._guard(self.shard.search_pages, query, n=n)
        return self._guard(self.shard.search, query, n=n)

    def classify(self, raw: RawFormPage) -> Dict[str, object]:
        return self._guard(self.shard.classify, raw)

    def add(self, raw: RawFormPage) -> Dict[str, object]:
        return self._guard(self.shard.add, raw)

    def remove(self, url: str) -> bool:
        return self._guard(self.shard.remove, url)

    def healthz(self) -> Dict[str, object]:
        self._check()
        return self.shard.healthz()

    # -- replication --------------------------------------------------

    def replication_manifest(self) -> Dict[str, object]:
        return self._guard(self.shard.replication_manifest)

    def replication_segment(self, seq: int) -> bytes:
        self._check()
        try:
            return self.shard.replication_segment(seq)
        except JournalError as exc:
            raise SegmentGone(str(exc)) from exc
        except (FaultError, RetryError, TimeoutError) as exc:
            raise ShardUnavailable(
                self.name, f"{type(exc).__name__}: {exc}"
            ) from exc

    def replication_snapshot(self) -> Dict[str, object]:
        return self._guard(self.shard.replication_snapshot)


class HttpShardClient:
    """HTTP transport for a shard (or replica) endpoint."""

    def __init__(
        self, base_url: str, timeout: float = 10.0, name: Optional[str] = None
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.name = name or self.base_url

    # -- plumbing -----------------------------------------------------

    def _request(
        self,
        path: str,
        body: Optional[dict] = None,
        query: Optional[dict] = None,
        raw: bool = False,
    ):
        url = self.base_url + path
        if query:
            url += "?" + urllib.parse.urlencode(query)
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                payload = resp.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")[:200]
            if exc.code == 404 and path.startswith("/replication/segment"):
                raise SegmentGone(detail) from exc
            raise ShardUnavailable(
                self.name, f"HTTP {exc.code}: {detail}"
            ) from exc
        except (urllib.error.URLError, socket.timeout, OSError) as exc:
            raise ShardUnavailable(self.name, str(exc)) from exc
        if raw:
            return payload
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ShardUnavailable(self.name, f"bad JSON reply: {exc}") from exc

    # -- serving ------------------------------------------------------

    def search(
        self, query: str, n: int = 3, scope: str = "clusters"
    ) -> List[Dict[str, object]]:
        reply = self._request(
            "/search", query={"q": query, "n": n, "scope": scope}
        )
        return reply.get("hits", [])

    def classify(self, raw: RawFormPage) -> Dict[str, object]:
        return self._request("/classify", body=raw_page_to_body(raw))

    def add(self, raw: RawFormPage) -> Dict[str, object]:
        return self._request("/add", body=raw_page_to_body(raw))

    def remove(self, url: str) -> bool:
        reply = self._request("/remove", body={"url": url})
        return bool(reply.get("removed", False))

    def healthz(self) -> Dict[str, object]:
        url = self.base_url + "/healthz"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            # 503-recovering still carries a JSON status body — that is
            # an answer ("recovering"), not an unavailable endpoint.
            try:
                return json.loads(exc.read().decode("utf-8"))
            except Exception:
                raise ShardUnavailable(
                    self.name, f"HTTP {exc.code}"
                ) from exc
        except (urllib.error.URLError, socket.timeout, OSError) as exc:
            raise ShardUnavailable(self.name, str(exc)) from exc

    # -- replication --------------------------------------------------

    def replication_manifest(self) -> Dict[str, object]:
        return self._request("/replication/manifest")

    def replication_segment(self, seq: int) -> bytes:
        return self._request(
            "/replication/segment", query={"seq": seq}, raw=True
        )

    def replication_snapshot(self) -> Dict[str, object]:
        return self._request("/replication/snapshot")


__all__ = [
    "HttpShardClient",
    "LocalShardClient",
    "SegmentGone",
    "ShardUnavailable",
    "raw_page_to_body",
]
