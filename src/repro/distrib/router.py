"""The scatter-gather router — one front door over N shards.

:class:`DirectoryRouter` fans ``/search`` and ``/classify`` out to
every logical shard, merges the per-shard runs with the deterministic
k-way heap from :mod:`repro.index.merge`, and degrades instead of
failing:

* each logical shard is a **failover list** of endpoints (leader
  first, replicas after) — the first endpoint that answers wins;
* every fan-out leg runs under a **per-shard timeout**; a leg that
  misses it (or whose endpoints are all down) is recorded, not raised:
  the response carries ``"partial": true`` plus exactly which shards
  answered and which failed, so callers can tell a complete answer
  from a best-effort one;
* only when **no** shard answers does the router raise
  (:class:`AllShardsUnavailable` → HTTP 503 + ``Retry-After``).

Determinism: the merge key is ``(-score, global id)`` / ``(-score,
url)`` — a total order over globally-unique ids — so the merged top-k
never depends on which shard answered first.  With cluster placement,
per-shard scores are bit-identical to the single-node directory's
(see :mod:`repro.distrib.placement`), making the merged answer
bit-identical too; ``tests/test_distrib.py`` pins that over the full
benchmark corpus for both scopes and both weighting schemes.

Writes route by placement: ``"hash"`` sends a page to
``sha256(url) % n``; ``"cluster"`` classifies everywhere first and
sends the add to the shard owning the globally best cluster — the
same first-max tie-break (lowest global id) the single-node argmax
uses, so the sharded directory and the single-node one assign every
page identically.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.form_page import RawFormPage
from repro.distrib.client import ShardUnavailable
from repro.distrib.placement import shard_for_url, validate_placement
from repro.index.merge import cluster_hit_key, merge_ranked, page_hit_key
from repro.resilience.faults import inject
from repro.resilience.journal import StaleEpochError
from repro.service.metrics import DEFAULT_SIZE_BUCKETS, MetricsRegistry

#: Retry-After hint (seconds) when every shard is unavailable.
ALL_SHARDS_RETRY_AFTER = 1


class AllShardsUnavailable(Exception):
    """Every logical shard failed — the request cannot be served at all
    (per-shard failures short of this degrade to partial results)."""

    def __init__(self, operation: str, failures: Dict[int, str]) -> None:
        detail = "; ".join(
            f"shard {index}: {reason}" for index, reason in failures.items()
        )
        super().__init__(f"{operation}: no shard answered ({detail})")
        self.operation = operation
        self.failures = failures


class DirectoryRouter:
    """Scatter-gather front end over logical shards.

    Parameters
    ----------
    shards:
        One entry per logical shard: either a single shard client or a
        failover sequence of clients (leader first, then replicas).
    placement:
        How writes route (must match how the snapshots were split).
    shard_timeout:
        Seconds a fan-out leg may take before it is counted failed for
        this request (the leg is abandoned, not cancelled).
    """

    def __init__(
        self,
        shards: Sequence,
        placement: str = "cluster",
        shard_timeout: float = 5.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not shards:
            raise ValueError("router needs at least one shard")
        self.shards: List[List[object]] = [
            list(entry) if isinstance(entry, (list, tuple)) else [entry]
            for entry in shards
        ]
        for index, endpoints in enumerate(self.shards):
            if not endpoints:
                raise ValueError(f"logical shard {index} has no endpoints")
        self.placement = validate_placement(placement)
        self.shard_timeout = shard_timeout
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.started_unix = time.time()
        self._endpoints_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self.shards)),
            thread_name_prefix="repro-router",
        )
        self._instrument()

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def set_endpoints(self, index: int, endpoints: Sequence) -> None:
        """Replace logical shard ``index``'s failover list (leader
        first).  The failover coordinator calls this after promoting a
        replica so new requests hit the new leader directly."""
        endpoints = list(endpoints)
        if not endpoints:
            raise ValueError("a logical shard needs at least one endpoint")
        with self._endpoints_lock:
            self.shards[index] = endpoints

    def _instrument(self) -> None:
        m = self.metrics
        m.gauge("router_shards", "Logical shards configured").set_function(
            lambda: self.n_shards
        )
        self._m_fanout = m.histogram(
            "router_fanout_shards",
            "Shards that answered per fanned-out request",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_partial = m.counter(
            "router_partial_responses_total",
            "Requests answered with a subset of shards",
        )
        self._m_shard_failures = m.counter(
            "router_shard_failures_total",
            "Fan-out legs that failed (all endpoints down or timed out)",
        )
        self._m_stale_failovers = m.counter(
            "router_stale_epoch_failovers_total",
            "Endpoint attempts skipped past a fenced (stale-epoch) node",
        )
        self._m_reresolves = m.counter(
            "router_leader_reresolves_total",
            "Write-path leader re-resolutions after a stale-epoch sweep",
        )

    # ----------------------------------------------------------------
    # Fan-out machinery.
    # ----------------------------------------------------------------

    def _call_shard(
        self, index: int, call: Callable, deadline: Optional[float] = None
    ) -> object:
        """Run ``call(client)`` against shard ``index``, failing over
        down the endpoint list.  ``"router.fanout"`` is an injection
        seam per endpoint attempt — an injected fault fails over like a
        dead endpoint.

        ``deadline`` (a ``time.monotonic()`` instant) is the request's
        overall budget: each endpoint attempt runs under the *remaining*
        budget (``endpoint.deadline(remaining)``, duck-typed — the HTTP
        client caps its socket timeout with it), and an exhausted budget
        stops the failover walk instead of trying endpoint N with time
        the request no longer has.

        A fenced endpoint (:class:`StaleEpochError`) fails over like a
        dead one, but the raised ``ShardUnavailable`` is tagged
        ``stale_epoch=True`` when every recorded failure was a fencing
        rejection — the write path uses the tag to re-resolve the
        leader rather than back off.
        """
        failures = []
        stale = 0
        for endpoint in self.shards[index]:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    failures.append("deadline budget exhausted")
                    break
            try:
                inject("router.fanout")
                budget = getattr(endpoint, "deadline", None)
                if budget is not None and remaining is not None:
                    with budget(remaining):
                        return call(endpoint)
                return call(endpoint)
            except StaleEpochError as exc:
                stale += 1
                self._m_stale_failovers.inc()
                failures.append(f"stale epoch (current {exc.epoch})")
            except ShardUnavailable as exc:
                failures.append(exc.reason)
            except Exception as exc:  # an endpoint bug must not kill fan-out
                failures.append(f"{type(exc).__name__}: {exc}")
        error = ShardUnavailable(
            f"shard-{index}", " / ".join(failures) or "no endpoints"
        )
        error.stale_epoch = bool(failures) and stale == len(failures)
        raise error

    def _fan_out(
        self, operation: str, call: Callable, indices: Optional[Sequence[int]] = None
    ):
        """Run ``call(client)`` on every logical shard concurrently.

        Returns ``(results, failed)``: per-shard results for the legs
        that answered within the timeout, reasons for the ones that
        didn't.  Raises :class:`AllShardsUnavailable` when nothing
        answered.
        """
        indices = list(indices) if indices is not None else list(
            range(self.n_shards)
        )
        deadline = time.monotonic() + self.shard_timeout
        futures = {
            self._pool.submit(self._call_shard, index, call, deadline): index
            for index in indices
        }
        done, not_done = wait(futures, timeout=self.shard_timeout)
        results: Dict[int, object] = {}
        failed: Dict[int, str] = {}
        for future in done:
            index = futures[future]
            error = future.exception()
            if error is None:
                results[index] = future.result()
            else:
                failed[index] = str(error)
        for future in not_done:
            # Left running in the pool; its shard just misses this
            # response (partial-result degradation, not cancellation).
            failed[futures[future]] = (
                f"timed out after {self.shard_timeout}s"
            )
        self._m_fanout.observe(len(results))
        if failed:
            self._m_shard_failures.inc(len(failed))
        if not results:
            raise AllShardsUnavailable(operation, failed)
        return results, failed

    @staticmethod
    def _shard_report(
        results: Dict[int, object], failed: Dict[int, str]
    ) -> Dict[str, object]:
        return {
            "answered": sorted(results),
            "failed": {str(index): failed[index] for index in sorted(failed)},
        }

    # ----------------------------------------------------------------
    # Reads.
    # ----------------------------------------------------------------

    def search(
        self, query: str, n: int = 3, scope: str = "clusters"
    ) -> Dict[str, object]:
        """Merged global top-``n`` over every answering shard."""
        if scope not in ("clusters", "pages"):
            raise ValueError("'scope' must be 'clusters' or 'pages'")
        started = time.perf_counter()
        results, failed = self._fan_out(
            "search", lambda c: c.search(query, n=n, scope=scope)
        )
        key = cluster_hit_key if scope == "clusters" else page_hit_key
        # Ascending shard order only for reproducible *input* order; the
        # key is a total order, so any order merges to the same bytes.
        runs = [results[index] for index in sorted(results)]
        hits = merge_ranked(runs, n, key)
        partial = bool(failed)
        if partial:
            self._m_partial.inc()
        self.metrics.histogram(
            "search_seconds", "Merged search latency", scope=scope,
            shard="router",
        ).observe(time.perf_counter() - started)
        return {
            "query": query,
            "scope": scope,
            "hits": hits,
            "partial": partial,
            "shards": self._shard_report(results, failed),
        }

    def classify(self, raw: RawFormPage) -> Dict[str, object]:
        """Global argmax over per-shard classifications.

        Ties break to the lowest global cluster id — the single-node
        ``max(range(k), key=scores.__getitem__)`` picks the *first*
        maximum, and global ids are ascending cluster indices, so the
        distributed pick is identical.
        """
        results, failed = self._fan_out("classify", lambda c: c.classify(raw))
        best = min(
            results.values(),
            key=lambda r: (-float(r["similarity"]), int(r["cluster"])),
        )
        partial = bool(failed)
        if partial:
            self._m_partial.inc()
        return {
            "url": best["url"],
            "cluster": int(best["cluster"]),
            "similarity": float(best["similarity"]),
            "top_terms": list(best.get("top_terms", [])),
            "partial": partial,
            "shards": self._shard_report(results, failed),
        }

    # ----------------------------------------------------------------
    # Writes.
    # ----------------------------------------------------------------

    def _resolve_leader(self, index: int) -> bool:
        """Probe shard ``index``'s endpoints and rotate the current
        leader to the front of the failover list.

        The leader is the endpoint whose health record says
        ``role == "leader"`` at the **highest epoch** (a fenced zombie
        reports ``role: "fenced"``; two nodes claiming leadership can
        only differ by epoch, and higher fences lower).  Returns True
        when a leader was found and fronted.
        """
        self._m_reresolves.inc()
        best = None
        best_epoch = -1
        with self._endpoints_lock:
            endpoints = list(self.shards[index])
        for endpoint in endpoints:
            try:
                record = endpoint.healthz()
            except Exception:
                continue
            if str(record.get("role", "")) != "leader":
                continue
            epoch = int(record.get("epoch", 0))
            if epoch > best_epoch:
                best, best_epoch = endpoint, epoch
        if best is None:
            return False
        self.set_endpoints(
            index, [best] + [e for e in endpoints if e is not best]
        )
        return True

    def _call_owner(self, operation: str, owner: int, call: Callable):
        """A write against the owning shard, with **one** stale-epoch
        recovery: if every endpoint answered "fenced", re-resolve the
        leader from health probes and retry once.  A second sweep of
        fencing rejections becomes :class:`AllShardsUnavailable` (the
        HTTP face's structured 503) — never a loop: either the probe
        found a live leader and the retry settles it, or promotion is
        still in flight and the client should come back after
        ``Retry-After``.
        """
        deadline = time.monotonic() + self.shard_timeout
        try:
            return self._call_shard(owner, call, deadline)
        except ShardUnavailable as exc:
            if not getattr(exc, "stale_epoch", False):
                raise
            resolved = self._resolve_leader(owner)
            try:
                return self._call_shard(
                    owner, call, time.monotonic() + self.shard_timeout
                )
            except ShardUnavailable as retry_exc:
                raise AllShardsUnavailable(
                    operation
                    + (
                        " (stale epoch everywhere; no promoted leader "
                        "found yet)"
                        if not resolved
                        else " (stale epoch persisted after leader "
                        "re-resolution)"
                    ),
                    {owner: retry_exc.reason},
                ) from retry_exc

    def add(self, raw: RawFormPage) -> Dict[str, object]:
        """Route an insert to the shard that owns the page.

        Cluster placement classifies on **all** shards first: routing on
        a partial view could send the page to a merely-local optimum, so
        an incomplete classify fan-out fails the write (a 503 the client
        retries) rather than silently mis-placing it.
        """
        if self.placement == "hash":
            owner = shard_for_url(raw.url, self.n_shards)
        else:
            results, failed = self._fan_out(
                "classify-for-add", lambda c: c.classify(raw)
            )
            if failed:
                raise AllShardsUnavailable(
                    "add (needs every shard's classify answer to route "
                    "deterministically)",
                    failed,
                )
            best = min(
                results.values(),
                key=lambda r: (-float(r["similarity"]), int(r["cluster"])),
            )
            owner = int(best["shard"])
        reply = self._call_owner("add", owner, lambda c: c.add(raw))
        return dict(reply)

    def remove(self, url: str) -> Dict[str, object]:
        """Drop a page wherever it lives.

        Hash placement knows the owner; cluster placement broadcasts
        (membership is assignment-dependent).  A failed shard *might*
        have held the page, so the response flags partiality instead of
        claiming a clean miss.
        """
        if self.placement == "hash":
            owner = shard_for_url(url, self.n_shards)
            removed = bool(
                self._call_owner("remove", owner, lambda c: c.remove(url))
            )
            return {"url": url, "removed": removed, "partial": False,
                    "shards": {"answered": [owner], "failed": {}}}
        results, failed = self._fan_out("remove", lambda c: c.remove(url))
        partial = bool(failed)
        if partial:
            self._m_partial.inc()
        return {
            "url": url,
            "removed": any(bool(value) for value in results.values()),
            "partial": partial,
            "shards": self._shard_report(results, failed),
        }

    # ----------------------------------------------------------------
    # Aggregated observability.
    # ----------------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        """Cluster-wide health: per-shard records plus a worst-of grade
        (``ok`` → every shard answered ok; ``degraded`` → anything
        less).  Raises :class:`AllShardsUnavailable` when no shard
        answers at all."""
        results, failed = self._fan_out("healthz", lambda c: c.healthz())
        states = [str(r.get("status", "?")) for r in results.values()]
        status = "ok" if not failed and all(s == "ok" for s in states) \
            else "degraded"
        shard_records = {
            str(index): results[index] for index in sorted(results)
        }
        for index in sorted(failed):
            shard_records[str(index)] = {
                "status": "unreachable", "error": failed[index],
            }
        return {
            "status": status,
            "role": "router",
            "n_shards": self.n_shards,
            "placement": self.placement,
            "uptime_seconds": time.time() - self.started_unix,
            "shards": shard_records,
        }

    def close(self) -> None:
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "DirectoryRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "ALL_SHARDS_RETRY_AFTER",
    "AllShardsUnavailable",
    "DirectoryRouter",
]
