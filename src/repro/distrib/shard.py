"""A shard node — one partition of the directory, replication-ready.

:class:`ShardNode` wraps a :class:`~repro.service.directory.
FormDirectory` built from a *shard snapshot* (one element of
:func:`~repro.distrib.placement.split_snapshot`) and adds the two
things a partition needs that a single-node directory doesn't:

* **global identity** — the shard knows which global cluster ids it
  holds and remaps its local indices on every response, so the router
  can merge hits from different shards without a translation table;
* **a replication feed** — the shard's write-ahead journal rotates into
  sealed segments (:mod:`repro.resilience.journal`), and the node
  serves the manifest / segment bytes / bootstrap snapshot that a
  :class:`~repro.distrib.replica.ReplicaNode` tails.

Durability contract: a write is acknowledged only after the journal
fsync (append-before-apply, inherited from ``FormDirectory``), and the
promotion protocol drains the on-disk journal from the replica's
applied position — which together are what "zero acknowledged writes
lost" means under the chaos plans (tests/test_distrib_failover.py).
"""

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.form_page import RawFormPage
from repro.resilience.faults import inject
from repro.resilience.journal import DirectoryJournal, open_journal
from repro.resilience.stats import STATS
from repro.service.directory import FormDirectory
from repro.service.metrics import MetricsRegistry
from repro.service.snapshot import Snapshot

#: Default rotation threshold for shard journals: small enough that a
#: replica's catch-up unit stays cheap to ship, large enough that the
#: manifest stays short.  (The single-node ``repro serve`` journal keeps
#: the unsegmented default.)
DEFAULT_SEGMENT_RECORDS = 64


class ShardNode:
    """One partition of the distributed directory.

    Parameters
    ----------
    snapshot:
        A shard snapshot (``meta`` carries shard index / count /
        placement / global cluster ids).  A plain single-node snapshot
        also works — it becomes shard 0 of 1, which is how the bench
        harness compares sharded vs. unsharded answers.
    journal:
        Path or open journal for this shard's WAL.  A plain path is
        opened with segment rotation armed
        (``max_segment_records=segment_records``) — the leader side of
        journal shipping.  ``None`` disables journaling (parity tests).
    """

    def __init__(
        self,
        snapshot: Union[Snapshot, str],
        journal: Union[str, Path, DirectoryJournal, None] = None,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        metrics: Optional[MetricsRegistry] = None,
        name: Optional[str] = None,
        **directory_kwargs,
    ) -> None:
        if not isinstance(snapshot, Snapshot):
            snapshot = Snapshot.load(snapshot)
        meta = snapshot.meta or {}
        self.shard_index = int(meta.get("shard", 0))
        self.n_shards = int(meta.get("n_shards", 1))
        self.placement = str(meta.get("placement", "cluster"))
        self.global_ids: List[int] = [
            int(g)
            for g in meta.get(
                "global_clusters", range(len(snapshot.clusters))
            )
        ]
        self.name = name or f"shard-{self.shard_index}"
        if isinstance(journal, (str, Path)):
            journal = open_journal(
                journal, max_segment_records=segment_records
            )
        self.directory = FormDirectory.from_snapshot(
            snapshot, journal=journal, metrics=metrics, **directory_kwargs
        )
        self._instrument()

    @classmethod
    def from_directory(
        cls,
        directory: FormDirectory,
        meta: Dict[str, object],
        name: Optional[str] = None,
    ) -> "ShardNode":
        """Wrap an already-running directory as a shard node — the
        promotion path: a replica's tailed directory takes over serving
        under the dead leader's placement ``meta``."""
        node = cls.__new__(cls)
        node.shard_index = int(meta.get("shard", 0))
        node.n_shards = int(meta.get("n_shards", 1))
        node.placement = str(meta.get("placement", "cluster"))
        node.global_ids = [
            int(g)
            for g in meta.get(
                "global_clusters",
                range(len(directory.organizer.clusters)),
            )
        ]
        node.name = name or f"shard-{node.shard_index}"
        node.directory = directory
        node._instrument()
        return node

    def _instrument(self) -> None:
        m = self.directory.metrics
        m.gauge(
            "shard_index", "This node's shard number", shard=self.name
        ).set_function(lambda: self.shard_index)
        m.gauge(
            "shard_count", "Shards in the deployment", shard=self.name
        ).set_function(lambda: self.n_shards)
        m.gauge(
            "shard_clusters_held", "Global clusters this shard owns",
            shard=self.name,
        ).set_function(lambda: len(self.global_ids))
        m.gauge(
            "segments_shipped_total",
            "Sealed journal segments served to replicas (process-wide)",
        ).set_function(lambda: STATS.get("segments_shipped"))

    # ----------------------------------------------------------------
    # Global-id remapping.
    # ----------------------------------------------------------------

    def to_global(self, local_index: int) -> int:
        return self.global_ids[local_index]

    def _remap(self, hits: List[Dict[str, object]]) -> List[Dict[str, object]]:
        for hit in hits:
            hit["cluster"] = self.to_global(int(hit["cluster"]))
            hit["shard"] = self.shard_index
        return hits

    # ----------------------------------------------------------------
    # Serving — the same operations as FormDirectory, in global ids.
    # ----------------------------------------------------------------

    def search(self, query: str, n: int = 3) -> List[Dict[str, object]]:
        """Cluster-scope hits with **global** cluster ids.

        Within a shard, local index order equals global-id order (the
        split assigns globals ascending), so the remapped run is sorted
        by the router's ``(-score, global id)`` merge key already.
        """
        return self._remap(self.directory.search(query, n=n))

    def search_pages(self, query: str, n: int = 3) -> List[Dict[str, object]]:
        """Page-scope hits (cluster field remapped to global)."""
        return self._remap(self.directory.search_pages(query, n=n))

    def classify(self, raw: RawFormPage) -> Dict[str, object]:
        """Classify against this shard's clusters (global id out).

        The similarity is computed against exactly the centroids the
        single-node directory holds for these clusters (cluster
        placement), so the router picking the max over shards
        reproduces the single-node argmax bit-for-bit.
        """
        outcome = self.directory.classify(raw)
        return {
            "url": outcome.url,
            "cluster": self.to_global(outcome.cluster),
            "similarity": outcome.similarity,
            "top_terms": outcome.top_terms,
            "cached": outcome.cached,
            "shard": self.shard_index,
        }

    def add(self, raw: RawFormPage) -> Dict[str, object]:
        """Insert a page this shard owns.  Returns global assignment."""
        local, size = self.directory.add(raw)
        return {
            "url": raw.url,
            "cluster": self.to_global(local),
            "cluster_size": size,
            "shard": self.shard_index,
        }

    def remove(self, url: str) -> bool:
        return self.directory.remove(url)

    def healthz(self) -> Dict[str, object]:
        """Shard-identified health record (the router aggregates these)."""
        return {
            "status": self.directory.health_state(),
            "shard": self.shard_index,
            "name": self.name,
            "n_shards": self.n_shards,
            "placement": self.placement,
            "generation": self.directory.generation,
            "pages": len(self.directory.organizer),
            "clusters": len(self.global_ids),
        }

    # ----------------------------------------------------------------
    # Replication feed (what replicas poll).
    # ----------------------------------------------------------------

    @property
    def journal(self) -> Optional[DirectoryJournal]:
        return self.directory.journal

    def replication_manifest(self) -> Dict[str, object]:
        """Journal shipping state: sealed segments + global positions."""
        journal = self.journal
        if journal is None:
            manifest: Dict[str, object] = {
                "base_record": 0, "next_record": 0,
                "active_records": 0, "sealed": [],
            }
        else:
            manifest = journal.manifest()
        manifest["shard"] = self.shard_index
        manifest["generation"] = self.directory.generation
        return manifest

    def replication_segment(self, seq: int) -> bytes:
        """Raw bytes of one sealed segment.  ``"replication.ship"`` is
        an injection seam — chaos plans simulate a flaky ship path and
        the replica retries on its next poll.  Raises
        :class:`~repro.resilience.journal.JournalError` when the
        segment was folded away (the replica re-bootstraps)."""
        inject("replication.ship")
        journal = self.journal
        if journal is None:
            from repro.resilience.journal import JournalError

            raise JournalError("shard has no journal to ship from")
        data = journal.segment_bytes(seq)
        STATS.inc("segments_shipped")
        return data

    def replication_snapshot(self) -> Dict[str, object]:
        """Bootstrap payload: the live state as a snapshot payload whose
        ``meta`` records this shard's placement and the journal position
        the state includes."""
        snapshot = self.directory.snapshot(
            meta={
                "shard": self.shard_index,
                "n_shards": self.n_shards,
                "placement": self.placement,
                "global_clusters": list(self.global_ids),
            }
        )
        return snapshot.to_payload()

    # ----------------------------------------------------------------
    # Lifecycle.
    # ----------------------------------------------------------------

    def checkpoint(self, path, scope: str = "sealed") -> Snapshot:
        """Checkpoint this shard.  Defaults to ``scope="sealed"`` — the
        replication-friendly fold that leaves the active tail in place
        (see :meth:`FormDirectory.checkpoint`)."""
        return self.directory.checkpoint(
            path,
            scope=scope,
            meta={
                "shard": self.shard_index,
                "n_shards": self.n_shards,
                "placement": self.placement,
                "global_clusters": list(self.global_ids),
            },
        )

    def close(self) -> None:
        self.directory.close()

    def __enter__(self) -> "ShardNode":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["DEFAULT_SEGMENT_RECORDS", "ShardNode"]
