"""A shard node — one partition of the directory, replication-ready.

:class:`ShardNode` wraps a :class:`~repro.service.directory.
FormDirectory` built from a *shard snapshot* (one element of
:func:`~repro.distrib.placement.split_snapshot`) and adds the two
things a partition needs that a single-node directory doesn't:

* **global identity** — the shard knows which global cluster ids it
  holds and remaps its local indices on every response, so the router
  can merge hits from different shards without a translation table;
* **a replication feed** — the shard's write-ahead journal rotates into
  sealed segments (:mod:`repro.resilience.journal`), and the node
  serves the manifest / segment bytes / bootstrap snapshot that a
  :class:`~repro.distrib.replica.ReplicaNode` tails.

Durability contract: a write is acknowledged only after the journal
fsync (append-before-apply, inherited from ``FormDirectory``), and the
promotion protocol drains the on-disk journal from the replica's
applied position — which together are what "zero acknowledged writes
lost" means under the chaos plans (tests/test_distrib_failover.py).

Leadership contract (PR 10): when a :class:`~repro.distrib.fence.
LeaseStore` is attached, a write is acknowledged only while the node
holds a live lease at its current epoch.  A node that loses the lease
(paused past the TTL, or fenced by a successor's higher-epoch
acquire) refuses writes with :class:`~repro.resilience.journal.
StaleEpochError` — the HTTP face answers ``409 stale_epoch`` — and
grades itself ``degraded`` until it can re-lease.  Reads keep working
throughout (a stale read is merely stale; a stale *ack* is a lost
write).
"""

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.form_page import RawFormPage
from repro.distrib.fence import DEFAULT_LEASE_TTL, LeaseHeld, LeaseStore
from repro.resilience.faults import FaultError, inject
from repro.resilience.journal import (
    DirectoryJournal,
    StaleEpochError,
    open_journal,
)
from repro.resilience.stats import STATS
from repro.service.directory import FormDirectory
from repro.service.metrics import MetricsRegistry
from repro.service.snapshot import Snapshot

#: Default rotation threshold for shard journals: small enough that a
#: replica's catch-up unit stays cheap to ship, large enough that the
#: manifest stays short.  (The single-node ``repro serve`` journal keeps
#: the unsegmented default.)
DEFAULT_SEGMENT_RECORDS = 64


class ShardNode:
    """One partition of the distributed directory.

    Parameters
    ----------
    snapshot:
        A shard snapshot (``meta`` carries shard index / count /
        placement / global cluster ids).  A plain single-node snapshot
        also works — it becomes shard 0 of 1, which is how the bench
        harness compares sharded vs. unsharded answers.
    journal:
        Path or open journal for this shard's WAL.  A plain path is
        opened with segment rotation armed
        (``max_segment_records=segment_records``) — the leader side of
        journal shipping.  ``None`` disables journaling (parity tests).
    lease_store:
        Optional :class:`~repro.distrib.fence.LeaseStore` (or a path to
        the lease file).  When set, every write first proves leadership
        — see the module docstring.  ``None`` keeps PR 7's unfenced
        behavior.
    epoch:
        Optional starting epoch floor for a path-opened journal (e.g.
        ``repro shard --epoch``); the journal's recovered epoch wins if
        higher.
    """

    def __init__(
        self,
        snapshot: Union[Snapshot, str],
        journal: Union[str, Path, DirectoryJournal, None] = None,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        metrics: Optional[MetricsRegistry] = None,
        name: Optional[str] = None,
        lease_store: Union[LeaseStore, str, Path, None] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        epoch: Optional[int] = None,
        **directory_kwargs,
    ) -> None:
        if not isinstance(snapshot, Snapshot):
            snapshot = Snapshot.load(snapshot)
        meta = snapshot.meta or {}
        self.shard_index = int(meta.get("shard", 0))
        self.n_shards = int(meta.get("n_shards", 1))
        self.placement = str(meta.get("placement", "cluster"))
        self.global_ids: List[int] = [
            int(g)
            for g in meta.get(
                "global_clusters", range(len(snapshot.clusters))
            )
        ]
        self.name = name or f"shard-{self.shard_index}"
        if isinstance(journal, (str, Path)):
            journal = open_journal(
                journal,
                max_segment_records=segment_records,
                epoch=int(epoch or 0),
            )
        self.directory = FormDirectory.from_snapshot(
            snapshot, journal=journal, metrics=metrics, **directory_kwargs
        )
        self._init_fencing(lease_store, lease_ttl)
        self._instrument()

    def _init_fencing(
        self,
        lease_store: Union[LeaseStore, str, Path, None],
        lease_ttl: float,
    ) -> None:
        if isinstance(lease_store, (str, Path)):
            lease_store = LeaseStore(lease_store)
        self.lease_store = lease_store
        self.lease_ttl = float(lease_ttl)
        self.fenced = False
        self._lease = None

    @classmethod
    def from_directory(
        cls,
        directory: FormDirectory,
        meta: Dict[str, object],
        name: Optional[str] = None,
        lease_store: Union[LeaseStore, str, Path, None] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> "ShardNode":
        """Wrap an already-running directory as a shard node — the
        promotion path: a replica's tailed directory takes over serving
        under the dead leader's placement ``meta``."""
        node = cls.__new__(cls)
        node.shard_index = int(meta.get("shard", 0))
        node.n_shards = int(meta.get("n_shards", 1))
        node.placement = str(meta.get("placement", "cluster"))
        node.global_ids = [
            int(g)
            for g in meta.get(
                "global_clusters",
                range(len(directory.organizer.clusters)),
            )
        ]
        node.name = name or f"shard-{node.shard_index}"
        node.directory = directory
        node._init_fencing(lease_store, lease_ttl)
        node._instrument()
        return node

    def _instrument(self) -> None:
        m = self.directory.metrics
        m.gauge(
            "shard_index", "This node's shard number", shard=self.name
        ).set_function(lambda: self.shard_index)
        m.gauge(
            "shard_count", "Shards in the deployment", shard=self.name
        ).set_function(lambda: self.n_shards)
        m.gauge(
            "shard_clusters_held", "Global clusters this shard owns",
            shard=self.name,
        ).set_function(lambda: len(self.global_ids))
        m.gauge(
            "segments_shipped_total",
            "Sealed journal segments served to replicas (process-wide)",
        ).set_function(lambda: STATS.get("segments_shipped"))
        m.gauge(
            "shard_epoch", "Fencing epoch this node serves at",
            shard=self.name,
        ).set_function(lambda: self.epoch)
        m.gauge(
            "shard_fenced", "1 while writes are fenced (stale epoch)",
            shard=self.name,
        ).set_function(lambda: int(self.fenced))
        m.gauge(
            "lease_remaining_seconds",
            "Seconds left on the held leader lease (0 = none held)",
            shard=self.name,
        ).set_function(lambda: max(0.0, self.lease_remaining() or 0.0))
        m.gauge(
            "fencing_rejections_total",
            "Writes refused for a stale epoch / lost lease (process-wide)",
        ).set_function(lambda: STATS.get("fencing_rejections"))

    # ----------------------------------------------------------------
    # Leadership (epoch + lease fencing).
    # ----------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The fencing epoch this node serves at (journal-durable)."""
        return self.directory.epoch

    def lease_remaining(self) -> Optional[float]:
        """Seconds left on the held lease; ``None`` when no store is
        attached (unfenced deployment)."""
        if self.lease_store is None:
            return None
        lease = self._lease
        if lease is None:
            return 0.0
        return max(0.0, lease.remaining(self.lease_store.clock()))

    def _refuse(self, current: int, offered: int, detail: str) -> None:
        self.fenced = True
        STATS.inc("fencing_rejections")
        raise StaleEpochError(current, offered, detail)

    def _ensure_leadership(self) -> None:
        """Prove this node may acknowledge a write *right now*.

        No-op without a lease store.  With one: a held lease past its
        half-life is renewed (so a healthy leader touches the store at
        most every ``ttl/2`` writes' worth of time, not per write); a
        missing or lapsed lease is (re)acquired — a lapsed lease nobody
        claimed is not a fencing event, just a quiet leader.  What *is*
        fencing: the store holds a higher epoch (a successor was
        promoted — this node is a zombie), or another live holder owns
        the lease.  Then the write dies here, **before** the journal
        append, with :class:`StaleEpochError`.
        """
        store = self.lease_store
        if store is None:
            return
        epoch = self.epoch
        lease = self._lease
        now = store.clock()
        if (
            lease is not None
            and lease.holder == self.name
            and lease.epoch == epoch
            and lease.remaining(now) > self.lease_ttl / 2.0
        ):
            return
        try:
            grant = store.renew if lease is not None else store.acquire
            self._lease = grant(self.name, epoch, self.lease_ttl)
            self.fenced = False
            return
        except StaleEpochError as exc:
            self._lease = None
            self._refuse(exc.epoch, epoch, "fenced by a higher-epoch leader")
        except LeaseHeld as exc:
            self._lease = None
            self._refuse(
                max(epoch, exc.epoch), epoch,
                f"lease held by {exc.holder!r}",
            )
        except FaultError:
            # The store round-trip failed (injected or real).  An
            # unexpired grant still covers us — that is what the lease
            # bought; with none, fail the write rather than risk a
            # zombie ack.
            if (
                lease is not None
                and lease.epoch == epoch
                and not lease.expired(store.clock())
            ):
                return
            self._lease = None
            self._refuse(epoch, epoch, "lease store unreachable, lease lapsed")

    # ----------------------------------------------------------------
    # Global-id remapping.
    # ----------------------------------------------------------------

    def to_global(self, local_index: int) -> int:
        return self.global_ids[local_index]

    def _remap(self, hits: List[Dict[str, object]]) -> List[Dict[str, object]]:
        for hit in hits:
            hit["cluster"] = self.to_global(int(hit["cluster"]))
            hit["shard"] = self.shard_index
        return hits

    # ----------------------------------------------------------------
    # Serving — the same operations as FormDirectory, in global ids.
    # ----------------------------------------------------------------

    def search(self, query: str, n: int = 3) -> List[Dict[str, object]]:
        """Cluster-scope hits with **global** cluster ids.

        Within a shard, local index order equals global-id order (the
        split assigns globals ascending), so the remapped run is sorted
        by the router's ``(-score, global id)`` merge key already.
        """
        return self._remap(self.directory.search(query, n=n))

    def search_pages(self, query: str, n: int = 3) -> List[Dict[str, object]]:
        """Page-scope hits (cluster field remapped to global)."""
        return self._remap(self.directory.search_pages(query, n=n))

    def classify(self, raw: RawFormPage) -> Dict[str, object]:
        """Classify against this shard's clusters (global id out).

        The similarity is computed against exactly the centroids the
        single-node directory holds for these clusters (cluster
        placement), so the router picking the max over shards
        reproduces the single-node argmax bit-for-bit.
        """
        outcome = self.directory.classify(raw)
        return {
            "url": outcome.url,
            "cluster": self.to_global(outcome.cluster),
            "similarity": outcome.similarity,
            "top_terms": outcome.top_terms,
            "cached": outcome.cached,
            "shard": self.shard_index,
        }

    def add(self, raw: RawFormPage) -> Dict[str, object]:
        """Insert a page this shard owns.  Returns global assignment.

        The reply names the acknowledging node and its epoch — the
        chaos suite's one-acker-per-epoch invariant is checked off
        exactly these two fields.
        """
        self._ensure_leadership()
        local, size = self.directory.add(raw)
        return {
            "url": raw.url,
            "cluster": self.to_global(local),
            "cluster_size": size,
            "shard": self.shard_index,
            "epoch": self.epoch,
            "served_by": self.name,
        }

    def remove(self, url: str) -> bool:
        self._ensure_leadership()
        return self.directory.remove(url)

    def healthz(self) -> Dict[str, object]:
        """Shard-identified health record (the router aggregates these,
        and leader re-resolution reads ``role`` + ``epoch``)."""
        status = self.directory.health_state()
        if self.fenced and status == "ok":
            status = "degraded"
        record: Dict[str, object] = {
            "status": status,
            "shard": self.shard_index,
            "name": self.name,
            "n_shards": self.n_shards,
            "placement": self.placement,
            "generation": self.directory.generation,
            "pages": len(self.directory.organizer),
            "clusters": len(self.global_ids),
            "epoch": self.epoch,
            "role": "fenced" if self.fenced else "leader",
        }
        remaining = self.lease_remaining()
        if remaining is not None:
            record["lease_remaining"] = round(remaining, 3)
        return record

    # ----------------------------------------------------------------
    # Replication feed (what replicas poll).
    # ----------------------------------------------------------------

    @property
    def journal(self) -> Optional[DirectoryJournal]:
        return self.directory.journal

    def replication_manifest(self) -> Dict[str, object]:
        """Journal shipping state: sealed segments + global positions."""
        journal = self.journal
        if journal is None:
            manifest: Dict[str, object] = {
                "base_record": 0, "next_record": 0,
                "active_records": 0, "sealed": [],
            }
        else:
            manifest = journal.manifest()
        manifest["shard"] = self.shard_index
        manifest["generation"] = self.directory.generation
        return manifest

    def replication_segment(self, seq: int) -> bytes:
        """Raw bytes of one sealed segment.  ``"replication.ship"`` is
        an injection seam — chaos plans simulate a flaky ship path and
        the replica retries on its next poll.  Raises
        :class:`~repro.resilience.journal.JournalError` when the
        segment was folded away (the replica re-bootstraps)."""
        inject("replication.ship")
        journal = self.journal
        if journal is None:
            from repro.resilience.journal import JournalError

            raise JournalError("shard has no journal to ship from")
        data = journal.segment_bytes(seq)
        STATS.inc("segments_shipped")
        return data

    def replication_snapshot(self) -> Dict[str, object]:
        """Bootstrap payload: the live state as a snapshot payload whose
        ``meta`` records this shard's placement and the journal position
        the state includes."""
        snapshot = self.directory.snapshot(
            meta={
                "shard": self.shard_index,
                "n_shards": self.n_shards,
                "placement": self.placement,
                "global_clusters": list(self.global_ids),
            }
        )
        return snapshot.to_payload()

    # ----------------------------------------------------------------
    # Lifecycle.
    # ----------------------------------------------------------------

    def checkpoint(self, path, scope: str = "sealed") -> Snapshot:
        """Checkpoint this shard.  Defaults to ``scope="sealed"`` — the
        replication-friendly fold that leaves the active tail in place
        (see :meth:`FormDirectory.checkpoint`)."""
        return self.directory.checkpoint(
            path,
            scope=scope,
            meta={
                "shard": self.shard_index,
                "n_shards": self.n_shards,
                "placement": self.placement,
                "global_clusters": list(self.global_ids),
            },
        )

    def close(self) -> None:
        if self.lease_store is not None and self._lease is not None:
            try:
                self.lease_store.release(self.name)
            except Exception:
                pass
            self._lease = None
        self.directory.close()

    def __enter__(self) -> "ShardNode":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["DEFAULT_SEGMENT_RECORDS", "ShardNode"]
