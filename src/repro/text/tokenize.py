"""Word tokenization for web text.

Form pages contain a mix of prose, labels, navigation text and markup
residue.  The tokenizer extracts lowercase alphabetic word tokens, which is
what the paper's vector-space representation operates on: stemmed *words*,
with punctuation, numbers and markup discarded.
"""

import re
from typing import Iterator, List

# A token is a run of ASCII letters, optionally with internal apostrophes
# (``don't`` -> ``don't``) which are stripped afterwards.  Numbers carry
# little domain signal in form pages (prices, years vary per site) and are
# dropped, mirroring the paper's word-oriented model.
_WORD_RE = re.compile(r"[A-Za-z]+(?:'[A-Za-z]+)?")

# Minimum/maximum token length.  One-letter tokens are almost always markup
# residue or initials; extremely long tokens are typically URLs or
# concatenated identifiers.
MIN_TOKEN_LEN = 2
MAX_TOKEN_LEN = 30


def iter_tokens(text: str) -> Iterator[str]:
    """Yield lowercase word tokens from ``text`` in document order.

    >>> list(iter_tokens("Find Cheap Flights & Hotels!"))
    ['find', 'cheap', 'flights', 'hotels']
    """
    for match in _WORD_RE.finditer(text):
        token = match.group(0).replace("'", "").lower()
        if MIN_TOKEN_LEN <= len(token) <= MAX_TOKEN_LEN:
            yield token


def tokenize(text: str) -> List[str]:
    """Return the list of lowercase word tokens in ``text``.

    Tokens shorter than :data:`MIN_TOKEN_LEN` or longer than
    :data:`MAX_TOKEN_LEN` characters are discarded, as are numbers and
    punctuation.
    """
    return list(iter_tokens(text))


def split_identifier(name: str) -> List[str]:
    """Split an HTML identifier-like name into word tokens.

    Form field names are often identifiers such as ``jobCategory``,
    ``job_category`` or ``job-category``.  These carry domain vocabulary
    once split on case and separator boundaries.

    >>> split_identifier("jobCategory")
    ['job', 'category']
    >>> split_identifier("pick_up_location")
    ['pick', 'up', 'location']
    """
    # Break camelCase boundaries, then defer to the standard tokenizer
    # (which also splits on ``_``/``-`` since they are non-letters).
    spaced = re.sub(r"(?<=[a-z])(?=[A-Z])", " ", name)
    return tokenize(spaced)
