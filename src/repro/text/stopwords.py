"""English stopword list for form-page text.

Stopwords are function words that carry no domain signal.  Beyond the usual
English closed-class words, the list includes a handful of web-boilerplate
terms (``click``, ``www``) that appear on virtually every page and would
otherwise survive into the vector space with a non-trivial IDF on small
corpora.  Genuinely *generic but content-bearing* web terms (``privacy``,
``copyright``, ``help`` ...) are deliberately NOT stopworded: the paper
relies on TF-IDF to down-weight them (Section 2.1), and several tests
verify that behaviour.
"""

from typing import FrozenSet

STOPWORDS: FrozenSet[str] = frozenset(
    """
    a about above after again against all am an and any are arent as at
    be because been before being below between both but by
    cannot cant could couldnt
    did didnt do does doesnt doing dont down during
    each
    few for from further
    had hadnt has hasnt have havent having he hed hell hes her here heres
    hers herself him himself his how hows
    i id ill im ive if in into is isnt it its itself
    lets
    me more most mustnt my myself
    no nor not
    of off on once only or other ought our ours ourselves out over own
    same shant she shed shell shes should shouldnt so some such
    than that thats the their theirs them themselves then there theres
    these they theyd theyll theyre theyve this those through to too
    under until up upon
    very via
    was wasnt we wed well were werent weve what whats when whens where
    wheres which while who whos whom why whys will with wont would wouldnt
    you youd youll youre youve your yours yourself yourselves
    also among amongst anyhow anyway anywhere
    became become becomes becoming beforehand behind beside besides beyond
    eg etc else elsewhere ever every everyone everything everywhere
    however
    ie indeed instead
    latter latterly least less
    many may maybe meanwhile might moreover mostly much must
    namely neither never nevertheless next nobody none nonetheless noone
    nothing now nowhere
    often otherwise
    per perhaps please
    quite
    rather
    seem seemed seeming seems several since somehow someone something
    sometime sometimes somewhere still
    therefore therein thereupon thus together toward towards
    unless unlike unlikely us use used using usually
    whatever whenever whereas wherever whether within without
    yet
    click here www http https com org net html htm page pages site web
    """.split()
)


def is_stopword(token: str) -> bool:
    """Return True when ``token`` (already lowercased) is a stopword."""
    return token in STOPWORDS
