"""Text-processing substrate: tokenization, stopwords, stemming.

The paper builds term vectors by "stemming all the distinct words" found in
form pages (Section 2.1).  This package provides the pieces of that pipeline:

* :func:`repro.text.tokenize.tokenize` — split raw text into word tokens.
* :data:`repro.text.stopwords.STOPWORDS` — the English stopword list.
* :class:`repro.text.stemmer.PorterStemmer` — the classic Porter (1980)
  suffix-stripping algorithm, implemented from scratch.
* :class:`repro.text.analyzer.TextAnalyzer` — the composed pipeline
  (tokenize -> drop stopwords -> stem) used everywhere a bag of terms is
  needed.
"""

from repro.text.analyzer import TextAnalyzer, default_analyzer
from repro.text.stemmer import PorterStemmer, stem
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.tokenize import tokenize

__all__ = [
    "TextAnalyzer",
    "default_analyzer",
    "PorterStemmer",
    "stem",
    "STOPWORDS",
    "is_stopword",
    "tokenize",
]
