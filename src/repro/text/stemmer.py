"""The Porter stemming algorithm (Porter, 1980), implemented from scratch.

The paper obtains terms "by stemming all the distinct words" in form and
page contents (Section 2.1); its example output (``privaci``, ``shop``,
``copyright``) is exactly what the classic Porter algorithm produces.

This is a faithful implementation of the original five-step algorithm as
published in *An algorithm for suffix stripping* (Program, 14(3):130-137).
It intentionally reproduces the original's quirks (e.g. ``agreed`` ->
``agre``) rather than the later "Porter2"/Snowball revisions, because the
2007 paper predates wide Snowball adoption in this literature.
"""

from typing import List


class PorterStemmer:
    """Porter stemmer with a bounded memo table.

    The algorithm itself is stateless and pure; web corpora repeat terms
    heavily, so each instance memoizes ``stem`` results in a size-capped
    dict (FIFO eviction — insertion order is all ``dict`` gives us
    cheaply, and any bounded policy works for a pure function).  The
    cache is plain data, so instances stay picklable for process pools;
    ``cache_hits`` / ``cache_misses`` feed the ingestion micro-bench.

    Usage::

        stemmer = PorterStemmer()
        stemmer.stem("privacy")   # -> 'privaci'
        stemmer.stem("flights")   # -> 'flight'
    """

    _VOWELS = "aeiou"

    DEFAULT_CACHE_SIZE = 50_000

    def __init__(self, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self.cache_size = max(0, int(cache_size))
        self._cache: dict = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Measure and shape predicates, defined on a word prefix ``word[:j+1]``
    # following Porter's original formulation.
    # ------------------------------------------------------------------

    def _is_consonant(self, word: str, i: int) -> bool:
        """True when ``word[i]`` is a consonant in Porter's sense.

        ``y`` counts as a consonant when it follows a vowel position and as
        a vowel when it follows a consonant (``toy`` -> t,o,y=C; ``syzygy``).
        """
        ch = word[i]
        if ch in self._VOWELS:
            return False
        if ch == "y":
            if i == 0:
                return True
            return not self._is_consonant(word, i - 1)
        return True

    def _measure(self, stem_part: str) -> int:
        """Return m, the number of VC sequences in ``stem_part``.

        Porter writes a word as [C](VC)^m[V]; m drives most of the rules.
        """
        m = 0
        i = 0
        n = len(stem_part)
        # Skip the optional initial consonant run.
        while i < n and self._is_consonant(stem_part, i):
            i += 1
        while i < n:
            # Vowel run.
            while i < n and not self._is_consonant(stem_part, i):
                i += 1
            if i >= n:
                break
            # Consonant run closes a VC pair.
            while i < n and self._is_consonant(stem_part, i):
                i += 1
            m += 1
        return m

    def _contains_vowel(self, stem_part: str) -> bool:
        return any(not self._is_consonant(stem_part, i) for i in range(len(stem_part)))

    def _ends_double_consonant(self, word: str) -> bool:
        if len(word) < 2:
            return False
        if word[-1] != word[-2]:
            return False
        return self._is_consonant(word, len(word) - 1)

    def _ends_cvc(self, word: str) -> bool:
        """True for a consonant-vowel-consonant ending, last not w, x or y."""
        if len(word) < 3:
            return False
        if not self._is_consonant(word, len(word) - 3):
            return False
        if self._is_consonant(word, len(word) - 2):
            return False
        if not self._is_consonant(word, len(word) - 1):
            return False
        return word[-1] not in "wxy"

    # ------------------------------------------------------------------
    # Rule application helper.
    # ------------------------------------------------------------------

    def _replace_suffix(self, word: str, suffix: str, replacement: str, min_m: int) -> str:
        """Replace ``suffix`` with ``replacement`` if the stem measure allows.

        Returns the (possibly unchanged) word.  ``min_m`` is the minimum
        measure of the candidate stem for the rule to fire; ``-1`` means
        "fire unconditionally when the suffix matches".
        """
        if not word.endswith(suffix):
            return word
        stem_part = word[: len(word) - len(suffix)]
        if min_m < 0 or self._measure(stem_part) > min_m:
            return stem_part + replacement
        return word

    # ------------------------------------------------------------------
    # The five steps.
    # ------------------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem_part = word[:-3]
            if self._measure(stem_part) > 0:
                return word[:-1]
            return word
        fired = False
        if word.endswith("ed"):
            stem_part = word[:-2]
            if self._contains_vowel(stem_part):
                word = stem_part
                fired = True
        elif word.endswith("ing"):
            stem_part = word[:-3]
            if self._contains_vowel(stem_part):
                word = stem_part
                fired = True
        if fired:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES = [
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ]

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_RULES:
            if word.endswith(suffix):
                return self._replace_suffix(word, suffix, replacement, 0)
        return word

    _STEP3_RULES = [
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ]

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_RULES:
            if word.endswith(suffix):
                return self._replace_suffix(word, suffix, replacement, 0)
        return word

    _STEP4_SUFFIXES = [
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ]

    def _step4(self, word: str) -> str:
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem_part = word[: len(word) - len(suffix)]
                if self._measure(stem_part) > 1:
                    return stem_part
                return word
        # (m>1 and (*S or *T)) ION -> drop ION
        if word.endswith("ion"):
            stem_part = word[:-3]
            if stem_part and stem_part[-1] in "st" and self._measure(stem_part) > 1:
                return stem_part
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem_part = word[:-1]
            m = self._measure(stem_part)
            if m > 1:
                return stem_part
            if m == 1 and not self._ends_cvc(stem_part):
                return stem_part
        return word

    def _step5b(self, word: str) -> str:
        if self._measure(word) > 1 and self._ends_double_consonant(word) and word.endswith("l"):
            return word[:-1]
        return word

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (assumed lowercase)."""
        if len(word) <= 2:
            # Porter: strings of length 1 or 2 are left as-is.
            return word
        cached = self._cache.get(word)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        stemmed = self._stem_uncached(word)
        if self.cache_size:
            if len(self._cache) >= self.cache_size:
                # The memo may be shared across threads (thread-executor
                # ingestion, concurrent service requests).  Individual
                # dict ops are atomic under the GIL, but another thread
                # can evict between our iter() and pop() — tolerate the
                # collision instead of taking a lock, which would cost
                # every stem call and break process-pool pickling.
                try:
                    self._cache.pop(next(iter(self._cache)), None)
                except (StopIteration, RuntimeError, KeyError):
                    pass
            self._cache[word] = stemmed
        return stemmed

    def _stem_uncached(self, word: str) -> str:
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    def stem_all(self, words: List[str]) -> List[str]:
        """Stem every word in ``words`` preserving order."""
        return [self.stem(word) for word in words]


_DEFAULT = PorterStemmer()


def stem(word: str) -> str:
    """Module-level convenience wrapper around a shared stemmer."""
    return _DEFAULT.stem(word)
