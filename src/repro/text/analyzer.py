"""The composed text-analysis pipeline: tokenize -> stopwords -> stem.

Every place the library needs to turn raw text into a bag of terms goes
through a :class:`TextAnalyzer`, so the treatment of form contents and page
contents is guaranteed to be identical (as the paper requires: "a similar
process is used" for PC and FC, Section 2.1).
"""

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set

from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import tokenize


class TextAnalyzer:
    """Turn raw text into stemmed, stopword-free terms.

    Parameters
    ----------
    stopwords:
        The stopword set to filter against.  Pass an empty set to disable
        stopword removal (used in ablation tests).
    stemmer:
        The stemmer to apply.  Pass None to disable stemming.
    """

    def __init__(
        self,
        stopwords: Optional[Set[str]] = None,
        stemmer: Optional[PorterStemmer] = None,
    ) -> None:
        self.stopwords = STOPWORDS if stopwords is None else stopwords
        self.stemmer = PorterStemmer() if stemmer is None else stemmer
        # Stem cache: web corpora repeat terms heavily, and the stemmer is
        # pure, so memoization is safe and makes vectorization ~5x faster.
        self._cache: Dict[str, str] = {}

    def _stem(self, token: str) -> str:
        cached = self._cache.get(token)
        if cached is None:
            cached = self.stemmer.stem(token) if self.stemmer else token
            self._cache[token] = cached
        return cached

    def analyze(self, text: str) -> List[str]:
        """Return the list of analyzed terms in ``text`` (order preserved)."""
        return [
            self._stem(token)
            for token in tokenize(text)
            if token not in self.stopwords
        ]

    def analyze_tokens(self, tokens: Iterable[str]) -> List[str]:
        """Analyze pre-tokenized (lowercase) tokens."""
        return [
            self._stem(token)
            for token in tokens
            if token not in self.stopwords
        ]

    def term_frequencies(self, text: str) -> Counter:
        """Return a Counter of analyzed terms in ``text``."""
        return Counter(self.analyze(text))


def default_analyzer() -> TextAnalyzer:
    """Return a fresh analyzer with the library defaults."""
    return TextAnalyzer()
